"""Talk to the clustering service from Python.

Starts an in-process server on an ephemeral port (so the example is
self-contained — against a real deployment you would only keep the client
half), then walks the service's API: health check, a clustering request,
a config override, a repeated request that hits the result cache, and the
live metrics.

Run with::

    PYTHONPATH=src python examples/serve_client.py

Against an already-running daemon (``python -m repro serve --port 8752``)
drop the server block and point ``ServeClient`` at its host/port.
"""

import numpy as np

from repro.api import ClusteringConfig
from repro.datasets.synthetic import make_time_series_dataset
from repro.serve import ClusteringServer, ServeClient


def main() -> None:
    dataset = make_time_series_dataset(
        num_objects=60, length=48, num_classes=3, noise=1.0, seed=11
    )

    server = ClusteringServer(
        port=0,  # ephemeral; a deployment would pin one
        default_config=ClusteringConfig(cache=True, prefix=10),
        max_batch_size=16,
        max_wait_ms=10.0,
    )
    with server.start_in_background() as handle:
        with ServeClient(handle.host, handle.port) as client:
            print("healthz:", client.healthz())

            # One clustering request: the matrix plus a (partial) config
            # payload overlaid onto the server's defaults.
            envelope = client.cluster(dataset.data, config={"num_clusters": 3})
            result = envelope["result"]
            labels = np.asarray(result["labels"])
            print(
                f"served {result['method']} fit: {result['num_clusters']} clusters, "
                f"sizes {np.bincount(labels).tolist()}, "
                f"batch_size={envelope['serving']['batch_size']}, "
                f"fit_seconds={envelope['serving']['fit_seconds']:.3f}"
            )

            # Any registered method works; the request config names it.
            hac = client.cluster(
                dataset.data, config={"method": "hac-average", "num_clusters": 3}
            )
            print("hac-average clusters:", hac["result"]["num_clusters"])

            # An identical repeat request is served from the result cache.
            repeat = client.cluster(dataset.data, config={"num_clusters": 3})
            assert repeat["result"]["labels"] == result["labels"]

            # The same request over the binary wire transport: the matrix
            # travels as a raw application/x-repro-matrix frame (no JSON
            # float lists), lands on the same cache entry, and the decoded
            # envelope is identical to the JSON route's.
            binary = client.cluster(dataset.data, config={"num_clusters": 3}, binary=True)
            assert binary["result"] == result
            print("binary transport returned the identical result payload")
            metrics = client.metrics()
            print(
                "after a repeat request — cache hit rate:",
                f"{metrics['cache']['hit_rate']:.0%},",
                "requests:", metrics["requests_total"],
            )
            print(
                "latency p50/p95 (ms):",
                metrics["latency"]["request"]["p50_ms"],
                "/",
                metrics["latency"]["request"]["p95_ms"],
            )
    print("server drained cleanly")


if __name__ == "__main__":
    main()
