"""Stock-market clustering (Section VII-B of the paper).

Reproduces the stock experiment on the synthetic market generator: detrended
daily log-returns -> spectral embedding -> Pearson correlation -> TMFG+DBHT
with a prefix of 30 -> clusters compared against the ICB industries, plus
the market-capitalisation analysis of Fig. 11.

The similarity matrix is precomputed (the paper's preprocessing is not the
estimator's default Pearson-on-raw-series), so the config sets
``precomputed=True`` and the estimator receives the correlation matrix
directly.

Run with:  python examples/stock_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusteringConfig, make_estimator
from repro.baselines.spectral import spectral_embedding
from repro.datasets.similarity import (
    correlation_matrix,
    detrended_log_returns,
)
from repro.datasets.stocks import (
    ICB_INDUSTRIES,
    cluster_sector_counts,
    generate_stock_market,
    market_cap_by_group,
)
from repro.metrics.ari import adjusted_rand_index


def main() -> None:
    # 1. A synthetic market: 300 stocks, 11 ICB industries, 500 trading days.
    market = generate_stock_market(num_stocks=300, num_days=500, seed=0)
    num_sectors = len(ICB_INDUSTRIES)
    print(f"market: {market.num_stocks} stocks, {market.num_days} days, {num_sectors} industries")

    # 2. Preprocessing from the paper: detrended log-returns, spectral
    #    embedding, then Pearson correlation of the embedded data.
    returns = detrended_log_returns(market.prices)
    embedding = spectral_embedding(returns, num_components=num_sectors, num_neighbors=20)
    similarity = correlation_matrix(embedding)

    # 3. TMFG+DBHT with a prefix of 30 (as in Fig. 10), cut at 11 clusters.
    config = ClusteringConfig(
        method="tmfg-dbht", num_clusters=num_sectors, prefix=30, precomputed=True
    )
    labels = make_estimator(config.method, config).fit_predict(similarity)
    exact = make_estimator(config.method, config.replace(prefix=1))
    exact_labels = exact.fit_predict(similarity)
    print(f"ARI vs ICB industries (prefix 30): {adjusted_rand_index(market.sectors, labels):.3f}")
    print(f"ARI vs ICB industries (exact TMFG): {adjusted_rand_index(market.sectors, exact_labels):.3f}")

    # 4. Cluster composition (Fig. 10): which industries dominate each cluster.
    counts = cluster_sector_counts(labels, market.sectors, num_sectors=num_sectors)
    print("\ncluster composition (rows: clusters, columns: industries)")
    header = "cluster  " + "  ".join(f"{abbr:>4}" for abbr, _ in ICB_INDUSTRIES)
    print(header)
    for cluster in range(counts.shape[0]):
        row = "  ".join(f"{count:>4d}" for count in counts[cluster])
        dominant = ICB_INDUSTRIES[int(np.argmax(counts[cluster]))][0]
        print(f"{cluster + 1:>7}  {row}   <- mostly {dominant}")

    # 5. Market capitalisation per cluster (Fig. 11): the most mixed clusters
    #    tend to contain the smallest companies.
    print("\nmedian market cap per cluster")
    for cluster, caps in sorted(market_cap_by_group(market.market_caps, labels).items()):
        purity = counts[cluster].max() / max(counts[cluster].sum(), 1)
        print(
            f"  cluster {cluster + 1:>2}: median cap {np.median(caps):,.0f} "
            f"({len(caps)} stocks, purity {purity:.2f})"
        )


if __name__ == "__main__":
    main()
