"""Comparing hierarchical clustering methods on UCR-like data sets.

Runs the paper's method line-up — PAR-TDBHT (two prefixes), complete and
average linkage, k-means, and spectral k-means — on a few synthetic UCR-like
data sets (Table II signatures) and prints runtime and ARI per method, i.e.
a miniature version of Figs. 3 and 8.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro.datasets.ucr_like import UCR_LIKE_SPECS, load_ucr_like
from repro.experiments.harness import run_method
from repro.experiments.reporting import format_table


def main() -> None:
    dataset_ids = (6, 11, 16)  # ECG5000, CBF, FreezerSmallTrain stand-ins
    methods = ["PAR-TDBHT-1", "PAR-TDBHT-10", "COMP", "AVG", "K-MEANS", "K-MEANS-S"]
    rows = []
    for dataset_id in dataset_ids:
        spec = UCR_LIKE_SPECS[dataset_id]
        dataset = load_ucr_like(
            dataset_id, scale=0.04, noise=1.3, outlier_fraction=0.05, seed=dataset_id
        )
        for method in methods:
            run = run_method(method, dataset, seed=1)
            rows.append(
                (spec.name, dataset.num_objects, method, round(run.seconds, 3), round(run.ari, 3))
            )
    print(
        format_table(
            ["data set", "n", "method", "seconds", "ARI"],
            rows,
            title="Method comparison on UCR-like stand-ins (cut at #ground-truth classes)",
        )
    )


if __name__ == "__main__":
    main()
