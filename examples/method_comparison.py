"""Comparing clustering methods on UCR-like data sets via the registry.

Runs the paper's method line-up — TMFG+DBHT (two prefixes), complete and
average linkage, k-means, and spectral k-means — on a few synthetic UCR-like
data sets (Table II signatures) and prints runtime and ARI per method, i.e.
a miniature version of Figs. 3 and 8.

Every method is resolved by its registry id through ``make_estimator``, so
swapping the line-up is a matter of editing the id list.

Run with:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro import ClusteringConfig, make_estimator
from repro.datasets.ucr_like import UCR_LIKE_SPECS, load_ucr_like
from repro.experiments.reporting import format_table
from repro.metrics.ari import adjusted_rand_index

# (display name, registry id, config overrides)
METHODS = [
    ("PAR-TDBHT-1", "tmfg-dbht", {"prefix": 1}),
    ("PAR-TDBHT-10", "tmfg-dbht", {"prefix": 10}),
    ("COMP", "hac-complete", {}),
    ("AVG", "hac-average", {}),
    ("K-MEANS", "kmeans", {}),
    ("K-MEANS-S", "spectral", {}),
]


def main() -> None:
    dataset_ids = (6, 11, 16)  # ECG5000, CBF, FreezerSmallTrain stand-ins
    rows = []
    for dataset_id in dataset_ids:
        spec = UCR_LIKE_SPECS[dataset_id]
        dataset = load_ucr_like(
            dataset_id, scale=0.04, noise=1.3, outlier_fraction=0.05, seed=dataset_id
        )
        base = ClusteringConfig(num_clusters=dataset.num_classes, seed=1)
        for display, method_id, overrides in METHODS:
            estimator = make_estimator(method_id, base.replace(**overrides))
            labels = estimator.fit_predict(dataset.data)
            ari = adjusted_rand_index(dataset.labels, labels)
            rows.append(
                (
                    spec.name,
                    dataset.num_objects,
                    display,
                    round(estimator.result_.seconds, 3),
                    round(ari, 3),
                )
            )
    print(
        format_table(
            ["data set", "n", "method", "seconds", "ARI"],
            rows,
            title="Method comparison on UCR-like stand-ins (cut at #ground-truth classes)",
        )
    )


if __name__ == "__main__":
    main()
