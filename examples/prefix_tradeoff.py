"""The prefix trade-off: graph quality, clustering quality, and parallelism.

The central knob of the paper's parallel TMFG is the prefix size: how many
vertices are inserted per round.  This example sweeps the prefix on one data
set — one frozen ``ClusteringConfig`` per prefix, all derived from a shared
base with ``config.replace`` — and reports, for each value, (a) the number
of construction rounds, (b) the kept edge weight relative to the exact TMFG,
(c) the ARI of the DBHT clustering, and (d) the predicted 48-core speedup
from the work-span cost model — i.e. a miniature of Figs. 4, 6, and 7 in one
table.

Run with:  python examples/prefix_tradeoff.py
"""

from __future__ import annotations

from repro import ClusteringConfig, make_estimator
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like
from repro.experiments.reporting import format_table
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.edge_sum import edge_weight_sum_ratio
from repro.parallel.cost_model import predicted_speedup


def main() -> None:
    dataset = load_ucr_like(8, scale=0.05, noise=1.3, outlier_fraction=0.05, seed=8)
    similarity, _ = similarity_and_dissimilarity(dataset.data)
    reference = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)

    # Scheduling-overhead constant of the work-span model (see DESIGN.md);
    # the same value the Fig. 4 reproduction uses.
    span_overhead = 100.0
    base = ClusteringConfig(method="tmfg-dbht", num_clusters=dataset.num_classes)
    rows = []
    for prefix in (1, 2, 5, 10, 30, 50, 200):
        estimator = make_estimator(base.method, base.replace(prefix=prefix))
        labels = estimator.fit_predict(dataset.data)
        result = estimator.result_
        pipeline = result.raw
        rows.append(
            (
                prefix,
                pipeline.tmfg.rounds,
                round(edge_weight_sum_ratio(pipeline.tmfg.graph, reference.graph), 4),
                round(adjusted_rand_index(dataset.labels, labels), 3),
                round(
                    predicted_speedup(result.extras["tracker"], 48, span_overhead=span_overhead),
                    1,
                ),
            )
        )
    print(
        format_table(
            ["prefix", "rounds", "edge-sum ratio", "ARI", "predicted 48-core speedup"],
            rows,
            title=f"Prefix trade-off on the {dataset.name} stand-in (n={dataset.num_objects})",
        )
    )


if __name__ == "__main__":
    main()
