"""Quickstart: hierarchical clustering of time series with TMFG + DBHT.

Generates a small labelled time-series data set, builds the similarity /
dissimilarity matrices, runs the full pipeline of the paper (prefix-batched
TMFG construction followed by the DBHT), and evaluates the flat clustering
obtained by cutting the dendrogram at the number of ground-truth classes.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import tmfg_dbht
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.ami import adjusted_mutual_information


def main() -> None:
    # 1. A labelled data set: 200 series of length 128 from 4 classes.
    dataset = make_time_series_dataset(
        num_objects=200,
        length=128,
        num_classes=4,
        noise=1.2,
        outlier_fraction=0.05,
        seed=7,
    )
    print(f"data set: {dataset.num_objects} series, {dataset.num_classes} classes")

    # 2. Pearson correlations as similarity, sqrt(2(1-p)) as dissimilarity.
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)

    # 3. The paper's pipeline.  prefix=1 is the exact sequential TMFG;
    #    larger prefixes batch insertions for parallelism.
    for prefix in (1, 10):
        result = tmfg_dbht(similarity, dissimilarity, prefix=prefix)
        labels = result.cut(dataset.num_classes)
        ari = adjusted_rand_index(dataset.labels, labels)
        ami = adjusted_mutual_information(dataset.labels, labels)
        total = sum(result.step_seconds.values())
        print(
            f"prefix {prefix:>3}: "
            f"TMFG rounds={result.tmfg.rounds:>4}  "
            f"edges={result.tmfg.graph.num_edges}  "
            f"ARI={ari:.3f}  AMI={ami:.3f}  "
            f"time={total:.2f}s "
            f"({', '.join(f'{k}={v:.2f}s' for k, v in result.step_seconds.items())})"
        )

    # 4. The dendrogram itself: inspect the top of the hierarchy.
    result = tmfg_dbht(similarity, dissimilarity, prefix=10)
    dendrogram = result.dendrogram
    root = dendrogram.node(dendrogram.root)
    print(
        f"dendrogram: {dendrogram.num_leaves} leaves, root height {root.height:.1f} "
        f"(= number of converging bubbles merged at the top level)"
    )
    for k in (2, 4, 8):
        sizes = np.bincount(result.cut(k))
        print(f"  cut into {k:>2} clusters -> sizes {sizes.tolist()}")


if __name__ == "__main__":
    main()
