"""Quickstart: hierarchical clustering of time series with TMFG + DBHT.

Generates a small labelled time-series data set, describes the run with a
``ClusteringConfig``, fits the paper's pipeline (prefix-batched TMFG
construction followed by the DBHT) through the estimator API, and evaluates
the flat clustering obtained by cutting the dendrogram at the number of
ground-truth classes.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusteringConfig, make_estimator
from repro.datasets.synthetic import make_time_series_dataset
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.ami import adjusted_mutual_information


def main() -> None:
    # 1. A labelled data set: 200 series of length 128 from 4 classes.
    dataset = make_time_series_dataset(
        num_objects=200,
        length=128,
        num_classes=4,
        noise=1.2,
        outlier_fraction=0.05,
        seed=7,
    )
    print(f"data set: {dataset.num_objects} series, {dataset.num_classes} classes")

    # 2. The paper's pipeline through the estimator API.  prefix=1 is the
    #    exact sequential TMFG; larger prefixes batch insertions for
    #    parallelism.  The estimator computes the Pearson similarity and the
    #    sqrt(2(1-p)) dissimilarity from the raw series itself.
    config = ClusteringConfig(method="tmfg-dbht", num_clusters=dataset.num_classes)
    prefix10_labels = None
    for prefix in (1, 10):
        estimator = make_estimator(config.method, config.replace(prefix=prefix))
        labels = estimator.fit_predict(dataset.data)
        if prefix == 10:
            prefix10_labels = labels
        result = estimator.result_
        pipeline = result.raw
        ari = adjusted_rand_index(dataset.labels, labels)
        ami = adjusted_mutual_information(dataset.labels, labels)
        print(
            f"prefix {prefix:>3}: "
            f"TMFG rounds={pipeline.tmfg.rounds:>4}  "
            f"edges={pipeline.tmfg.graph.num_edges}  "
            f"ARI={ari:.3f}  AMI={ami:.3f}  "
            f"time={result.seconds:.2f}s "
            f"({', '.join(f'{k}={v:.2f}s' for k, v in result.step_seconds.items() if k != 'total')})"
        )

    # 3. The config round-trips through JSON, so a run is reproducible from
    #    its serialized form alone (repro cluster --config cfg.json).
    serialized = config.replace(prefix=10).to_json()
    restored = ClusteringConfig.from_json(serialized)
    result = make_estimator(restored.method, restored).fit(dataset.data).result_
    print(f"config JSON round-trip: {len(serialized)} bytes, same labels: "
          f"{np.array_equal(result.labels, prefix10_labels)}")

    # 4. The dendrogram itself: inspect the top of the hierarchy.
    dendrogram = result.dendrogram
    root = dendrogram.node(dendrogram.root)
    print(
        f"dendrogram: {dendrogram.num_leaves} leaves, root height {root.height:.1f} "
        f"(= number of converging bubbles merged at the top level)"
    )
    for k in (2, 4, 8):
        sizes = np.bincount(result.cut(k))
        print(f"  cut into {k:>2} clusters -> sizes {sizes.tolist()}")


if __name__ == "__main__":
    main()
