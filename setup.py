"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package (where PEP 660 editable
installs fail) can still do ``pip install -e .`` through the legacy
setuptools path.
"""

from setuptools import setup

setup()
