"""Shared asyncio HTTP/1.1 plumbing for the serving tier.

One hardened implementation of the boring parts, used by both the
single-process :class:`~repro.serve.server.ClusteringServer` and the
fleet :class:`~repro.serve.fleet.router.FleetRouter`:

* :func:`read_request` — parse one request (line, headers, body) off a
  stream with the same smuggling-hardening rules everywhere (duplicate
  ``Content-Length`` rejected, colon-less and empty-name header lines
  rejected, bounded header count and body size);
* :func:`render_response` — serialize a JSON (or pre-encoded binary)
  response with ``Content-Length`` framing;
* :func:`http_fetch` — a tiny asyncio HTTP client for loopback control
  traffic (the supervisor's health probes, the router's ``/metrics``
  scrapes) that speaks one request per connection.

Keeping the parser in one module means a request is judged by identical
rules whether it hits a replica directly or arrives through the router.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from http import HTTPStatus
from typing import Any, Dict, Optional, Tuple

#: Hard cap on request bodies (a 2000x2000 float matrix in JSON is ~90 MB;
#: this bound exists to fail fast on garbage, not to size real inputs).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: StreamReader limit: bounds a single request/header line.
HEADER_LIMIT = 64 * 1024


class BadRequest(ValueError):
    """Client-side error; rendered as HTTP 400 with the message."""


@dataclass
class BinaryBody:
    """A pre-encoded non-JSON response body plus its media type."""

    data: bytes
    content_type: str


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    @property
    def media_type(self) -> str:
        """The ``Content-Type`` media type, lowercased, parameters stripped."""
        return self.headers.get("content-type", "").split(";", 1)[0].strip().lower()


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`BadRequest` on anything malformed — oversized lines,
    bad Content-Length, smuggling-shaped headers, truncated bodies.
    """
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise BadRequest(f"oversized request line: {error}") from error
    if not request_line:
        return None  # clean EOF between requests
    try:
        method, path, _version = request_line.decode("latin-1").split()
    except ValueError as error:
        raise BadRequest("malformed HTTP request line") from error
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise BadRequest(f"oversized header line: {error}") from error
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise BadRequest("too many headers")
        text = line.decode("latin-1").rstrip("\r\n")
        name, colon, value = text.partition(":")
        # A colon-less line must not silently become an empty-value
        # header (last-wins would then let it mask a real one).
        if not colon:
            raise BadRequest(f"malformed header line (no colon): {text[:80]!r}")
        name = name.strip().lower()
        if not name:
            raise BadRequest("malformed header line (empty header name)")
        # Conflicting Content-Length values are a classic smuggling
        # vector; last-wins parsing would read the wrong body length.
        if name == "content-length" and name in headers:
            raise BadRequest("duplicate Content-Length header")
        headers[name] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        content_length = int(length_text)
    except ValueError as error:
        raise BadRequest(f"bad Content-Length {length_text!r}") from error
    if content_length < 0 or content_length > MAX_BODY_BYTES:
        raise BadRequest(f"Content-Length {content_length} outside [0, {MAX_BODY_BYTES}]")
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError as error:
            raise BadRequest("request body shorter than Content-Length") from error
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: HTTPStatus,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
    *,
    server_token: str,
    head_only: bool = False,
) -> bytes:
    """Serialize one response; ``payload`` is JSON-safe or a :class:`BinaryBody`."""
    if isinstance(payload, BinaryBody):
        body = payload.data
        content_type = payload.content_type
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {int(status)} {status.phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Server: {server_token}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head if head_only else head + body


async def http_fetch(
    host: str,
    port: int,
    path: str,
    *,
    method: str = "GET",
    timeout: float = 5.0,
) -> Tuple[int, Dict[str, Any]]:
    """One loopback HTTP exchange, JSON-decoded: ``(status, payload)``.

    Control-plane only (health probes, metrics scrapes): a fresh
    connection per call, ``Connection: close``, the whole exchange under
    ``timeout``.  Raises ``OSError``/``asyncio.TimeoutError`` on a dead
    peer — callers treat that as "replica not ready".
    """

    async def _exchange() -> Tuple[int, Dict[str, Any]]:
        reader, writer = await asyncio.open_connection(host, port, limit=HEADER_LIMIT)
        try:
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            content_length: Optional[int] = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            if content_length is not None:
                raw = await reader.readexactly(content_length)
            else:
                raw = await reader.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"raw": raw.decode("utf-8", "replace")}
            return status, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    return await asyncio.wait_for(_exchange(), timeout)
