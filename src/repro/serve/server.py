"""The asyncio HTTP/JSON clustering daemon.

:class:`ClusteringServer` is the long-running front of the library: a
stdlib-only (asyncio streams + :mod:`http`) HTTP/1.1 server that accepts
clustering requests, funnels them through the
:class:`~repro.serve.batcher.MicroBatcher` into
:func:`repro.api.cluster_many`, and runs the fits on a thread pool so the
event loop never blocks on numerical work.

Routes
------
``POST /cluster``
    JSON body ``{"matrix": [[...]], "config": {...}}``, or — with
    ``Content-Type: application/x-repro-matrix`` — the binary wire frame
    of :mod:`repro.serve.wire` (raw C-order buffer, config carried in the
    frame header), which decodes zero-copy straight into the fingerprint
    and shared-memory path.  ``config`` is a (possibly partial)
    :meth:`ClusteringConfig.to_dict` payload overlaid onto the server's
    default config — the same ``from_dict``/``merged`` machinery as
    ``repro cluster --config``.  Responds 200 with
    ``{"result": ClusterResult.to_dict(), "serving": {...}}`` (as a binary
    envelope frame when the client sent ``Accept:
    application/x-repro-matrix``); 400 on a malformed body; 415 for a
    binary body when the transport is disabled; 429 + ``Retry-After`` when
    the admission queue is full; 503 while draining.
``GET /healthz``
    Liveness: status, version, uptime, queue depth.
``GET /metrics``
    The full observability document (request/error counters, latency
    histograms, batching stats, cache hit-rate).

Concurrent identical requests that land in one batch are deduplicated by
``cluster_many`` before dispatch; requests that arrive after a result was
computed hit the content-addressed cache.  Either way the served payload
is byte-identical to the same fit made directly through an estimator.

Shutdown is graceful: SIGTERM/SIGINT stop the accept loop, every already
admitted request is fitted and answered, then the pool is torn down.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import math
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http import HTTPStatus
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import __version__
from repro.api.batch import cluster_many
from repro.api.config import ClusteringConfig
from repro.serve.batcher import (
    MicroBatcher,
    QueueFull,
    ServiceStopping,
    validate_batching_knobs,
)
from repro.serve.httpio import (
    HEADER_LIMIT as _HEADER_LIMIT,
    BadRequest as _BadRequest,
    BinaryBody,
    Request as _Request,
    read_request,
    render_response,
)
from repro.obs.events import TraceEventLog
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ECHO_HEADER,
    TRACE_ID_HEADER,
    Span,
    Tracer,
    new_trace_id,
    valid_trace_id,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.wire import WIRE_CONTENT_TYPE, WireFormatError, decode_request, encode_envelope

#: Config fields a request payload may overlay.  These are the algorithmic
#: knobs; the server-owned resource knobs — ``backend``/``workers`` (per-fit
#: pools), ``cache``/``cache_dir`` (server-side filesystem) — are set by the
#: operator via CLI flags and rejected with a 400 when a client sends them.
REQUEST_CONFIG_FIELDS = frozenset(
    {
        "method",
        "num_clusters",
        "prefix",
        "apsp_method",
        "landmarks",
        "kernel",
        "warm_start",
        "precomputed",
        "linkage",
        "seed",
        "num_restarts",
        "spectral_neighbors",
    }
)


def retry_after_hint(max_wait_ms: float) -> float:
    """Fractional backoff (seconds) for a 429'd client.

    One flush deadline is how long the queue needs to start draining, so
    that is the honest hint — floored at 50ms so clients never busy-spin.
    The old integer formula (``int(round(ms/1000)) + 1``) forced a >=2s
    backoff even at ``max_wait_ms=5``; the fraction travels in the JSON
    body, while the ``Retry-After`` *header* stays an RFC-valid integer.
    """
    return round(max(0.05, max_wait_ms / 1000.0), 3)


class _UnsupportedMediaType(ValueError):
    """Binary body on a server with the transport disabled; HTTP 415."""


def _accepts_binary(request: _Request) -> bool:
    return WIRE_CONTENT_TYPE in request.headers.get("accept", "").lower()


class ClusteringServer:
    """Micro-batching clustering service over HTTP/JSON.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` picks an ephemeral port, published on
        :attr:`port` once the server is listening.
    default_config:
        The :class:`ClusteringConfig` requests overlay their (partial)
        ``config`` payloads onto.  Defaults to ``ClusteringConfig(cache=
        True)`` so repeat traffic hits the result cache.
    max_batch_size / max_wait_ms / max_queue_depth:
        Micro-batching and admission knobs (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    fit_workers:
        Threads fitting batches concurrently (default 2).  Each batch is
        one ``cluster_many`` call; more workers let distinct batches
        overlap.
    binary:
        Accept (and, on ``Accept``, emit) the
        ``application/x-repro-matrix`` binary transport (default on).
        ``binary=False`` turns binary bodies into HTTP 415, for operators
        who want a JSON-only surface.
    trace_log:
        Append one JSON line per closed span to this file (the
        ``--trace-log`` flag).  Setting it also turns on server-initiated
        tracing: requests without an ``X-Repro-Trace-Id`` header are
        traced at ``trace_sample``.  Client-carried trace ids are always
        honoured, log or no log.
    trace_sample:
        Fraction of server-initiated traces to record when ``trace_log``
        is set (default 1.0).  Sampling is per trace, not per span, so a
        sampled request's waterfall is always complete.
    tracer:
        Inject a preconfigured :class:`~repro.obs.tracer.Tracer`
        (tests; embedding).  When given, its sinks are kept and the
        ``trace_log``/``trace_sample`` knobs only add to it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_config: Optional[ClusteringConfig] = None,
        max_batch_size: int = 16,
        max_wait_ms: float = 10.0,
        max_queue_depth: int = 256,
        fit_workers: int = 2,
        binary: bool = True,
        trace_log: Optional[str] = None,
        trace_sample: float = 1.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if fit_workers < 1:
            raise ValueError("fit_workers must be at least 1")
        # Fail on bad batching knobs here, not inside the event loop, so
        # the CLI reports them like any other flag error.
        validate_batching_knobs(max_batch_size, max_wait_ms, max_queue_depth)
        self.host = host
        self.port = port  # replaced by the bound port once listening
        self.default_config = (
            default_config if default_config is not None else ClusteringConfig(cache=True)
        )
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self.fit_workers = fit_workers
        self.binary = binary
        self.metrics = ServerMetrics()
        self.trace_log = trace_log
        self.trace_sample = trace_sample
        # An injected tracer (tests/embedding) keeps its sinks; otherwise
        # a private one is built.  Either way the per-span-kind metrics
        # sink is attached, and the event log when --trace-log asks.
        self.tracer = tracer if tracer is not None else Tracer(sample_rate=trace_sample)
        self._trace_enabled = trace_log is not None or tracer is not None
        self._event_log: Optional[TraceEventLog] = None
        if trace_log is not None:
            self._event_log = TraceEventLog(trace_log)
            self.tracer.add_sink(self._event_log.record)
        self.tracer.add_sink(self._record_span_metric)
        self._batcher: Optional[MicroBatcher] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------

    def run(self, *, install_signal_handlers: bool = True, on_ready=None) -> None:
        """Serve until SIGTERM/SIGINT (blocking; owns its event loop)."""
        asyncio.run(
            self.serve(install_signal_handlers=install_signal_handlers, on_ready=on_ready)
        )

    async def serve(self, *, install_signal_handlers: bool = False, on_ready=None) -> None:
        """Bind, serve, and drain inside the caller's event loop."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.fit_workers, thread_name_prefix="repro-serve-fit"
        )
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            max_queue_depth=self.max_queue_depth,
        )
        self._batcher.start()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_HEADER_LIMIT
        )
        self.port = server.sockets[0].getsockname()[1]
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-main thread or platform without signal support
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            # Answer everything already admitted before tearing down.
            await self._batcher.stop(drain=True)
            if self._connections:
                # Handlers mid-response finish within the grace period;
                # connections idle in readline() (keep-alive clients that
                # never closed) are cancelled — their requests were all
                # answered, so nothing is lost.
                _done, pending = await asyncio.wait(
                    list(self._connections), timeout=0.5
                )
                for connection in pending:
                    connection.cancel()
                if pending:
                    await asyncio.wait(pending, timeout=1.0)
            self._executor.shutdown(wait=True)

    def request_stop(self) -> None:
        """Begin a graceful drain (signal handler / cross-thread safe)."""
        if self._loop is None or self._stop_event is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)

    def start_in_background(self, timeout: float = 30.0) -> "ServerHandle":
        """Run the server on a daemon thread; returns once it is listening.

        The tests, the benchmark, and notebook users want a live server
        without giving up their thread; production deployments should run
        :meth:`run` as the process's main job instead.
        """
        ready = threading.Event()
        errors: List[BaseException] = []

        def _main() -> None:
            try:
                self.run(install_signal_handlers=False, on_ready=lambda _s: ready.set())
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)
                ready.set()

        thread = threading.Thread(target=_main, name="repro-serve", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("repro serve did not come up within the timeout")
        if errors:
            raise RuntimeError(f"repro serve failed to start: {errors[0]!r}") from errors[0]
        return ServerHandle(self, thread)

    # -- batching ----------------------------------------------------------

    async def _run_batch(
        self, config: ClusteringConfig, matrices: List[np.ndarray]
    ) -> List[Any]:
        assert self._loop is not None and self._executor is not None
        # Snapshot this task's contextvars (including the batcher's live
        # serve.batch_fit span) and run the fit inside the copy, so the
        # cluster_many -> cache -> kernel spans opened on the executor
        # thread attach to the request trace without any plumbing.
        context = contextvars.copy_context()
        return await self._loop.run_in_executor(
            self._executor, lambda: context.run(cluster_many, matrices, config)
        )

    def _record_span_metric(self, span: Span) -> None:
        self.metrics.record_span(span.kind, span.duration_seconds)

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except _BadRequest as error:
                    writer.write(self._response(HTTPStatus.BAD_REQUEST, {"error": str(error)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                start = self._loop.time() if self._loop else 0.0
                status, payload, extra_headers = await self._route(request)
                elapsed = (self._loop.time() - start) if self._loop else None
                self.metrics.record_response(int(status), elapsed)
                writer.write(
                    self._response(status, payload, extra_headers, head_only=request.method == "HEAD")
                )
                await writer.drain()
                if not request.keep_alive or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _response(
        self,
        status: HTTPStatus,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        *,
        head_only: bool = False,
    ) -> bytes:
        return render_response(
            status,
            payload,
            extra_headers,
            server_token=f"repro-serve/{__version__}",
            head_only=head_only,
        )

    # -- routing -----------------------------------------------------------

    async def _route(
        self, request: _Request
    ) -> Tuple[HTTPStatus, Any, Optional[Dict[str, str]]]:
        path = request.path.split("?", 1)[0]
        # Bucket unknown methods/paths so hostile or misdirected traffic
        # cannot grow the metrics dict (and /metrics document) unboundedly.
        method = request.method if request.method in ("GET", "HEAD", "POST") else "<other>"
        route = f"{method} {path if path in ('/cluster', '/healthz', '/metrics') else '<other>'}"
        self.metrics.record_request(route)
        if path == "/healthz" and request.method in ("GET", "HEAD"):
            return HTTPStatus.OK, self._healthz_payload(), None
        if path == "/metrics" and request.method in ("GET", "HEAD"):
            if wants_prometheus(request.path, request.headers.get("accept")):
                text = render_prometheus(self._metrics_payload())
                return (
                    HTTPStatus.OK,
                    BinaryBody(text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE),
                    None,
                )
            return HTTPStatus.OK, self._metrics_payload(), None
        if path == "/cluster":
            if request.method != "POST":
                return (
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    {"error": "use POST /cluster"},
                    {"Allow": "POST"},
                )
            return await self._handle_cluster(request)
        return HTTPStatus.NOT_FOUND, {
            "error": f"no route {request.method} {path[:80]}; "
            "routes: POST /cluster, GET /healthz, GET /metrics"
        }, None

    def _healthz_payload(self) -> Dict[str, Any]:
        assert self._batcher is not None
        return self.metrics.healthz(
            queue_depth=self._batcher.queue_depth,
            draining=self._draining or self._batcher.stopping,
            version=__version__,
        )

    def _metrics_payload(self) -> Dict[str, Any]:
        assert self._batcher is not None
        cache_stats = None
        if self.default_config.cache:
            from repro.cache import get_result_cache

            cache_stats = get_result_cache(self.default_config.cache_dir).stats.as_dict()
        return self.metrics.render(
            queue_depth=self._batcher.queue_depth,
            batcher_stats=self._batcher.stats.as_dict(),
            cache_stats=cache_stats,
            draining=self._draining or self._batcher.stopping,
            version=__version__,
        )

    def _request_span(self, request: _Request) -> Any:
        """The root ``server.request`` span, or :data:`NOOP_SPAN`.

        A client-carried ``X-Repro-Trace-Id`` always continues that trace
        (the caller is already paying for it upstream); without one the
        server originates a trace only when an event log is configured
        and the per-trace sampler accepts, so the default-off path
        allocates nothing.
        """
        trace_id = valid_trace_id(request.headers.get(TRACE_ID_HEADER))
        if trace_id is None:
            if not self._trace_enabled or not self.tracer.should_sample():
                return NOOP_SPAN
            trace_id = new_trace_id()
        return self.tracer.start_span(
            "server.request",
            trace_id=trace_id,
            parent_id=valid_trace_id(request.headers.get(PARENT_SPAN_HEADER)),
        )

    async def _handle_cluster(
        self, request: _Request
    ) -> Tuple[HTTPStatus, Any, Optional[Dict[str, str]]]:
        assert self._batcher is not None
        try:
            matrix, config = self._parse_cluster_request(request)
        except _UnsupportedMediaType as error:
            return HTTPStatus.UNSUPPORTED_MEDIA_TYPE, {"error": str(error)}, None
        except _BadRequest as error:
            return HTTPStatus.BAD_REQUEST, {"error": str(error)}, None
        span = self._request_span(request)
        echo = span is not NOOP_SPAN and request.headers.get(TRACE_ECHO_HEADER) == "1"
        if echo:
            self.tracer.collect(span.trace_id)
        try:
            with span:
                span.set_attribute("n", int(matrix.shape[0]))
                status, payload, headers = await self._cluster_response(
                    request, matrix, config, span, echo
                )
                if span is not NOOP_SPAN:
                    span.set_attribute("status", int(status))
                    if int(status) >= 500:
                        span.set_error()
                return status, payload, headers
        finally:
            # drain() in the success path empties the collector; this
            # covers every error path so unechoed buffers never pile up.
            if echo:
                self.tracer.discard(span.trace_id)

    async def _cluster_response(
        self,
        request: _Request,
        matrix: np.ndarray,
        config: ClusteringConfig,
        span: Any,
        echo: bool,
    ) -> Tuple[HTTPStatus, Any, Optional[Dict[str, str]]]:
        assert self._batcher is not None
        try:
            future = self._batcher.submit(matrix, config)
        except QueueFull as error:
            # The body carries the honest fractional backoff; the header
            # stays an RFC-valid integer (rounded up, at least 1s).
            retry_after_seconds = retry_after_hint(self.max_wait_ms)
            return (
                HTTPStatus.TOO_MANY_REQUESTS,
                {"error": str(error), "retry_after_seconds": retry_after_seconds},
                {"Retry-After": str(max(1, math.ceil(retry_after_seconds)))},
            )
        except ServiceStopping as error:
            return (
                HTTPStatus.SERVICE_UNAVAILABLE,
                {"error": str(error)},
                {"Connection": "close"},
            )
        try:
            result, info = await future
        except ServiceStopping as error:
            return HTTPStatus.SERVICE_UNAVAILABLE, {"error": str(error)}, None
        except ValueError as error:
            # Config/data rejected at fit time (e.g. kmeans without
            # num_clusters): the client's fault, not the server's.
            return HTTPStatus.BAD_REQUEST, {"error": str(error)}, None
        except Exception as error:  # noqa: BLE001 - any fit crash -> 500
            return (
                HTTPStatus.INTERNAL_SERVER_ERROR,
                {"error": f"{type(error).__name__}: {error}"},
                None,
            )
        self.metrics.record_served(info["queue_seconds"], info["fit_seconds"])
        envelope = {
            # to_dict() is the JSON-safe dict behind to_json(), embedded
            # directly — no stringify/reparse, so re-serializing it is
            # byte-identical to a direct estimator fit's to_json().
            "result": result.to_dict(),
            "serving": {
                "batch_size": info["batch_size"],
                "batch_distinct": info["batch_distinct"],
                "queue_seconds": round(info["queue_seconds"], 6),
                "fit_seconds": round(info["fit_seconds"], 6),
            },
        }
        if echo:
            # The opt-in trace block: every span of this trace that has
            # already closed (queue, batch fit, cache, kernel...).  The
            # request span itself is still open, so its ids ride along
            # for the client to stitch the tree.
            envelope["trace"] = {
                "trace_id": span.trace_id,
                "root_span_id": span.span_id,
                "spans": self.tracer.drain(span.trace_id),
            }
        if self.binary and _accepts_binary(request):
            # Same envelope, lifted into a wire frame: the labels travel as
            # a raw int64 buffer, everything else in the frame header, and
            # decoding reproduces the JSON envelope byte for byte.
            return HTTPStatus.OK, BinaryBody(encode_envelope(envelope), WIRE_CONTENT_TYPE), None
        return HTTPStatus.OK, envelope, None

    def _parse_cluster_request(self, request: _Request) -> Tuple[np.ndarray, ClusteringConfig]:
        """Decode a cluster request body in either transport."""
        if request.media_type == WIRE_CONTENT_TYPE:
            if not self.binary:
                raise _UnsupportedMediaType(
                    f"this server runs with the binary transport disabled; "
                    f"POST JSON instead of {WIRE_CONTENT_TYPE}"
                )
            try:
                matrix, config_payload = decode_request(request.body)
            except WireFormatError as error:
                raise _BadRequest(f"bad {WIRE_CONTENT_TYPE} body: {error}") from error
            # float64 frames pass through as the decoded zero-copy view;
            # other numeric dtypes are upcast (one copy) to keep the
            # fingerprint identical to the JSON route's float64 matrix.
            matrix = np.asarray(matrix, dtype=float)
            return self._checked_matrix(matrix), self._merged_request_config(config_payload)
        return self._parse_cluster_body(request.body)

    def _parse_cluster_body(self, body: bytes) -> Tuple[np.ndarray, ClusteringConfig]:
        if not body:
            raise _BadRequest('missing request body; expected {"matrix": [[...]], "config": {...}}')
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _BadRequest(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        unknown = sorted(set(payload) - {"matrix", "config"})
        if unknown:
            raise _BadRequest(f"unknown request keys {unknown}; expected 'matrix' and optional 'config'")
        if "matrix" not in payload:
            raise _BadRequest("request is missing 'matrix'")
        try:
            matrix = np.asarray(payload["matrix"], dtype=float)
        except (TypeError, ValueError) as error:
            raise _BadRequest(f"'matrix' is not numeric: {error}") from error
        config_payload = payload.get("config", {})
        return self._checked_matrix(matrix), self._merged_request_config(config_payload)

    @staticmethod
    def _checked_matrix(matrix: np.ndarray) -> np.ndarray:
        """Shape/finiteness validation shared by the JSON and binary routes."""
        if matrix.ndim != 2 or 0 in matrix.shape:
            raise _BadRequest(f"'matrix' must be 2-D and non-empty; got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise _BadRequest("'matrix' contains NaN or infinite entries")
        return matrix

    def _merged_request_config(self, config_payload: Any) -> ClusteringConfig:
        """Overlay a request's (partial) config onto the server default."""
        if not isinstance(config_payload, dict):
            raise _BadRequest("'config' must be a JSON object (ClusteringConfig.to_dict payload)")
        reserved = sorted(set(config_payload) - REQUEST_CONFIG_FIELDS)
        if reserved:
            raise _BadRequest(
                f"config fields {reserved} are operator-controlled (or unknown) and "
                f"cannot be set per request; allowed: {sorted(REQUEST_CONFIG_FIELDS)}"
            )
        try:
            return self.default_config.merged(config_payload)
        except (TypeError, ValueError) as error:
            raise _BadRequest(f"bad 'config': {error}") from error


@dataclass
class ServerHandle:
    """A background server plus the thread running it."""

    server: ClusteringServer
    thread: threading.Thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the serving thread."""
        self.server.request_stop()
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - drain stuck
            raise RuntimeError("repro serve did not drain within the timeout")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
