"""The binary matrix wire format of the clustering service.

JSON float matrices are the serve path's hidden tax at large n: the client
pays ``tolist()`` + ``json.dumps``, the body is 3-4x the raw bytes, and the
server pays ``json.loads`` plus an array build before the fingerprint and
shared-memory arena ever see the data.  This module defines
``application/x-repro-matrix`` — a tiny versioned container (npy-lite)
that ships the raw C-order buffer instead:

.. code-block:: text

    offset  size  field
    0       4     magic  b"RPRM"
    4       1     wire version (currently 1)
    5       3     reserved (zero)
    8       4     header length H (uint32, little-endian)
    12      H     header: UTF-8 JSON object
    12+H    *     payload: the C-order array buffer (or empty)

The header carries ``{"dtype": "<f8", "shape": [rows, cols]}`` plus
frame-specific keys: a request frame adds ``"config"`` (the same partial
``ClusteringConfig.to_dict()`` payload the JSON route accepts), a response
frame carries the result envelope with the flat labels lifted out into the
binary payload.

Decoding is zero-copy by construction: :func:`decode_matrix` returns a
read-only :func:`numpy.frombuffer` view over the request body, so the only
copy left on the serve path is the write into the shared-memory segment
(``repro.cache.fingerprint.matrix_fingerprint`` hashes the same view
through the buffer protocol).  Malformed frames raise
:class:`WireFormatError`, which the server renders as HTTP 400 — a
truncated or padded body is the client's bug, never a 500.

Only little-endian (or byteorder-free) numeric dtypes are accepted; the
encoder byte-swaps big-endian inputs so a frame means the same bytes on
every host.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

#: The media type negotiated via ``Content-Type`` / ``Accept``.
WIRE_CONTENT_TYPE = "application/x-repro-matrix"

MAGIC = b"RPRM"
WIRE_VERSION = 1

#: magic(4) | version(1) | reserved(3) | header_len(uint32 LE)
_PREFIX = struct.Struct("<4sB3xI")

#: Headers are tiny JSON documents; anything bigger is garbage (the matrix
#: itself travels in the payload, never the header).
_MAX_HEADER_BYTES = 1 * 1024 * 1024

#: dtype kinds a matrix frame may carry (floats, signed/unsigned ints, bool).
_ALLOWED_KINDS = frozenset("fiub")

#: dtype the binary labels payload of a response frame uses.
_LABELS_DTYPE = "<i8"


class WireFormatError(ValueError):
    """A malformed ``application/x-repro-matrix`` frame (client error)."""


def _checked_dtype(spec: Any) -> np.dtype:
    """Validate a header dtype string into a concrete little-endian dtype."""
    if not isinstance(spec, str):
        raise WireFormatError(f"header 'dtype' must be a string, got {type(spec).__name__}")
    try:
        dtype = np.dtype(spec)
    except TypeError as error:
        raise WireFormatError(f"unknown dtype {spec!r}") from error
    if dtype.kind not in _ALLOWED_KINDS or dtype.hasobject:
        raise WireFormatError(f"dtype {spec!r} is not a supported numeric dtype")
    if dtype.byteorder == ">":
        raise WireFormatError(f"dtype {spec!r} is big-endian; frames are little-endian")
    return dtype


def _checked_shape(spec: Any) -> Tuple[int, ...]:
    if (
        not isinstance(spec, list)
        or not all(isinstance(n, int) and not isinstance(n, bool) and n >= 0 for n in spec)
    ):
        raise WireFormatError(f"header 'shape' must be a list of non-negative ints, got {spec!r}")
    if len(spec) > 8:
        raise WireFormatError(f"header 'shape' has {len(spec)} dimensions (max 8)")
    return tuple(spec)


# ---------------------------------------------------------------------------
# Frame container
# ---------------------------------------------------------------------------


def encode_frame(header: Dict[str, Any], payload: bytes = b"") -> bytes:
    """One wire frame from a JSON-safe ``header`` and a raw ``payload``."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > _MAX_HEADER_BYTES:
        raise WireFormatError(f"frame header exceeds {_MAX_HEADER_BYTES} bytes")
    return b"".join((_PREFIX.pack(MAGIC, WIRE_VERSION, len(header_bytes)), header_bytes, payload))


def decode_frame(body: bytes) -> Tuple[Dict[str, Any], memoryview]:
    """Split a frame into its header dict and a zero-copy payload view."""
    if len(body) < _PREFIX.size:
        raise WireFormatError(
            f"frame is {len(body)} bytes, shorter than the {_PREFIX.size}-byte prefix"
        )
    magic, version, header_len = _PREFIX.unpack_from(body)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}; expected {MAGIC!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}; this build speaks {WIRE_VERSION}")
    if header_len > _MAX_HEADER_BYTES:
        raise WireFormatError(f"frame header length {header_len} exceeds {_MAX_HEADER_BYTES}")
    if _PREFIX.size + header_len > len(body):
        raise WireFormatError("frame truncated inside the header")
    try:
        header = json.loads(body[_PREFIX.size : _PREFIX.size + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireFormatError(f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise WireFormatError("frame header must be a JSON object")
    return header, memoryview(body)[_PREFIX.size + header_len :]


# ---------------------------------------------------------------------------
# Matrix frames (requests)
# ---------------------------------------------------------------------------


def encode_matrix(matrix: Any, extra: Optional[Dict[str, Any]] = None) -> bytes:
    """Encode one array as a wire frame (C-order, little-endian).

    ``extra`` keys are merged into the header — the request path uses it to
    carry the ``config`` overlay alongside the matrix.
    """
    array = np.asarray(matrix)
    if array.dtype.kind not in _ALLOWED_KINDS or array.dtype.hasobject:
        raise WireFormatError(f"cannot encode dtype {array.dtype.str!r} as a matrix frame")
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    # No-op for the already-contiguous arrays clients send; only a strided
    # view actually copies, and the wire format requires C-order bytes.
    array = np.ascontiguousarray(array)  # repro: allow[hot-path-copy]
    header: Dict[str, Any] = {"dtype": array.dtype.str, "shape": list(array.shape)}
    if extra:
        header.update(extra)
    payload = memoryview(array).cast("B") if array.nbytes else b""
    return encode_frame(header, payload)


def decode_matrix(body: bytes) -> Tuple[np.ndarray, Dict[str, Any]]:
    """Decode one matrix frame into ``(array, header)``, zero-copy.

    The returned array is a read-only C-order view over ``body`` — no bytes
    are duplicated; hashing it or copying it into shared memory reads the
    request buffer directly.  A payload that does not match the header's
    dtype x shape exactly (truncated or padded) is a
    :class:`WireFormatError`.
    """
    header, payload = decode_frame(body)
    dtype = _checked_dtype(header.get("dtype"))
    shape = _checked_shape(header.get("shape"))
    count = 1
    for n in shape:
        count *= n
    expected = count * dtype.itemsize
    if len(payload) != expected:
        kind = "truncated" if len(payload) < expected else "oversized"
        raise WireFormatError(
            f"{kind} payload: dtype {dtype.str!r} x shape {list(shape)} needs "
            f"{expected} bytes, body carries {len(payload)}"
        )
    array = np.frombuffer(payload, dtype=dtype, count=count).reshape(shape)
    return array, header


def encode_request(matrix: Any, config: Optional[Dict[str, Any]] = None) -> bytes:
    """The binary ``POST /cluster`` body: matrix frame + config in the header."""
    return encode_matrix(matrix, extra={"config": dict(config) if config else {}})


def decode_request(body: bytes) -> Tuple[np.ndarray, Dict[str, Any]]:
    """Decode a binary cluster request into ``(matrix, config_payload)``."""
    matrix, header = decode_matrix(body)
    config = header.get("config", {})
    if not isinstance(config, dict):
        raise WireFormatError("header 'config' must be a JSON object")
    return matrix, config


# ---------------------------------------------------------------------------
# Envelope frames (responses)
# ---------------------------------------------------------------------------


def encode_envelope(envelope: Dict[str, Any]) -> bytes:
    """Encode a served response envelope as a wire frame.

    The flat labels (the response's only array payload) are lifted out of
    ``result.labels`` into the binary payload as ``<i8``; everything else
    rides in the header JSON with its key order intact, so decoding and
    re-serializing reproduces the JSON route's envelope byte for byte.
    """
    result = envelope.get("result")
    labels = result.get("labels") if isinstance(result, dict) else None
    if isinstance(labels, list) and labels:
        # The labels arrive as a Python list; materialising the <i8 buffer
        # is the conversion itself, not an avoidable copy.
        array = np.ascontiguousarray(np.asarray(labels, dtype=_LABELS_DTYPE))  # repro: allow[hot-path-copy]
        slimmed_result = dict(result)
        slimmed_result["labels"] = None  # restored from the payload on decode
        slimmed = dict(envelope)
        slimmed["result"] = slimmed_result
        header = {"envelope": slimmed, "labels_dtype": _LABELS_DTYPE}
        return encode_frame(header, memoryview(array).cast("B"))
    return encode_frame({"envelope": envelope, "labels_dtype": None})


def decode_envelope(body: bytes) -> Dict[str, Any]:
    """Decode a binary response envelope back into the JSON route's dict."""
    header, payload = decode_frame(body)
    envelope = header.get("envelope")
    if not isinstance(envelope, dict):
        raise WireFormatError("envelope frame header carries no 'envelope' object")
    labels_dtype = header.get("labels_dtype")
    if labels_dtype is None:
        if len(payload):
            raise WireFormatError("envelope frame has a payload but no 'labels_dtype'")
        return envelope
    dtype = _checked_dtype(labels_dtype)
    if len(payload) % dtype.itemsize:
        raise WireFormatError(
            f"labels payload of {len(payload)} bytes is not a multiple of "
            f"dtype {dtype.str!r} ({dtype.itemsize} bytes)"
        )
    result = envelope.get("result")
    if not isinstance(result, dict):
        raise WireFormatError("envelope frame carries labels but no 'result' object")
    result["labels"] = [int(value) for value in np.frombuffer(payload, dtype=dtype)]
    return envelope
