"""``repro serve --workers N``: a supervised replica fleet behind one port.

Three parts, composed by :func:`build_fleet`:

* :mod:`~repro.serve.fleet.ring` — rendezvous consistent hashing and the
  per-request affinity key;
* :mod:`~repro.serve.fleet.supervisor` — :class:`ReplicaSupervisor`,
  which spawns and babysits N single-process ``repro serve`` replicas on
  ephemeral loopback ports;
* :mod:`~repro.serve.fleet.router` — :class:`FleetRouter`, the public
  asyncio proxy that hash-routes ``POST /cluster`` bodies to replicas and
  aggregates fleet ``/healthz`` and ``/metrics``.
"""

from repro.serve.fleet.ring import rendezvous_rank, request_affinity_key, spread
from repro.serve.fleet.router import FleetRouter, build_fleet
from repro.serve.fleet.supervisor import ReplicaInfo, ReplicaSupervisor

__all__ = [
    "FleetRouter",
    "ReplicaInfo",
    "ReplicaSupervisor",
    "build_fleet",
    "rendezvous_rank",
    "request_affinity_key",
    "spread",
]
