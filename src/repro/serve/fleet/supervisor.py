"""Replica process supervision for ``repro serve --workers N``.

:class:`ReplicaSupervisor` owns N ``repro serve`` subprocesses, each a
full single-process clustering daemon on an ephemeral loopback port:

* **staggered start** — replicas launch ``stagger_seconds`` apart so N
  python interpreters do not import numpy/scipy simultaneously;
* **readiness gating** — a replica joins the routable set only after its
  startup banner published a port *and* ``GET /healthz`` answered
  ``status: ok``;
* **crash supervision** — a babysitter task per slot restarts a dead
  replica with capped exponential backoff (reset after a stable run), so
  a crash-looping replica cannot busy-spin the host while a one-off
  crash restarts quickly.  Restart counts are published to the fleet
  ``/metrics``;
* **drain** — :meth:`stop` SIGTERMs every replica (each answers all its
  admitted requests before exiting — the single-process drain contract)
  and escalates to SIGKILL only past ``drain_timeout``.

The supervisor is event-loop confined: every method is called from the
router's asyncio loop, so replica state needs no locking.
"""

from __future__ import annotations

import asyncio
import os
import re
import sys
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.httpio import http_fetch

#: The startup banner the single-process server prints; the supervisor
#: parses the ephemeral port out of it.
_BANNER_PATTERN = re.compile(r"listening on http://([\d.]+):(\d+)")

#: A replica that stayed healthy this long earns a backoff reset.
_STABLE_SECONDS = 5.0


@dataclass
class ReplicaInfo:
    """The routable identity of one ready replica."""

    replica_id: str
    port: int
    pid: Optional[int]


class _ReplicaSlot:
    """One supervised replica: process handle + lifecycle bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.replica_id = f"replica-{index}"
        self.process: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.ready = False
        self.state = "starting"  # starting | ready | restarting | stopped
        self.spawns = 0
        self.restarts = 0
        self.last_exit_code: Optional[int] = None
        self.log_tail: deque = deque(maxlen=20)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.replica_id,
            "state": self.state,
            "port": self.port,
            "pid": self.pid,
            "spawns": self.spawns,
            "restarts": self.restarts,
            "last_exit_code": self.last_exit_code,
        }


class ReplicaSupervisor:
    """Spawn and babysit N ``repro serve`` replicas on ephemeral ports.

    Parameters
    ----------
    workers:
        Replica count (at least 1).
    replica_argv:
        Extra ``repro serve`` CLI arguments appended to every replica's
        command line (config flags, batching knobs, ``--cache-dir`` for
        the shared disk tier).  ``--host``/``--port`` are supervisor-owned.
        The literal ``{replica_id}`` in any element is replaced with the
        replica's id (``replica-0``, ...), letting file-valued flags such
        as ``--trace-log`` fan out to per-replica paths.
    host:
        Loopback address replicas bind on.
    stagger_seconds / backoff_base_seconds / backoff_cap_seconds:
        Start stagger and the restart backoff envelope.
    startup_timeout:
        Per-attempt bound on banner + ``/healthz`` readiness.
    drain_timeout:
        How long :meth:`stop` waits for SIGTERMed replicas to finish
        draining before escalating to SIGKILL.
    """

    def __init__(
        self,
        workers: int,
        replica_argv: Sequence[str] = (),
        host: str = "127.0.0.1",
        *,
        stagger_seconds: float = 0.25,
        backoff_base_seconds: float = 0.5,
        backoff_cap_seconds: float = 10.0,
        startup_timeout: float = 60.0,
        drain_timeout: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.replica_argv = list(replica_argv)
        self.host = host
        self.stagger_seconds = stagger_seconds
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.startup_timeout = startup_timeout
        self.drain_timeout = drain_timeout
        self._slots = [_ReplicaSlot(index) for index in range(workers)]
        self._tasks: List[asyncio.Task] = []
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Launch one babysitter task per replica slot."""
        self._stopping = False
        self._tasks = [
            asyncio.create_task(self._babysit(slot), name=f"babysit-{slot.replica_id}")
            for slot in self._slots
        ]

    async def wait_ready(self, count: Optional[int] = None, timeout: float = 120.0) -> None:
        """Block until ``count`` replicas (default: all) answer healthz."""
        needed = self.workers if count is None else count
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if len(self.ready_replicas()) >= needed:
                return
            dead = [task for task in self._tasks if task.done() and task.exception()]
            if dead:
                raise RuntimeError("replica supervisor crashed") from dead[0].exception()
            await asyncio.sleep(0.05)
        tails = {
            slot.replica_id: list(slot.log_tail)
            for slot in self._slots
            if not slot.ready and slot.log_tail
        }
        raise TimeoutError(
            f"only {len(self.ready_replicas())}/{needed} replicas became ready "
            f"within {timeout}s; replica output: {tails!r}"
        )

    async def stop(self) -> None:
        """Drain the whole fleet: SIGTERM every replica, then reap."""
        self._stopping = True
        procs = [slot.process for slot in self._slots if slot.process is not None]
        for slot in self._slots:
            slot.ready = False
            slot.state = "stopped"
            if slot.process is not None and slot.process.returncode is None:
                try:
                    slot.process.terminate()
                except ProcessLookupError:  # pragma: no cover - exited just now
                    pass
        live = [p for p in procs if p.returncode is None]
        if live:
            waits = [asyncio.create_task(p.wait()) for p in live]
            _done, pending = await asyncio.wait(waits, timeout=self.drain_timeout)
            if pending:  # pragma: no cover - replicas refused to drain
                for process in live:
                    if process.returncode is None:
                        process.kill()
                await asyncio.wait(pending, timeout=5.0)
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    # -- introspection -----------------------------------------------------

    def ready_replicas(self) -> List[ReplicaInfo]:
        """Replicas currently safe to route to."""
        return [
            ReplicaInfo(slot.replica_id, slot.port, slot.pid)
            for slot in self._slots
            if slot.ready and slot.port is not None
        ]

    @property
    def restarts_total(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    def status(self) -> List[Dict[str, Any]]:
        return [slot.status() for slot in self._slots]

    # -- internals ---------------------------------------------------------

    def _replica_command(self, slot: _ReplicaSlot) -> List[str]:
        # The literal placeholder ``{replica_id}`` in any replica_argv
        # element is substituted with the slot's id, so per-replica file
        # arguments (e.g. ``--trace-log traces-{replica_id}.jsonl``) fan
        # out without colliding.
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            *[arg.replace("{replica_id}", slot.replica_id) for arg in self.replica_argv],
        ]

    def _replica_env(self) -> Dict[str, str]:
        """The child environment, with this repro importable via -m."""
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    async def _babysit(self, slot: _ReplicaSlot) -> None:
        """Spawn, watch, and restart one replica until the fleet stops."""
        await asyncio.sleep(slot.index * self.stagger_seconds)
        loop = asyncio.get_running_loop()
        backoff = self.backoff_base_seconds
        while not self._stopping:
            slot.state = "starting" if slot.spawns == 0 else "restarting"
            became_ready = await self._launch(slot)
            ready_at = loop.time()
            if slot.process is not None:
                slot.last_exit_code = await slot.process.wait()
            slot.ready = False
            if self._stopping:
                slot.state = "stopped"
                return
            slot.state = "restarting"
            slot.restarts += 1
            if became_ready and loop.time() - ready_at >= _STABLE_SECONDS:
                backoff = self.backoff_base_seconds  # stable run: forgive history
            await asyncio.sleep(backoff)
            backoff = min(self.backoff_cap_seconds, backoff * 2.0)
        slot.state = "stopped"

    async def _launch(self, slot: _ReplicaSlot) -> bool:
        """One spawn attempt: subprocess + banner port + healthz gate."""
        slot.port = None
        slot.log_tail.clear()
        try:
            slot.process = await asyncio.create_subprocess_exec(
                *self._replica_command(slot),
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.STDOUT,
                env=self._replica_env(),
            )
        except OSError as error:  # pragma: no cover - exec failure
            slot.log_tail.append(f"spawn failed: {error!r}")
            return False
        slot.spawns += 1
        if self._stopping:
            slot.process.terminate()
            return False
        try:
            port = await asyncio.wait_for(self._read_banner(slot), self.startup_timeout)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            # No banner: the replica is broken (bad flags, port clash);
            # kill it and let the babysitter back off before retrying.
            if slot.process.returncode is None:
                slot.process.terminate()
            return False
        slot.port = port
        # Keep draining the child's stdout so it can never block on a
        # full pipe; the tail is kept for crash diagnostics.
        asyncio.create_task(self._drain_stdout(slot, slot.process))
        if not await self._await_healthy(slot):
            return False
        slot.ready = True
        slot.state = "ready"
        return True

    async def _read_banner(self, slot: _ReplicaSlot) -> int:
        assert slot.process is not None and slot.process.stdout is not None
        while True:
            line = await slot.process.stdout.readline()
            if not line:
                raise ValueError("replica exited before printing its banner")
            text = line.decode("utf-8", "replace").rstrip()
            slot.log_tail.append(text)
            match = _BANNER_PATTERN.search(text)
            if match:
                return int(match.group(2))

    async def _drain_stdout(
        self, slot: _ReplicaSlot, process: asyncio.subprocess.Process
    ) -> None:
        assert process.stdout is not None
        try:
            while True:
                line = await process.stdout.readline()
                if not line:
                    return
                slot.log_tail.append(line.decode("utf-8", "replace").rstrip())
        except (asyncio.CancelledError, ValueError):  # pragma: no cover
            return

    async def _await_healthy(self, slot: _ReplicaSlot) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.startup_timeout
        assert slot.process is not None and slot.port is not None
        while loop.time() < deadline and not self._stopping:
            if slot.process.returncode is not None:
                return False  # died while we were probing
            try:
                status, payload = await http_fetch(self.host, slot.port, "/healthz", timeout=2.0)
                if status == 200 and payload.get("status") == "ok":
                    return True
            except (OSError, asyncio.TimeoutError, ConnectionError):
                pass  # not accepting yet
            await asyncio.sleep(0.05)
        if slot.process.returncode is None and not self._stopping:
            slot.process.terminate()
        return False
