"""Consistent hashing for the fleet router.

Two pieces:

* :func:`rendezvous_rank` — highest-random-weight (rendezvous) hashing:
  every ``(key, member)`` pair gets a stable pseudo-random score and a
  key's preference order is the members sorted by that score.  Unlike a
  modulo scheme, removing one member only remaps the keys that ranked it
  first (each inherits its *second* choice, which is exactly the router's
  failover target), and a restarted replica gets its old keys back — the
  property that keeps per-replica LRU caches hot across restarts.
* :func:`request_affinity_key` — the routing key of one ``POST /cluster``
  body.  Binary (``application/x-repro-matrix``) bodies are decoded
  zero-copy so the key is the *content* fingerprint (matrix bytes +
  config payload — the same identity the result cache keys on); JSON
  bodies hash their raw bytes, which is cheaper than a full parse and
  still maps identical re-sent requests onto one replica.

Everything here is pure and deterministic: no clocks, no randomness, no
state — the ring is recomputed per request from the live member list, so
membership changes (crash, restart, drain) take effect immediately.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.cache.fingerprint import config_fingerprint, matrix_fingerprint
from repro.serve.wire import WIRE_CONTENT_TYPE, WireFormatError, decode_request


def _score(key: str, member: str) -> int:
    """The stable rendezvous weight of ``member`` for ``key``."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(member.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(key.encode("utf-8"))
    return int.from_bytes(digest.digest(), "big")


def rendezvous_rank(key: str, members: Sequence[str]) -> List[str]:
    """``members`` in preference order for ``key`` (highest score first).

    The first element is the key's home replica; the rest are its
    failover order.  Deterministic for a given ``(key, members)`` pair and
    stable under membership change: members that stay keep their relative
    order, so removing the home replica promotes the old second choice.
    """
    return sorted(set(members), key=lambda member: (_score(key, member), member), reverse=True)


def request_affinity_key(body: bytes, media_type: str = "") -> str:
    """The consistent-hash routing key of one ``POST /cluster`` body.

    Binary wire frames are decoded (zero-copy) down to the same
    content identity the result cache uses — matrix fingerprint plus the
    request's config payload — so re-encoded but identical binary
    submissions share a replica.  JSON bodies (and undecodable garbage,
    which any replica will 400) key on their raw bytes: a client
    re-sending the same encoded body always lands on the same replica,
    which is the locality the per-replica in-memory cache needs.
    """
    if media_type == WIRE_CONTENT_TYPE:
        try:
            matrix, config_payload = decode_request(bytes(body))
            return "content:" + _content_key(matrix, config_payload)
        except WireFormatError:
            pass  # malformed frame: fall through to raw-bytes keying
    digest = hashlib.blake2b(digest_size=20)
    digest.update(body)
    return "raw:" + digest.hexdigest()


def _content_key(matrix: np.ndarray, config_payload: Dict[str, Any]) -> str:
    return matrix_fingerprint(np.asarray(matrix)) + ":" + config_fingerprint(dict(config_payload))


def spread(keys: Sequence[str], members: Sequence[str]) -> Dict[str, int]:
    """How many of ``keys`` rank each member first (load-balance preview)."""
    counts = {member: 0 for member in members}
    for key in keys:
        ranked = rendezvous_rank(key, members)
        if ranked:
            counts[ranked[0]] += 1
    return counts
