"""The fleet front door: one port, N replicas, consistent-hash routing.

:class:`FleetRouter` is an asyncio HTTP proxy that makes a supervised
replica pool look exactly like one ``repro serve`` daemon:

* ``POST /cluster`` — the router reads the body, derives its affinity key
  (:func:`~repro.serve.fleet.ring.request_affinity_key` — for binary
  frames that is the zero-copy content fingerprint, for JSON the raw body
  hash), ranks the *ready* replicas with rendezvous hashing, and proxies
  the request bytes through unmodified.  Identical traffic therefore
  always lands on the same replica, which keeps that replica's in-memory
  result cache hot — the fleet-level analogue of the cache-locality the
  single process gets for free.
* **failover** — if the chosen replica fails mid-exchange (crashed, being
  restarted), the router retries once on the next ring node.  The retry
  is safe because a clustering POST is a deterministic pure computation
  against a content-addressed cache: re-dispatching a request whose
  first attempt may already have been fitted can only recompute (or
  cache-hit) the same bytes, never corrupt state — which is what makes
  this POST idempotent-safe where a generic write would not be.
* ``GET /healthz`` / ``GET /metrics`` — answered by the router itself:
  fleet health is the ready-replica count, fleet metrics aggregate the
  router's own counters (routed-per-replica, failovers, proxy errors)
  with a live ``/metrics`` scrape of every ready replica (requests,
  429s, cache hit-rate) plus the supervisor's restart counters.

Responses are forwarded byte-for-byte: what a client receives through
the router is exactly what the replica produced, so routed and direct
responses are byte-identical for both transports.

Shutdown drains outside-in: SIGTERM stops the accept loop, in-flight
proxied requests finish, and only then are the replicas SIGTERMed (each
drains its own admitted requests before exiting).
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
from http import HTTPStatus
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import __version__
from repro.obs.events import TraceEventLog
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    merge_metrics_documents,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    Tracer,
    new_trace_id,
    valid_trace_id,
)
from repro.serve.fleet.ring import rendezvous_rank, request_affinity_key
from repro.serve.fleet.supervisor import ReplicaInfo, ReplicaSupervisor
from repro.serve.httpio import (
    HEADER_LIMIT,
    BadRequest,
    BinaryBody,
    Request,
    http_fetch,
    read_request,
    render_response,
)
from repro.serve.server import ServerHandle

#: Connection-scoped headers the proxy must not forward verbatim.
_HOP_HEADERS = frozenset({"host", "connection", "content-length", "expect", "keep-alive"})


class FleetRouter:
    """Consistent-hash router over a :class:`ReplicaSupervisor` pool.

    Parameters
    ----------
    supervisor:
        The replica pool; started/stopped by this router's lifecycle.
    host / port:
        Public bind address; port ``0`` picks an ephemeral port,
        published on :attr:`port` once listening.
    proxy_timeout:
        Bound on one router->replica exchange (covers the fit).
    failover_attempts:
        Ring nodes tried per request (2 = home replica + one retry).
    no_replica_grace:
        How long a request waits for *any* ready replica (e.g. the whole
        pool mid-restart) before the router answers 503.
    ready_timeout:
        Startup bound: how long :meth:`serve` waits for the full pool to
        become ready before failing.
    trace_log:
        Append one JSON line per closed router span to this file and
        turn on router-originated tracing (see
        :class:`~repro.serve.server.ClusteringServer`).  Point it at the
        same file the replicas inherit and ``repro trace`` reconstructs
        the whole router->replica waterfall from one log.
    trace_sample:
        Per-trace sampling rate for router-originated traces (client
        trace ids are always continued).
    """

    def __init__(
        self,
        supervisor: ReplicaSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        proxy_timeout: float = 300.0,
        failover_attempts: int = 2,
        no_replica_grace: float = 5.0,
        ready_timeout: float = 180.0,
        trace_log: Optional[str] = None,
        trace_sample: float = 1.0,
    ) -> None:
        if failover_attempts < 1:
            raise ValueError("failover_attempts must be at least 1")
        self.supervisor = supervisor
        self.host = host
        self.port = port  # replaced by the bound port once listening
        self.proxy_timeout = proxy_timeout
        self.failover_attempts = failover_attempts
        self.no_replica_grace = no_replica_grace
        self.ready_timeout = ready_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False
        self._connections: set = set()
        self._started_clock: Optional[float] = None
        # Router-level counters; event-loop confined, so no locks.
        self.routed_total: Dict[str, int] = {}
        self.responses_total: Dict[int, int] = {}
        self.failovers_total = 0
        self.proxy_errors_total = 0
        self.unrouted_total = 0
        self.trace_log = trace_log
        self.trace_sample = trace_sample
        self.tracer = Tracer(sample_rate=trace_sample)
        self._trace_enabled = trace_log is not None
        self._event_log: Optional[TraceEventLog] = None
        if trace_log is not None:
            self._event_log = TraceEventLog(trace_log)
            self.tracer.add_sink(self._event_log.record)

    # -- lifecycle (mirrors ClusteringServer) ------------------------------

    def run(self, *, install_signal_handlers: bool = True, on_ready=None) -> None:
        """Serve until SIGTERM/SIGINT (blocking; owns its event loop)."""
        asyncio.run(
            self.serve(install_signal_handlers=install_signal_handlers, on_ready=on_ready)
        )

    async def serve(self, *, install_signal_handlers: bool = False, on_ready=None) -> None:
        """Spawn the pool, bind, route, and drain in the caller's loop."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_clock = self._loop.time()
        await self.supervisor.start()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=HEADER_LIMIT
        )
        self.port = server.sockets[0].getsockname()[1]
        try:
            await self.supervisor.wait_ready(timeout=self.ready_timeout)
        except BaseException:
            server.close()
            await server.wait_closed()
            await self.supervisor.stop()
            raise
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            if self._connections:
                # In-flight proxied requests (replica fits included) must
                # finish before the pool is torn down: every admitted
                # request gets its answer.
                _done, pending = await asyncio.wait(
                    list(self._connections), timeout=self.proxy_timeout
                )
                for connection in pending:  # pragma: no cover - fit overran
                    connection.cancel()
                if pending:
                    await asyncio.wait(pending, timeout=5.0)
            await self.supervisor.stop()

    def request_stop(self) -> None:
        """Begin a graceful fleet drain (signal handler / cross-thread safe)."""
        if self._loop is None or self._stop_event is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)

    def start_in_background(self, timeout: float = 180.0) -> ServerHandle:
        """Run the fleet on a daemon thread; returns once it is routable."""
        ready = threading.Event()
        errors: List[BaseException] = []

        def _main() -> None:
            try:
                self.run(install_signal_handlers=False, on_ready=lambda _s: ready.set())
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)
                ready.set()

        thread = threading.Thread(target=_main, name="repro-serve-fleet", daemon=True)
        thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("the fleet did not come up within the timeout")
        if errors:
            raise RuntimeError(f"the fleet failed to start: {errors[0]!r}") from errors[0]
        return ServerHandle(self, thread)

    # -- HTTP front door ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    writer.write(self._render(HTTPStatus.BAD_REQUEST, {"error": str(error)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                raw = await self._route(request)
                writer.write(raw)
                await writer.drain()
                if not request.keep_alive or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _render(
        self,
        status: HTTPStatus,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        *,
        head_only: bool = False,
    ) -> bytes:
        self.responses_total[int(status)] = self.responses_total.get(int(status), 0) + 1
        return render_response(
            status,
            payload,
            extra_headers,
            server_token=f"repro-serve-fleet/{__version__}",
            head_only=head_only,
        )

    async def _route(self, request: Request) -> bytes:
        path = request.path.split("?", 1)[0]
        if path == "/healthz" and request.method in ("GET", "HEAD"):
            return self._render(
                HTTPStatus.OK, self._healthz_payload(), head_only=request.method == "HEAD"
            )
        if path == "/metrics" and request.method in ("GET", "HEAD"):
            if wants_prometheus(request.path, request.headers.get("accept")):
                text = await self._prometheus_payload()
                return self._render(
                    HTTPStatus.OK,
                    BinaryBody(text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE),
                    head_only=request.method == "HEAD",
                )
            payload = await self._metrics_payload()
            return self._render(HTTPStatus.OK, payload, head_only=request.method == "HEAD")
        if path == "/cluster":
            return await self._proxy_cluster(request)
        return self._render(
            HTTPStatus.NOT_FOUND,
            {
                "error": f"no route {request.method} {path[:80]}; "
                "routes: POST /cluster, GET /healthz, GET /metrics"
            },
        )

    # -- control plane -----------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        if self._loop is None or self._started_clock is None:
            return 0.0
        return self._loop.time() - self._started_clock

    def _fleet_status(self, ready_count: int) -> str:
        if self._draining:
            return "draining"
        if ready_count >= self.supervisor.workers:
            return "ok"
        return "degraded" if ready_count else "down"

    def _healthz_payload(self) -> Dict[str, Any]:
        ready = self.supervisor.ready_replicas()
        return {
            "status": self._fleet_status(len(ready)),
            "role": "fleet-router",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "workers": self.supervisor.workers,
            "ready_replicas": len(ready),
            "replicas": self.supervisor.status(),
        }

    async def _metrics_payload(self) -> Dict[str, Any]:
        ready = self.supervisor.ready_replicas()
        scrapes = await asyncio.gather(
            *(self._scrape_replica(replica) for replica in ready)
        )
        replicas: Dict[str, Any] = {}
        for status in self.supervisor.status():
            replicas[status["id"]] = {
                **{k: v for k, v in status.items() if k != "id"},
                "routed_total": self.routed_total.get(status["id"], 0),
                "metrics": None,
            }
        for replica, scraped in zip(ready, scrapes):
            replicas[replica.replica_id]["metrics"] = scraped
        return {
            "fleet": {
                "role": "fleet-router",
                "version": __version__,
                "pid": os.getpid(),
                "uptime_seconds": round(self.uptime_seconds, 3),
                "draining": self._draining,
                "workers": self.supervisor.workers,
                "ready_replicas": len(ready),
                "restarts_total": self.supervisor.restarts_total,
                "failovers_total": self.failovers_total,
                "proxy_errors_total": self.proxy_errors_total,
                "unrouted_total": self.unrouted_total,
                "responses_total": {
                    str(k): v for k, v in sorted(self.responses_total.items())
                },
            },
            "replicas": replicas,
        }

    async def _prometheus_payload(self) -> str:
        """The fleet-wide text exposition: replica documents merged
        bucket-wise plus the router's own ``repro_fleet_*`` series."""
        payload = await self._metrics_payload()
        replica_docs = [
            entry["metrics"]
            for entry in payload["replicas"].values()
            if entry.get("metrics")
        ]
        routed = {
            replica_id: entry.get("routed_total", 0)
            for replica_id, entry in payload["replicas"].items()
        }
        return render_prometheus(
            merge_metrics_documents(replica_docs),
            fleet=payload["fleet"],
            routed_per_replica=routed,
        )

    async def _scrape_replica(self, replica: ReplicaInfo) -> Optional[Dict[str, Any]]:
        try:
            status, payload = await http_fetch(
                self.host, replica.port, "/metrics", timeout=5.0
            )
        except (OSError, asyncio.TimeoutError, ConnectionError):
            return None
        return payload if status == 200 else None

    # -- data plane --------------------------------------------------------

    def _proxy_span(self, request: Request) -> Any:
        """The ``router.request`` root span, or :data:`NOOP_SPAN`.

        Continues a client-carried trace id unconditionally; originates
        one only when ``trace_log`` is set and the sampler accepts.
        """
        trace_id = valid_trace_id(request.headers.get(TRACE_ID_HEADER))
        if trace_id is None:
            if not self._trace_enabled or not self.tracer.should_sample():
                return NOOP_SPAN
            trace_id = new_trace_id()
        return self.tracer.start_span(
            "router.request",
            trace_id=trace_id,
            parent_id=valid_trace_id(request.headers.get(PARENT_SPAN_HEADER)),
        )

    async def _proxy_cluster(self, request: Request) -> bytes:
        """Affinity-route one /cluster request with ring-order failover."""
        key = request_affinity_key(request.body, request.media_type)
        assert self._loop is not None
        grace_deadline = self._loop.time() + self.no_replica_grace
        tried: Set[str] = set()
        last_error: Optional[BaseException] = None
        with self._proxy_span(request) as root:
            for _attempt in range(self.failover_attempts):
                target = await self._pick_replica(key, tried, grace_deadline)
                if target is None:
                    break
                attempt_span = root.child(
                    "router.attempt", replica=target.replica_id, attempt=_attempt + 1
                )
                extra_headers = None
                if attempt_span is not NOOP_SPAN:
                    # Re-parent the hop under *this* attempt: the replica's
                    # server.request span hangs off the attempt span, so a
                    # failover renders as two sibling attempt subtrees —
                    # the dead one error-flagged, the retry carrying the
                    # replica's spans — under one trace id.
                    extra_headers = {
                        TRACE_ID_HEADER: root.trace_id,
                        PARENT_SPAN_HEADER: attempt_span.span_id,
                    }
                try:
                    with attempt_span:
                        status, raw = await asyncio.wait_for(
                            self._exchange(target, request, extra_headers),
                            self.proxy_timeout,
                        )
                except (OSError, ConnectionError, asyncio.IncompleteReadError,
                        asyncio.TimeoutError, ValueError) as error:
                    # Replica died mid-exchange (crash or restart): count the
                    # failover and move to the next ring node.  Safe to
                    # re-dispatch — see the module docstring.  (The attempt
                    # span's context-manager exit already error-flagged it.)
                    tried.add(target.replica_id)
                    self.failovers_total += 1
                    last_error = error
                    continue
                self.routed_total[target.replica_id] = (
                    self.routed_total.get(target.replica_id, 0) + 1
                )
                self.responses_total[status] = self.responses_total.get(status, 0) + 1
                root.set_attribute("replica", target.replica_id)
                root.set_attribute("status", status)
                return raw
            if last_error is None:
                self.unrouted_total += 1
                root.set_error("no ready replica")
                return self._render(
                    HTTPStatus.SERVICE_UNAVAILABLE,
                    {"error": "no ready replica in the fleet; retry shortly"},
                    {"Retry-After": "1"},
                )
            self.proxy_errors_total += 1
            root.set_error(f"{type(last_error).__name__}: {last_error}")
            return self._render(
                HTTPStatus.BAD_GATEWAY,
                {"error": f"all routed replicas failed: {type(last_error).__name__}: {last_error}"},
            )

    async def _pick_replica(
        self, key: str, tried: Set[str], grace_deadline: float
    ) -> Optional[ReplicaInfo]:
        """The highest-ranked ready replica not yet tried, waiting out a
        whole-pool restart up to the grace deadline."""
        assert self._loop is not None
        while True:
            ready = {
                replica.replica_id: replica
                for replica in self.supervisor.ready_replicas()
                if replica.replica_id not in tried
            }
            if ready:
                ranked = rendezvous_rank(key, list(ready))
                return ready[ranked[0]]
            if self._loop.time() >= grace_deadline or self._draining:
                return None
            await asyncio.sleep(0.05)

    async def _exchange(
        self,
        replica: ReplicaInfo,
        request: Request,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One full request/response exchange with a replica.

        The request body travels through unmodified; the response is
        captured raw (status line, headers, body) and forwarded to the
        client byte-for-byte.  ``extra_headers`` (lowercase names)
        override same-named client headers — the tracing hop rewrites
        the parent-span header this way.
        """
        reader, writer = await asyncio.open_connection(
            self.host, replica.port, limit=HEADER_LIMIT
        )
        try:
            lines = [
                f"{request.method} {request.path} HTTP/1.1",
                f"host: {self.host}:{replica.port}",
                f"content-length: {len(request.body)}",
                "connection: close",
            ]
            override = extra_headers or {}
            for name, value in request.headers.items():
                if name not in _HOP_HEADERS and name not in override:
                    lines.append(f"{name}: {value}")
            for name, value in override.items():
                lines.append(f"{name}: {value}")
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            writer.write(request.body)
            await writer.drain()
            status_line = await reader.readline()
            if not status_line.startswith(b"HTTP/"):
                raise ConnectionError(f"malformed replica status line {status_line[:40]!r}")
            status = int(status_line.split()[1])
            raw = bytearray(status_line)
            content_length: Optional[int] = None
            while True:
                line = await reader.readline()
                if not line:
                    raise asyncio.IncompleteReadError(bytes(raw), None)
                raw += line
                if line in (b"\r\n", b"\n"):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            if content_length is None:
                raw += await reader.read()
            else:
                raw += await reader.readexactly(content_length)
            return status, bytes(raw)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


def build_fleet(
    workers: int,
    replica_argv: Sequence[str] = (),
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    stagger_seconds: float = 0.25,
    backoff_base_seconds: float = 0.5,
    backoff_cap_seconds: float = 10.0,
    startup_timeout: float = 60.0,
    drain_timeout: float = 30.0,
    proxy_timeout: float = 300.0,
    no_replica_grace: float = 5.0,
    ready_timeout: float = 180.0,
    trace_log: Optional[str] = None,
    trace_sample: float = 1.0,
) -> FleetRouter:
    """A :class:`FleetRouter` wired to a fresh :class:`ReplicaSupervisor`.

    This is the one-stop constructor the CLI, the benchmark, and the
    tests use: ``build_fleet(4, ["--clusters", "3"]).run()`` is a whole
    fleet behind one port.
    """
    supervisor = ReplicaSupervisor(
        workers,
        replica_argv,
        host,
        stagger_seconds=stagger_seconds,
        backoff_base_seconds=backoff_base_seconds,
        backoff_cap_seconds=backoff_cap_seconds,
        startup_timeout=startup_timeout,
        drain_timeout=drain_timeout,
    )
    return FleetRouter(
        supervisor,
        host,
        port,
        proxy_timeout=proxy_timeout,
        no_replica_grace=no_replica_grace,
        ready_timeout=ready_timeout,
        trace_log=trace_log,
        trace_sample=trace_sample,
    )
