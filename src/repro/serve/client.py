"""A small blocking client for the clustering service.

:class:`ServeClient` wraps one keep-alive :class:`http.client.HTTPConnection`
to a running ``repro serve`` daemon.  It exists for the test suite, the
load benchmark, and scripts — anything that wants typed errors
(:class:`ServerBusy` carries the ``Retry-After`` hint) instead of raw
HTTP plumbing::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 8752) as client:
        envelope = client.cluster(matrix, config={"num_clusters": 4})
        labels = envelope["result"]["labels"]

Large matrices should travel as raw bytes instead of JSON float lists:
``cluster(..., binary=True)`` POSTs the :mod:`repro.serve.wire` frame and
asks for a binary response envelope, decoding it back into the exact dict
the JSON route returns.  Against an old (or ``--no-binary``) server the
client notices the 415 once and transparently falls back to JSON for the
rest of its life.

The client is blocking by design (one request in flight per connection)
and not thread-safe: give each closed-loop load-generator thread its own
instance.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.tracer import TRACE_ECHO_HEADER, TRACE_ID_HEADER, new_trace_id
from repro.serve.wire import WIRE_CONTENT_TYPE, WireFormatError, decode_envelope, encode_request

#: Fractional spread applied to every 429 retry sleep.  A saturated
#: replica rejects a whole burst of closed-loop clients at once and hands
#: each the same ``retry_after_seconds``; without jitter they all come
#: back in lockstep and re-stampede the queue on the same tick.
RETRY_JITTER_FRACTION = 0.2


def jittered_backoff(seconds: float, rng: Optional[random.Random] = None) -> float:
    """``seconds`` scaled by a uniform factor in ``[0.8, 1.2]`` (±20%)."""
    generator = rng if rng is not None else random
    return max(0.0, seconds) * generator.uniform(
        1.0 - RETRY_JITTER_FRACTION, 1.0 + RETRY_JITTER_FRACTION
    )

#: Methods a stale keep-alive socket may transparently retry: safe to
#: replay because the server performs no work on their behalf.  A POST is
#: NOT among them — its first attempt may have been admitted (and fitted!)
#: before the connection died, and silently re-sending it would
#: double-submit the job; POST failures surface to the caller instead.
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD"})


class ServerError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded payload."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServerBusy(ServerError):
    """HTTP 429: the admission queue is full; honor :attr:`retry_after`."""

    def __init__(self, status: int, payload: Dict[str, Any], retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServeClient:
    """Blocking client for one ``repro serve`` endpoint (JSON or binary)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8752, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        #: None until the server's binary support is observed; False after
        #: a 415 told us to stop sending wire frames (old/JSON-only server).
        self._server_accepts_binary: Optional[bool] = None

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        if headers is None:
            headers = {"Content-Type": "application/json"} if body else {}
        last_error: Optional[Exception] = None
        # One transparent retry for idempotent methods only: a keep-alive
        # connection the server closed (drain, restart) surfaces as a
        # stale-socket error on first use, and replaying a GET/HEAD is
        # free.  POST raises immediately — see _IDEMPOTENT_METHODS.
        attempts = 2 if method in _IDEMPOTENT_METHODS else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as error:
                self.close()
                last_error = error
                if attempt == attempts - 1 or isinstance(error, socket.timeout):
                    raise
        else:  # pragma: no cover - loop always breaks or raises
            raise last_error  # type: ignore[misc]
        status = response.status
        content_type = (response.getheader("Content-Type") or "").split(";", 1)[0].strip().lower()
        if content_type == WIRE_CONTENT_TYPE and status < 400:
            try:
                payload = decode_envelope(raw)
            except WireFormatError as error:
                raise ServerError(status, {"error": f"undecodable binary envelope: {error}"})
        else:
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
        if status == 429:
            raise ServerBusy(status, payload, self._retry_after(response, payload))
        if status >= 400:
            raise ServerError(status, payload)
        return payload

    @staticmethod
    def _retry_after(response: http.client.HTTPResponse, payload: Any) -> float:
        """The backoff hint of a 429: fractional body value over the
        integer (RFC-rounded-up) ``Retry-After`` header."""
        if isinstance(payload, dict):
            body_value = payload.get("retry_after_seconds")
            if isinstance(body_value, (int, float)) and not isinstance(body_value, bool):
                if body_value >= 0:
                    return float(body_value)
        retry_header = response.getheader("Retry-After")
        try:
            return float(retry_header) if retry_header else 1.0
        except ValueError:
            return 1.0

    # -- endpoints ---------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """One raw exchange (typed errors included).

        The load benchmark pre-encodes its request body once and replays
        it through this method — re-serializing a large matrix on every
        closed-loop iteration would measure the encoder, not the server.
        Pass ``headers`` to replay binary bodies
        (``{"Content-Type": WIRE_CONTENT_TYPE, "Accept": WIRE_CONTENT_TYPE}``).
        """
        return self._request(method, path, body, headers)

    def encode_cluster_body(
        self, matrix: Any, config: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """The JSON ``POST /cluster`` body for ``matrix`` — reusable across calls."""
        return json.dumps(
            {
                "matrix": np.asarray(matrix, dtype=float).tolist(),
                "config": config or {},
            }
        ).encode("utf-8")

    def encode_cluster_body_binary(
        self, matrix: Any, config: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """The binary ``POST /cluster`` body: a raw float64 wire frame.

        3-4x smaller than :meth:`encode_cluster_body` at large n and
        decoded by the server with zero intermediate copies.  Send it with
        ``Content-Type: application/x-repro-matrix``.
        """
        return encode_request(np.asarray(matrix, dtype=float), config)

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /metrics?format=prometheus`` — the text exposition."""
        connection = self._connect()
        try:
            connection.request("GET", "/metrics?format=prometheus")
            response = connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, socket.timeout, OSError):
            self.close()
            raise
        if response.status != 200:
            raise ServerError(response.status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def cluster(
        self,
        matrix: Any,
        config: Optional[Dict[str, Any]] = None,
        *,
        retries: int = 0,
        retry_backoff: float = 0.0,
        binary: bool = False,
        trace: bool = False,
    ) -> Dict[str, Any]:
        """POST one clustering job; returns the response envelope.

        ``config`` is a partial :meth:`ClusteringConfig.to_dict` payload
        overlaid onto the server's default config.  With ``retries``, a
        429 is retried after the server's ``retry_after_seconds`` hint (or
        ``retry_backoff`` if larger) scaled by ±20% random jitter — a
        burst of clients rejected together must not re-stampede the queue
        in lockstep — which is how a polite closed-loop client behaves
        under admission control.  Connection failures are
        never transparently retried on this path — the first attempt may
        already have been admitted server-side, and replaying it would
        double-submit the job; they propagate to the caller.

        ``binary=True`` ships the matrix as a raw wire frame and asks for
        a binary response envelope; the returned dict is identical either
        way.  A 415 from a server without the transport demotes this
        client to JSON permanently (transparent negotiation).

        ``trace=True`` originates a distributed trace: the request
        carries a fresh ``X-Repro-Trace-Id`` (the fleet router and the
        replica continue it) plus the echo header, and the returned
        envelope gains a ``trace`` block with every server-side span.
        429 retries reuse the same trace id, so one logical job stays one
        trace across admission retries.
        """
        use_binary = binary and self._server_accepts_binary is not False
        if use_binary:
            body = self.encode_cluster_body_binary(matrix, config)
            headers: Optional[Dict[str, str]] = {
                "Content-Type": WIRE_CONTENT_TYPE,
                "Accept": WIRE_CONTENT_TYPE,
            }
        else:
            body = self.encode_cluster_body(matrix, config)
            headers = None
        if trace:
            headers = dict(headers or {"Content-Type": "application/json"})
            headers[TRACE_ID_HEADER] = new_trace_id()
            headers[TRACE_ECHO_HEADER] = "1"
        attempts = max(0, int(retries)) + 1
        for attempt in range(attempts):
            try:
                return self._request("POST", "/cluster", body, headers)
            except ServerBusy as busy:
                if attempt == attempts - 1:
                    raise
                time.sleep(jittered_backoff(max(busy.retry_after, retry_backoff)))
            except ServerError as error:
                if use_binary and error.status == 415:
                    self._server_accepts_binary = False
                    return self.cluster(
                        matrix,
                        config,
                        retries=max(0, attempts - 1 - attempt),
                        retry_backoff=retry_backoff,
                        binary=False,
                        trace=trace,
                    )
                raise
        raise AssertionError("unreachable")  # pragma: no cover

    def cluster_labels(
        self, matrix: Any, config: Optional[Dict[str, Any]] = None, **kwargs: Any
    ) -> np.ndarray:
        """The flat labels of one served fit, as an integer array."""
        envelope = self.cluster(matrix, config, **kwargs)
        labels = envelope["result"]["labels"]
        if labels is None:
            raise ServerError(200, {"error": "the served result carries no flat labels"})
        return np.asarray(labels, dtype=int)

    def wait_healthy(self, timeout: float = 30.0, interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``/healthz`` until the service answers ``ok`` (startup races)."""
        deadline = time.perf_counter() + timeout
        last_error: Optional[Exception] = None
        while time.perf_counter() < deadline:
            try:
                payload = self.healthz()
                if payload.get("status") == "ok":
                    return payload
            except (ServerError, OSError, http.client.HTTPException) as error:
                last_error = error
                self.close()
            time.sleep(interval)
        raise TimeoutError(
            f"no healthy repro serve at {self.host}:{self.port} within {timeout}s "
            f"(last error: {last_error!r})"
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
