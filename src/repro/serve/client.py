"""A small blocking client for the clustering service.

:class:`ServeClient` wraps one keep-alive :class:`http.client.HTTPConnection`
to a running ``repro serve`` daemon.  It exists for the test suite, the
load benchmark, and scripts — anything that wants typed errors
(:class:`ServerBusy` carries the ``Retry-After`` hint) instead of raw
HTTP plumbing::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 8752) as client:
        envelope = client.cluster(matrix, config={"num_clusters": 4})
        labels = envelope["result"]["labels"]

The client is blocking by design (one request in flight per connection)
and not thread-safe: give each closed-loop load-generator thread its own
instance.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Optional

import numpy as np


class ServerError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded payload."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        message = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServerBusy(ServerError):
    """HTTP 429: the admission queue is full; honor :attr:`retry_after`."""

    def __init__(self, status: int, payload: Dict[str, Any], retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8752, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Dict[str, Any]:
        last_error: Optional[Exception] = None
        # One transparent retry: a keep-alive connection the server closed
        # (drain, restart) surfaces as a stale-socket error on first use.
        for attempt in range(2):
            connection = self._connect()
            try:
                connection.request(
                    method,
                    path,
                    body=body,
                    headers={"Content-Type": "application/json"} if body else {},
                )
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as error:
                self.close()
                last_error = error
                if attempt == 1 or isinstance(error, socket.timeout):
                    raise
        else:  # pragma: no cover - loop always breaks or raises
            raise last_error  # type: ignore[misc]
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": raw.decode("utf-8", "replace")}
        status = response.status
        if status == 429:
            retry_header = response.getheader("Retry-After")
            try:
                retry_after = float(retry_header) if retry_header else 1.0
            except ValueError:
                retry_after = 1.0
            raise ServerBusy(status, payload, retry_after)
        if status >= 400:
            raise ServerError(status, payload)
        return payload

    # -- endpoints ---------------------------------------------------------

    def request(self, method: str, path: str, body: Optional[bytes] = None) -> Dict[str, Any]:
        """One raw JSON exchange (typed errors included).

        The load benchmark pre-encodes its request body once and replays
        it through this method — re-serializing a large matrix on every
        closed-loop iteration would measure ``json.dumps``, not the
        server.
        """
        return self._request(method, path, body)

    def encode_cluster_body(
        self, matrix: Any, config: Optional[Dict[str, Any]] = None
    ) -> bytes:
        """The ``POST /cluster`` body for ``matrix`` — reusable across calls."""
        return json.dumps(
            {
                "matrix": np.asarray(matrix, dtype=float).tolist(),
                "config": config or {},
            }
        ).encode("utf-8")

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def cluster(
        self,
        matrix: Any,
        config: Optional[Dict[str, Any]] = None,
        *,
        retries: int = 0,
        retry_backoff: float = 0.0,
    ) -> Dict[str, Any]:
        """POST one clustering job; returns the response envelope.

        ``config`` is a partial :meth:`ClusteringConfig.to_dict` payload
        overlaid onto the server's default config.  With ``retries``, a
        429 is retried after the server's ``Retry-After`` hint (or
        ``retry_backoff`` if larger), which is how a polite closed-loop
        client behaves under admission control.
        """
        body = self.encode_cluster_body(matrix, config)
        attempts = max(0, int(retries)) + 1
        for attempt in range(attempts):
            try:
                return self._request("POST", "/cluster", body)
            except ServerBusy as busy:
                if attempt == attempts - 1:
                    raise
                time.sleep(max(busy.retry_after, retry_backoff))
        raise AssertionError("unreachable")  # pragma: no cover

    def cluster_labels(
        self, matrix: Any, config: Optional[Dict[str, Any]] = None, **kwargs: Any
    ) -> np.ndarray:
        """The flat labels of one served fit, as an integer array."""
        envelope = self.cluster(matrix, config, **kwargs)
        labels = envelope["result"]["labels"]
        if labels is None:
            raise ServerError(200, {"error": "the served result carries no flat labels"})
        return np.asarray(labels, dtype=int)

    def wait_healthy(self, timeout: float = 30.0, interval: float = 0.05) -> Dict[str, Any]:
        """Poll ``/healthz`` until the service answers ``ok`` (startup races)."""
        deadline = time.perf_counter() + timeout
        last_error: Optional[Exception] = None
        while time.perf_counter() < deadline:
            try:
                payload = self.healthz()
                if payload.get("status") == "ok":
                    return payload
            except (ServerError, OSError, http.client.HTTPException) as error:
                last_error = error
                self.close()
            time.sleep(interval)
        raise TimeoutError(
            f"no healthy repro serve at {self.host}:{self.port} within {timeout}s "
            f"(last error: {last_error!r})"
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
