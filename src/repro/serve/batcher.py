"""Dynamic micro-batching queue for the clustering service.

Independent network requests arrive one at a time; the batch front door
(:func:`repro.api.cluster_many`) is at its best when handed many jobs at
once — duplicates dedupe, cache lookups amortize, and fan-out backends get
real batches.  :class:`MicroBatcher` bridges the two: requests are
appended to a bounded queue, and a single flusher coroutine cuts a batch
when either

* ``max_batch_size`` requests are waiting, or
* the *oldest* waiting request has been queued for ``max_wait_ms``

— whichever comes first, so an idle service adds at most ``max_wait_ms``
of latency while a busy one naturally serves full batches.

Admission control is synchronous: :meth:`MicroBatcher.submit` raises
:class:`QueueFull` the moment the queue is at ``max_queue_depth`` (the
server turns that into HTTP 429 + ``Retry-After``) and
:class:`ServiceStopping` once a drain has begun (HTTP 503).  Stopping with
``drain=True`` flushes everything already admitted before returning, so a
SIGTERM never drops an accepted request.

The batcher is event-loop-confined: ``submit`` must be called from the
loop that ``start`` ran on.  The fits themselves happen in whatever
executor the injected ``runner`` coroutine uses, so batches overlap — the
flusher keeps cutting new batches while earlier ones are still fitting.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.api.config import ClusteringConfig
from repro.cache import matrix_fingerprint
from repro.obs.tracer import NOOP_SPAN, Span, current_span

#: runner(config, matrices) -> list of results, one per matrix, in order.
BatchRunner = Callable[[ClusteringConfig, List[np.ndarray]], Awaitable[List[Any]]]


def validate_batching_knobs(
    max_batch_size: int, max_wait_ms: float, max_queue_depth: int
) -> None:
    """Reject bad batching knobs (shared by the batcher and the server, so
    the CLI fails fast with a clean message instead of inside the loop)."""
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be at least 1")
    if max_wait_ms < 0:
        raise ValueError("max_wait_ms must be non-negative")
    if max_queue_depth < 1:
        raise ValueError("max_queue_depth must be at least 1")


class QueueFull(RuntimeError):
    """The admission queue is at ``max_queue_depth``; retry later."""


class ServiceStopping(RuntimeError):
    """The batcher is draining and admits no new work."""


@dataclass
class BatchItem:
    """One admitted request waiting for (or receiving) its result."""

    matrix: np.ndarray
    config: ClusteringConfig
    future: "asyncio.Future[Tuple[Any, Dict[str, Any]]]"
    enqueued_at: float
    #: The request's ambient server.request span (None when untraced),
    #: captured at submit() so the batcher can attribute queue wait and
    #: batch fit back to every member request's trace.
    span: Optional[Span] = None
    #: Wall-clock twin of enqueued_at, only stamped for traced requests
    #: (span start times are wall-clock for cross-process ordering).
    enqueued_wall: float = 0.0


@dataclass
class BatcherStats:
    """Flush accounting, read by the metrics endpoint."""

    batches: int = 0
    batched_requests: int = 0
    distinct_jobs: int = 0
    deduped_requests: int = 0
    largest_batch: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "distinct_jobs": self.distinct_jobs,
            "deduped_requests": self.deduped_requests,
            "largest_batch": self.largest_batch,
            "rejected": self.rejected,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
        }


@dataclass
class _Flush:
    """Bookkeeping for one cut batch while its groups are fitting."""

    items: List[BatchItem]
    started_at: float
    observers: List[Callable[["_Flush"], None]] = field(default_factory=list)


class MicroBatcher:
    """Size-or-deadline batching of clustering jobs onto ``runner``.

    Parameters
    ----------
    runner:
        ``async runner(config, matrices)`` performing the actual fits
        (the server wraps :func:`repro.api.cluster_many` in an executor).
        Called once per distinct config within a cut batch.
    max_batch_size:
        Flush as soon as this many requests are waiting.
    max_wait_ms:
        Flush when the oldest waiting request has been queued this long,
        even if the batch is not full.  ``0`` flushes immediately, but
        whatever is *already* queued at wake-up is still cut as one batch
        (up to ``max_batch_size``) — true batch-size-1 serving needs
        ``max_batch_size=1`` as well, which is what the bench baseline
        sets.
    max_queue_depth:
        Admission bound: ``submit`` raises :class:`QueueFull` beyond it.
        Requests leave the queue the moment their batch is cut, so depth
        measures *waiting* work, not in-flight fits.
    """

    def __init__(
        self,
        runner: BatchRunner,
        *,
        max_batch_size: int = 16,
        max_wait_ms: float = 10.0,
        max_queue_depth: int = 256,
    ) -> None:
        validate_batching_knobs(max_batch_size, max_wait_ms, max_queue_depth)
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self.stats = BatcherStats()
        self._queue: Deque[BatchItem] = deque()
        self._wake = asyncio.Event()
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._flusher: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and start the flusher coroutine."""
        if self._flusher is not None:
            raise RuntimeError("MicroBatcher.start() called twice")
        self._loop = asyncio.get_running_loop()
        self._flusher = self._loop.create_task(self._flush_loop())

    async def stop(self, drain: bool = True) -> None:
        """Refuse new work; with ``drain``, finish everything admitted.

        Without ``drain``, still-queued requests fail with
        :class:`ServiceStopping` (their HTTP handlers answer 503); batches
        already cut always run to completion either way.
        """
        self._stopping = True
        if not drain:
            while self._queue:
                item = self._queue.popleft()
                if not item.future.done():
                    item.future.set_exception(
                        ServiceStopping("the clustering service is shutting down")
                    )
        self._wake.set()
        if self._flusher is not None:
            await self._flusher
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def stopping(self) -> bool:
        return self._stopping

    # -- admission ---------------------------------------------------------

    def submit(
        self, matrix: np.ndarray, config: ClusteringConfig
    ) -> "asyncio.Future[Tuple[Any, Dict[str, Any]]]":
        """Admit one job; resolves to ``(result, serving_info)``.

        ``serving_info`` reports how the job was served: the size and
        distinct-job count of its batch, its queue wait, and the group fit
        time — the numbers a client needs to see micro-batching working.
        """
        if self._loop is None:
            raise RuntimeError("MicroBatcher.start() has not been called")
        if self._stopping:
            raise ServiceStopping("the clustering service is shutting down")
        if len(self._queue) >= self.max_queue_depth:
            self.stats.rejected += 1
            raise QueueFull(
                f"admission queue is full ({self.max_queue_depth} waiting requests)"
            )
        span = current_span()
        item = BatchItem(
            matrix=matrix,
            config=config,
            future=self._loop.create_future(),
            enqueued_at=self._loop.time(),
            span=span,
            enqueued_wall=time.time() if span is not None else 0.0,
        )
        self._queue.append(item)
        self._wake.set()
        return item.future

    # -- flushing ----------------------------------------------------------

    async def _flush_loop(self) -> None:
        assert self._loop is not None
        while True:
            while not self._queue and not self._stopping:
                self._wake.clear()
                await self._wake.wait()
            if not self._queue:
                break  # stopping and fully drained
            deadline = self._queue[0].enqueued_at + self.max_wait_ms / 1000.0
            while (
                len(self._queue) < self.max_batch_size
                and not self._stopping
                and (remaining := deadline - self._loop.time()) > 0
            ):
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch_size, len(self._queue)))
            ]
            task = self._loop.create_task(self._process(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _process(self, batch: List[BatchItem]) -> None:
        assert self._loop is not None
        started = self._loop.time()
        # One runner call per distinct config: cluster_many takes one
        # config for the whole batch, and mixed-config batches are the
        # norm once clients send their own knobs.
        groups: "OrderedDict[str, List[BatchItem]]" = OrderedDict()
        for item in batch:
            groups.setdefault(item.config.to_json(), []).append(item)
        # Content hashing is a full pass over every matrix's bytes, so it
        # runs on the default thread pool, not the event loop.
        distinct = await self._loop.run_in_executor(None, self._count_distinct, batch)
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        self.stats.distinct_jobs += distinct
        self.stats.deduped_requests += len(batch) - distinct
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        for items in groups.values():
            await self._run_group(items, batch_size=len(batch), distinct=distinct,
                                  batch_started=started)

    async def _run_group(
        self,
        items: List[BatchItem],
        *,
        batch_size: int,
        distinct: int,
        batch_started: float,
    ) -> None:
        """Fit one same-config group, isolating per-request failures.

        A fit error anywhere in the group fails the *whole* ``cluster_many``
        call, so on failure each request is retried alone — one client's
        malformed matrix must not poison the answers of the requests it
        happened to be batched with.
        """
        assert self._loop is not None
        config = items[0].config
        group_started = self._loop.time()
        # One member's trace hosts the *live* batch-fit span: entering it
        # as the ambient span here is what lets the executor-side
        # cluster_many -> cache -> kernel spans (carried across the
        # thread hop by contextvars.copy_context in the runner) attach to
        # a real request trace.  Other traced members get an equal-length
        # synthesized copy in _resolve, cross-linked by shared_span.
        exemplar = next((item for item in items if item.span is not None), None)
        fit_span = (
            exemplar.span.child("serve.batch_fit", group_size=len(items))
            if exemplar is not None
            else NOOP_SPAN
        )
        live_fit = fit_span if exemplar is not None else None
        try:
            with fit_span:
                results = await self._runner(config, [item.matrix for item in items])
        except Exception as group_error:  # noqa: BLE001 - re-tried per request
            for item in items:
                if item.future.done():
                    continue
                if len(items) == 1:
                    item.future.set_exception(group_error)
                    continue
                try:
                    solo = await self._runner(config, [item.matrix])
                except Exception as solo_error:  # noqa: BLE001 - per request
                    item.future.set_exception(solo_error)
                else:
                    self._resolve(item, solo[0], batch_size, distinct,
                                  batch_started, group_started, None)
            return
        for item, result in zip(items, results):
            self._resolve(item, result, batch_size, distinct, batch_started,
                          group_started, live_fit)

    def _resolve(
        self,
        item: BatchItem,
        result: Any,
        batch_size: int,
        distinct: int,
        batch_started: float,
        group_started: float,
        fit_span: Optional[Span] = None,
    ) -> None:
        assert self._loop is not None
        info = {
            "batch_size": batch_size,
            "batch_distinct": distinct,
            "queue_seconds": max(0.0, batch_started - item.enqueued_at),
            "fit_seconds": self._loop.time() - group_started,
        }
        span = item.span
        if span is not None:
            # Queue wait happened before any span could run; synthesize
            # it now that the numbers exist, parented to the request span.
            tracer = span.tracer
            tracer.emit(
                "serve.queue",
                trace_id=span.trace_id,
                parent_id=span.span_id,
                started_at=item.enqueued_wall,
                duration_seconds=info["queue_seconds"],
                batch_size=batch_size,
            )
            if fit_span is None or fit_span.trace_id != span.trace_id:
                # The live batch-fit span landed in the exemplar's trace;
                # every other traced member gets a copy covering the same
                # window so its own waterfall accounts for the fit time.
                tracer.emit(
                    "serve.batch_fit",
                    trace_id=span.trace_id,
                    parent_id=span.span_id,
                    started_at=time.time() - info["fit_seconds"],
                    duration_seconds=info["fit_seconds"],
                    shared_span=fit_span.span_id if fit_span is not None else None,
                )
        if not item.future.done():
            item.future.set_result((result, info))

    @staticmethod
    def _count_distinct(batch: List[BatchItem]) -> int:
        """Distinct (config, matrix) jobs in a batch — the fits actually paid
        for after ``cluster_many`` dedupes (content keys computed for
        observability; the front door fingerprints independently).

        Uses :func:`~repro.cache.fingerprint.matrix_fingerprint`, which
        hashes contiguous arrays through the buffer protocol — the binary
        transport's decoded ``frombuffer`` views are counted without the
        ``tobytes`` copy the old ad-hoc key paid."""
        seen = set()
        for item in batch:
            seen.add((item.config.to_json(), matrix_fingerprint(item.matrix)))
        return len(seen)
