"""Live observability for the clustering service.

Two pieces:

* :class:`LatencyHistogram` — fixed-bucket latency accounting with
  interpolated quantiles (p50/p95/p99), cheap enough to update on every
  request from both the event loop and the worker threads;
* :class:`ServerMetrics` — the request/error/batch counters plus the
  histograms, rendered as one JSON document for ``GET /metrics`` and a
  compact liveness payload for ``GET /healthz``.

The cache hit-rate in the ``/metrics`` document is sourced live from the
result cache's :class:`~repro.cache.store.CacheStats` (snapshotted under
the store lock, so a scrape during a burst sees consistent counters), and
the batching figures from :class:`~repro.serve.batcher.BatcherStats` —
``deduped_requests`` climbing while ``distinct_jobs`` stays flat is
micro-batching doing its job.

Everything here is guarded by one lock and touched from multiple threads;
nothing ever blocks on I/O.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional, Sequence

#: Upper bucket bounds in milliseconds (the last bucket is open-ended).
DEFAULT_BUCKET_BOUNDS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of durations, recorded in seconds.

    Quantiles are estimated by linear interpolation within the bucket the
    quantile falls into (the standard fixed-bucket estimator): exact
    enough for dashboards, constant memory no matter the request volume.
    Not internally locked — :class:`ServerMetrics` serializes access.
    """

    def __init__(self, bounds_ms: Sequence[float] = DEFAULT_BUCKET_BOUNDS_MS) -> None:
        if list(bounds_ms) != sorted(bounds_ms) or len(set(bounds_ms)) != len(bounds_ms):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds_ms = tuple(float(b) for b in bounds_ms)
        self.counts = [0] * (len(self.bounds_ms) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = max(0.0, seconds * 1000.0)
        index = len(self.bounds_ms)
        for i, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum_ms += ms
        self.max_ms = max(self.max_ms, ms)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in milliseconds (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                lower = 0.0 if i == 0 else self.bounds_ms[i - 1]
                upper = self.bounds_ms[i] if i < len(self.bounds_ms) else self.max_ms
                upper = max(upper, lower)
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self.max_ms

    def as_dict(self) -> Dict[str, Any]:
        mean = self.sum_ms / self.total if self.total else 0.0
        # Raw bucket state rides along with the derived quantiles so a
        # fleet aggregator can merge replica histograms exactly
        # bucket-wise (obs.prometheus.merge_histogram_dicts) instead of
        # approximating fleet quantiles from per-replica quantiles.
        return {
            "count": self.total,
            "mean_ms": round(mean, 3),
            "p50_ms": round(self.quantile(0.50), 3),
            "p95_ms": round(self.quantile(0.95), 3),
            "p99_ms": round(self.quantile(0.99), 3),
            "max_ms": round(self.max_ms, 3),
            "sum_ms": round(self.sum_ms, 6),
            "bucket_bounds_ms": list(self.bounds_ms),
            "bucket_counts": list(self.counts),
        }


class ServerMetrics:
    """Counters + histograms behind ``/metrics`` and ``/healthz``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_clock = time.perf_counter()
        self.requests_total: Dict[str, int] = {}
        self.responses_total: Dict[int, int] = {}
        self.errors_total = 0
        self.rejected_total = 0
        self.request_latency = LatencyHistogram()
        self.queue_latency = LatencyHistogram()
        self.fit_latency = LatencyHistogram()
        self.span_latency: Dict[str, LatencyHistogram] = {}

    # -- recording ---------------------------------------------------------

    def record_request(self, route: str) -> None:
        with self._lock:
            self.requests_total[route] = self.requests_total.get(route, 0) + 1

    def record_response(self, status: int, seconds: Optional[float] = None) -> None:
        with self._lock:
            self.responses_total[status] = self.responses_total.get(status, 0) + 1
            if status == 429:
                self.rejected_total += 1
            elif status >= 500:
                self.errors_total += 1
            if seconds is not None:
                self.request_latency.observe(seconds)

    def record_served(self, queue_seconds: float, fit_seconds: float) -> None:
        with self._lock:
            self.queue_latency.observe(queue_seconds)
            self.fit_latency.observe(fit_seconds)

    #: span_latency never grows past this many kinds: the taxonomy is
    #: small and fixed, so hitting the cap means a bug (or a hostile
    #: header) is minting kinds — drop rather than let /metrics balloon.
    MAX_SPAN_KINDS = 64

    def record_span(self, kind: str, seconds: float) -> None:
        """Tracer sink: one duration observation per closed span."""
        with self._lock:
            histogram = self.span_latency.get(kind)
            if histogram is None:
                if len(self.span_latency) >= self.MAX_SPAN_KINDS:
                    return
                histogram = self.span_latency[kind] = LatencyHistogram()
            histogram.observe(seconds)

    # -- rendering ---------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started_clock

    def healthz(
        self, *, queue_depth: int, draining: bool, version: str
    ) -> Dict[str, Any]:
        # pid/version/uptime make fleet replicas distinguishable: a
        # rolling-restart check watches pid change and uptime reset.
        return {
            "status": "draining" if draining else "ok",
            "version": version,
            "pid": os.getpid(),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "queue_depth": queue_depth,
        }

    def render(
        self,
        *,
        queue_depth: int,
        batcher_stats: Dict[str, Any],
        cache_stats: Optional[Dict[str, Any]],
        draining: bool,
        version: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The full ``/metrics`` JSON document."""
        with self._lock:
            requests = dict(self.requests_total)
            responses = {str(k): v for k, v in sorted(self.responses_total.items())}
            payload: Dict[str, Any] = {
                "pid": os.getpid(),
                "version": version,
                "uptime_seconds": round(self.uptime_seconds, 3),
                "draining": draining,
                "queue_depth": queue_depth,
                "requests_total": requests,
                "responses_total": responses,
                "errors_total": self.errors_total,
                "rejected_total": self.rejected_total,
                "latency": {
                    "request": self.request_latency.as_dict(),
                    "queue_wait": self.queue_latency.as_dict(),
                    "batch_fit": self.fit_latency.as_dict(),
                },
                "spans": {
                    kind: histogram.as_dict()
                    for kind, histogram in sorted(self.span_latency.items())
                },
            }
        served = requests.get("POST /cluster", 0)
        uptime = payload["uptime_seconds"]
        payload["requests_per_second"] = round(served / uptime, 3) if uptime > 0 else 0.0
        payload["batching"] = batcher_stats
        payload["cache"] = cache_stats  # None when the default config disables it
        return payload
