"""repro.serve — the async micro-batching clustering service.

The serving layer turns the library's batch machinery into a long-running
network daemon::

    repro serve --port 8752 --max-batch-size 16 --max-wait-ms 10

Independent ``POST /cluster`` requests are coalesced by a size-or-deadline
:class:`MicroBatcher` into :func:`repro.api.cluster_many` calls, so
concurrent identical requests dedupe and cache-hit exactly like offline
batches; fits run on a thread pool off the event loop.  Admission is
bounded (HTTP 429 + ``Retry-After`` once ``--max-queue`` requests wait),
shutdown drains gracefully on SIGTERM, and ``GET /metrics`` /
``GET /healthz`` expose live counters, latency histograms, and the result
cache's hit-rate.  Matrices travel either as JSON or as the raw binary
``application/x-repro-matrix`` frames of :mod:`repro.serve.wire`, which
the server decodes zero-copy into the fingerprint/shared-memory path.

``repro serve --workers N`` (N >= 2) scales the same contract
horizontally: :mod:`repro.serve.fleet` supervises N single-process
replicas on ephemeral ports behind one consistent-hash router, so clients
still see one endpoint with byte-identical responses.

Programmatic use::

    from repro.serve import ClusteringServer, ServeClient

    with ClusteringServer(port=0).start_in_background() as handle:
        with ServeClient(handle.host, handle.port) as client:
            envelope = client.cluster(matrix, config={"num_clusters": 4})
"""

from repro.serve.batcher import (
    BatcherStats,
    MicroBatcher,
    QueueFull,
    ServiceStopping,
)
from repro.serve.client import ServeClient, ServerBusy, ServerError
from repro.serve.fleet import FleetRouter, ReplicaSupervisor, build_fleet
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.server import ClusteringServer, ServerHandle
from repro.serve.wire import WIRE_CONTENT_TYPE, WireFormatError

__all__ = [
    "ClusteringServer",
    "FleetRouter",
    "ReplicaSupervisor",
    "build_fleet",
    "ServerHandle",
    "ServeClient",
    "ServerBusy",
    "ServerError",
    "MicroBatcher",
    "BatcherStats",
    "QueueFull",
    "ServiceStopping",
    "LatencyHistogram",
    "ServerMetrics",
    "WIRE_CONTENT_TYPE",
    "WireFormatError",
]
