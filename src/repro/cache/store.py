"""Content-addressed result cache: in-memory LRU tier + optional disk tier.

:class:`ResultCache` maps the keys produced by
:func:`repro.cache.fingerprint.result_cache_key` to cached values (in
practice :class:`~repro.api.result.ClusterResult` objects, but the store is
value-agnostic).  Lookups go memory first, then disk; disk hits are
promoted into the memory tier.

The disk tier is written for concurrent serving processes:

* entries are written to a temp file in the cache directory and published
  with :func:`os.replace`, so readers never observe a partial entry;
* every entry is a versioned envelope carrying the format version, the
  library version, and its own key — a corrupt file, a foreign pickle, a
  format bump, or a library upgrade all degrade to a *miss* (counted in
  :attr:`CacheStats.disk_errors` / evicted from disk), never an exception.

:func:`get_result_cache` hands out process-wide instances (one shared
in-memory cache, plus one per on-disk directory) so that every estimator
fit and every ``cluster_many`` call in a process shares hits.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.obs.tracer import trace_span

#: Envelope magic + format version; bump the version to invalidate disk entries.
_ENTRY_MAGIC = "repro-result-cache"
ENTRY_FORMAT_VERSION = 1

#: Default capacity of the in-memory LRU tier.
DEFAULT_MAX_ENTRIES = 128


def _library_version() -> str:
    # Imported lazily: repro/__init__ imports the api layer, which may in
    # turn import this module, so a top-level import would be cyclic.
    from repro import __version__

    return __version__


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`.

    ``hits`` counts every successful ``get`` (memory or disk);
    ``disk_hits`` the subset served from disk.  ``disk_errors`` counts
    corrupt, stale, or unreadable disk entries (each also surfaced to the
    caller as a miss).

    Counters are mutated under the owning store's lock, and the store
    shares that lock with its stats object, so the derived readers
    (:meth:`snapshot`, :attr:`hit_rate`, :meth:`as_dict`) see a consistent
    point-in-time view even while serving threads are counting — e.g. a
    ``/metrics`` scrape can never observe ``hits`` from after a lookup
    whose ``misses`` increment it already read.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_errors: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: asdict()/repr/compare skip it, and the
        # owning ResultCache replaces it with the store lock the counter
        # mutations already run under.
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)  # locks do not pickle
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def snapshot(self) -> "CacheStats":
        """A consistent point-in-time copy (one lock acquisition)."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                stores=self.stores,
                evictions=self.evictions,
                disk_hits=self.disk_hits,
                disk_errors=self.disk_errors,
            )

    @property
    def lookups(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        with self._lock:
            hits, lookups = self.hits, self.hits + self.misses
        return hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        snap = self.snapshot()
        payload = asdict(snap)
        payload["hit_rate"] = snap.hits / snap.lookups if snap.lookups else 0.0
        return payload


class ResultCache:
    """LRU cache of clustering results, optionally persisted to a directory.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory tier; the least recently used entry is
        evicted first.  Entries are counted, not sized: a cached
        clustering result retains its ``raw`` pipeline artefacts
        (shortest paths, graph, dendrogram — on the order of the n x n
        input matrix each), so size ``max_entries`` to roughly
        ``budget_bytes / (a few * n^2 * 8)`` for your largest ``n``.  The
        disk tier is not size-bounded and grows by about one input matrix
        per distinct job; point ``cache_dir`` at storage sized for that.
    cache_dir:
        Optional directory for the persistent tier (created on first
        write).  Values stored there must be picklable.

    Thread-safe: the memory tier is guarded by a lock, and disk writes are
    atomic write-then-rename, so concurrent readers/writers (including
    separate processes sharing ``cache_dir``) see either the old or the
    new entry, never a torn one.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        cache_dir: Optional[str] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.cache_dir = os.path.abspath(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # Counter mutations happen under self._lock; sharing it with the
        # stats object makes snapshot()/hit_rate/as_dict consistent for
        # concurrent readers (the serving /metrics path).
        self.stats._lock = self._lock

    # -- lookups -----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value for ``key``, or ``None`` on a miss."""
        with trace_span("cache.get") as probe:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    probe.set_attribute("tier", "memory")
                    return self._entries[key]
            if self.cache_dir is not None:
                value = self._read_disk(key)
                if value is not None:
                    with self._lock:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        self._insert(key, value)
                    probe.set_attribute("tier", "disk")
                    return value
            with self._lock:
                self.stats.misses += 1
            probe.set_attribute("tier", "miss")
            return None

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        """Memory-tier keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    # -- updates -----------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in both tiers."""
        with trace_span("cache.put", disk=self.cache_dir is not None):
            with self._lock:
                self._insert(key, value)
                self.stats.stores += 1
            if self.cache_dir is not None:
                self._write_disk(key, value)

    def _insert(self, key: str, value: Any) -> None:
        """Memory-tier insert + LRU eviction; caller holds the lock."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop the memory tier (disk entries are left in place)."""
        with self._lock:
            self._entries.clear()

    # -- disk tier ---------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _read_disk(self, key: str) -> Optional[Any]:
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated, corrupt, or unreadable entry: a miss, not a crash.
            with self._lock:
                self.stats.disk_errors += 1
            self._discard_disk(path)
            return None
        if (
            not isinstance(envelope, tuple)
            or len(envelope) != 5
            or envelope[0] != _ENTRY_MAGIC
            or envelope[1] != ENTRY_FORMAT_VERSION
            or envelope[2] != _library_version()
            or envelope[3] != key
        ):
            # Stale format/version or a key collision with a foreign file.
            with self._lock:
                self.stats.disk_errors += 1
            self._discard_disk(path)
            return None
        return envelope[4]

    def _write_disk(self, key: str, value: Any) -> None:
        path = self._entry_path(key)
        envelope = (_ENTRY_MAGIC, ENTRY_FORMAT_VERSION, _library_version(), key, value)
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{key}.", suffix=".tmp", dir=self.cache_dir
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            except BaseException:
                self._discard_disk(tmp_path)
                raise
        except Exception:
            # A full/read-only disk degrades persistence, not correctness.
            with self._lock:
                self.stats.disk_errors += 1

    @staticmethod
    def _discard_disk(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Process-wide instances
# ---------------------------------------------------------------------------

_REGISTRY_LOCK = threading.Lock()
_MEMORY_CACHE: Optional[ResultCache] = None
_DISK_CACHES: Dict[str, ResultCache] = {}


def get_result_cache(cache_dir: Optional[str] = None) -> ResultCache:
    """The process-wide cache for ``cache_dir`` (memory-only when ``None``).

    Every caller asking for the same directory (or for no directory) gets
    the same instance, so hits are shared across estimators, batch calls,
    and streaming runs in the process.
    """
    global _MEMORY_CACHE
    with _REGISTRY_LOCK:
        if cache_dir is None:
            if _MEMORY_CACHE is None:
                _MEMORY_CACHE = ResultCache()
            return _MEMORY_CACHE
        resolved = os.path.abspath(cache_dir)
        cache = _DISK_CACHES.get(resolved)
        if cache is None:
            cache = ResultCache(cache_dir=resolved)
            _DISK_CACHES[resolved] = cache
        return cache


def clear_result_caches() -> None:
    """Forget every process-wide cache instance (primarily for tests)."""
    global _MEMORY_CACHE
    with _REGISTRY_LOCK:
        _MEMORY_CACHE = None
        _DISK_CACHES.clear()
