"""Content-addressed caching of clustering results.

Serving traffic is heavily repetitive — the same window re-requested,
overlapping scenario sweeps, identical ticks after a flat market — so the
library caches whole :class:`~repro.api.result.ClusterResult` objects
under a stable fingerprint of *what determines them*: the
computation-relevant fields of the
:class:`~repro.api.config.ClusteringConfig` plus the input matrix's
dtype/shape/bytes (see :mod:`repro.cache.fingerprint`).

Because every kernel/backend combination in this library is byte-identical
by construction, a cache hit is guaranteed to return exactly what a cold
fit would have produced (it returns the stored cold fit, timings and all).

Entry points:

* ``ClusteringConfig(cache=True, cache_dir=...)`` — estimator ``fit`` and
  ``cluster_many`` consult the cache;
* :func:`get_result_cache` — the process-wide cache instances (one
  in-memory LRU, plus one per persistent directory);
* :func:`result_cache_key` / :func:`matrix_fingerprint` — the key
  derivation, also used by the streaming runner to skip ticks whose
  windowed correlation did not change.
"""

from repro.cache.fingerprint import (
    CACHE_KNOB_FIELDS,
    FINGERPRINT_VERSION,
    config_fingerprint,
    matrix_fingerprint,
    result_cache_key,
)
from repro.cache.store import (
    DEFAULT_MAX_ENTRIES,
    ENTRY_FORMAT_VERSION,
    CacheStats,
    ResultCache,
    clear_result_caches,
    get_result_cache,
)

__all__ = [
    "CACHE_KNOB_FIELDS",
    "DEFAULT_MAX_ENTRIES",
    "ENTRY_FORMAT_VERSION",
    "FINGERPRINT_VERSION",
    "CacheStats",
    "ResultCache",
    "clear_result_caches",
    "config_fingerprint",
    "get_result_cache",
    "matrix_fingerprint",
    "result_cache_key",
]
