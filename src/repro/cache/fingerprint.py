"""Stable content fingerprints for the result cache.

A cache key must identify *exactly* the inputs that determine a clustering
result and nothing else.  Two fingerprints are combined:

* :func:`config_fingerprint` hashes the canonical JSON form of
  ``ClusteringConfig.to_dict()`` with the cache knobs themselves
  (:data:`CACHE_KNOB_FIELDS`) removed — whether or where a run is cached
  never changes its output, so ``cache=True`` and ``cache=False`` runs of
  the same configuration share a key;
* :func:`matrix_fingerprint` hashes an array's dtype, shape, and raw bytes,
  so any bit-level change to the data produces a new key while a re-sent
  identical matrix (same window, flat market tick, duplicated scenario)
  maps to the same one.

Keys are hex digests (BLAKE2b), safe to use as file names for the on-disk
tier.  :data:`FINGERPRINT_VERSION` is folded into every key so that a
change to the hashing scheme invalidates old entries instead of silently
colliding with them.

This module deliberately imports nothing from :mod:`repro.api` — configs
are consumed through their ``to_dict()`` method — so the cache layer sits
below the API layer without import cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

import numpy as np

#: Config fields that select caching behaviour rather than the computation;
#: they are excluded from the fingerprint so cached and uncached runs of
#: the same configuration address the same entry.
CACHE_KNOB_FIELDS = ("cache", "cache_dir")

#: The config fields the fingerprint *does* hash — every ClusteringConfig
#: field that is not a cache knob.  :func:`config_fingerprint` derives the
#: set dynamically from ``to_dict()`` (nothing reads this tuple at hash
#: time, so the key derivation is untouched), but the explicit accounting
#: lets the config-fingerprint lint rule fail the build when a new config
#: field is added without deciding whether it belongs in the cache key.
FINGERPRINT_FIELDS = (
    "method",
    "num_clusters",
    "prefix",
    "apsp_method",
    "landmarks",
    "kernel",
    "backend",
    "workers",
    "warm_start",
    "precomputed",
    "linkage",
    "seed",
    "num_restarts",
    "spectral_neighbors",
)

#: Bumped whenever the key derivation changes; folded into every key.
FINGERPRINT_VERSION = 1


def _digest() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=20)


def config_fingerprint(config: Any) -> str:
    """Hex fingerprint of a config's computation-relevant fields.

    ``config`` is anything with a JSON-safe ``to_dict()`` (in practice a
    :class:`~repro.api.config.ClusteringConfig`); a plain dict is accepted
    too.  The cache knobs in :data:`CACHE_KNOB_FIELDS` are dropped before
    hashing.
    """
    payload: Dict[str, Any] = config if isinstance(config, dict) else config.to_dict()
    payload = {k: v for k, v in payload.items() if k not in CACHE_KNOB_FIELDS}
    digest = _digest()
    digest.update(json.dumps(payload, sort_keys=True, default=str).encode("utf-8"))
    return digest.hexdigest()


def matrix_fingerprint(matrix: np.ndarray) -> str:
    """Hex fingerprint of an array's dtype, shape, and bytes.

    C-contiguous arrays (including the read-only ``frombuffer`` views the
    binary serve transport decodes) are hashed straight through the buffer
    protocol with no intermediate copy; non-contiguous arrays hash their
    C-order bytes (``tobytes`` copies), so views and contiguous copies of
    the same data agree.
    """
    array = np.asarray(matrix)
    digest = _digest()
    digest.update(array.dtype.str.encode("ascii"))
    digest.update(repr(array.shape).encode("ascii"))
    if array.flags.c_contiguous:
        digest.update(memoryview(array).cast("B") if array.ndim else memoryview(array))
    else:
        # Non-contiguous fallback: hashing must read C-order bytes, and a
        # strided view has no single buffer to hand the digest.
        digest.update(array.tobytes())  # repro: allow[hot-path-copy]
    return digest.hexdigest()


def result_cache_key(
    config: Any,
    matrix: np.ndarray,
    dissimilarity: Optional[np.ndarray] = None,
) -> str:
    """The content-addressed key of one fit: config x input data.

    ``dissimilarity`` covers the explicit-dissimilarity fit path
    (``fit(X, dissimilarity=...)``); passing one changes the key, omitting
    it matches only fits that also omitted it.
    """
    digest = _digest()
    digest.update(f"repro-result-cache/v{FINGERPRINT_VERSION}".encode("ascii"))
    digest.update(config_fingerprint(config).encode("ascii"))
    digest.update(matrix_fingerprint(matrix).encode("ascii"))
    if dissimilarity is not None:
        digest.update(matrix_fingerprint(dissimilarity).encode("ascii"))
    return digest.hexdigest()
