"""repro — Parallel Filtered Graphs for Hierarchical Clustering.

A from-scratch Python reproduction of "Parallel Filtered Graphs for
Hierarchical Clustering" (Shangdi Yu and Julian Shun, ICDE 2023).  The
library builds Triangulated Maximally Filtered Graphs (TMFG) with the
paper's prefix-batched parallel algorithm, constructs Directed Bubble
Hierarchy Trees (DBHT) optimised for TMFG inputs, and ships the baselines
(PMFG, the original DBHT, complete/average-linkage HAC, k-means, spectral
k-means), synthetic data sets, metrics, and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart (the estimator API)::

    from repro import ClusteringConfig, make_estimator
    from repro.datasets import make_time_series_dataset
    from repro.metrics import adjusted_rand_index

    dataset = make_time_series_dataset(num_objects=200, length=128, num_classes=4, seed=0)
    config = ClusteringConfig(method="tmfg-dbht", prefix=10, num_clusters=4)
    labels = make_estimator(config.method, config).fit_predict(dataset.data)
    print(adjusted_rand_index(dataset.labels, labels))

The functional entry point ``tmfg_dbht(similarity, dissimilarity, ...)``
remains available (and byte-identical); see :mod:`repro.api` for the full
estimator layer, including the batch front door ``cluster_many``.

The top-level re-exports below resolve lazily (PEP 562): importing
:mod:`repro` itself pulls in no numpy/scipy, so the stdlib-only tooling
(``repro lint`` / :mod:`repro.analysis`) runs on a bare interpreter — the
CI lint job installs no numerical dependencies at all.  The first access
to any exported name imports its real module as before.
"""

from importlib import import_module

__version__ = "1.8.0"

#: Exported name -> defining module; resolved on first attribute access.
_EXPORTS = {
    "ClusteringConfig": "repro.api",
    "ClusterResult": "repro.api",
    "TMFGClusterer": "repro.api",
    "available_estimators": "repro.api",
    "make_estimator": "repro.api",
    "cluster_many": "repro.api",
    "ResultCache": "repro.cache",
    "get_result_cache": "repro.cache",
    "clear_result_caches": "repro.cache",
    "DBHTResult": "repro.core.dbht",
    "dbht": "repro.core.dbht",
    "PipelineResult": "repro.core.pipeline",
    "tmfg_dbht": "repro.core.pipeline",
    "TMFGResult": "repro.core.tmfg",
    "construct_tmfg": "repro.core.tmfg",
    "Dendrogram": "repro.dendrogram",
    "cut_height": "repro.dendrogram",
    "cut_k": "repro.dendrogram",
    "adjusted_mutual_information": "repro.metrics",
    "adjusted_rand_index": "repro.metrics",
    "Tracer": "repro.obs",
    "trace_span": "repro.obs",
}

__all__ = [*sorted(_EXPORTS), "__version__"]


def __getattr__(name):
    if name in _EXPORTS:
        value = getattr(import_module(_EXPORTS[name]), name)
        globals()[name] = value  # cache: subsequent access skips this hook
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
