"""repro — Parallel Filtered Graphs for Hierarchical Clustering.

A from-scratch Python reproduction of "Parallel Filtered Graphs for
Hierarchical Clustering" (Shangdi Yu and Julian Shun, ICDE 2023).  The
library builds Triangulated Maximally Filtered Graphs (TMFG) with the
paper's prefix-batched parallel algorithm, constructs Directed Bubble
Hierarchy Trees (DBHT) optimised for TMFG inputs, and ships the baselines
(PMFG, the original DBHT, complete/average-linkage HAC, k-means, spectral
k-means), synthetic data sets, metrics, and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import tmfg_dbht
    from repro.datasets import make_time_series_dataset, similarity_and_dissimilarity
    from repro.metrics import adjusted_rand_index

    dataset = make_time_series_dataset(num_objects=200, length=128, num_classes=4, seed=0)
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
    result = tmfg_dbht(similarity, dissimilarity, prefix=10)
    labels = result.cut(dataset.num_classes)
    print(adjusted_rand_index(dataset.labels, labels))
"""

from repro.core.dbht import DBHTResult, dbht
from repro.core.pipeline import PipelineResult, tmfg_dbht
from repro.core.tmfg import TMFGResult, construct_tmfg
from repro.dendrogram import Dendrogram, cut_height, cut_k
from repro.metrics import adjusted_mutual_information, adjusted_rand_index

__version__ = "1.0.0"

__all__ = [
    "DBHTResult",
    "dbht",
    "PipelineResult",
    "tmfg_dbht",
    "TMFGResult",
    "construct_tmfg",
    "Dendrogram",
    "cut_height",
    "cut_k",
    "adjusted_mutual_information",
    "adjusted_rand_index",
    "__version__",
]
