"""repro — Parallel Filtered Graphs for Hierarchical Clustering.

A from-scratch Python reproduction of "Parallel Filtered Graphs for
Hierarchical Clustering" (Shangdi Yu and Julian Shun, ICDE 2023).  The
library builds Triangulated Maximally Filtered Graphs (TMFG) with the
paper's prefix-batched parallel algorithm, constructs Directed Bubble
Hierarchy Trees (DBHT) optimised for TMFG inputs, and ships the baselines
(PMFG, the original DBHT, complete/average-linkage HAC, k-means, spectral
k-means), synthetic data sets, metrics, and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart (the estimator API)::

    from repro import ClusteringConfig, make_estimator
    from repro.datasets import make_time_series_dataset
    from repro.metrics import adjusted_rand_index

    dataset = make_time_series_dataset(num_objects=200, length=128, num_classes=4, seed=0)
    config = ClusteringConfig(method="tmfg-dbht", prefix=10, num_clusters=4)
    labels = make_estimator(config.method, config).fit_predict(dataset.data)
    print(adjusted_rand_index(dataset.labels, labels))

The functional entry point ``tmfg_dbht(similarity, dissimilarity, ...)``
remains available (and byte-identical); see :mod:`repro.api` for the full
estimator layer, including the batch front door ``cluster_many``.
"""

from repro.api import (
    ClusteringConfig,
    ClusterResult,
    TMFGClusterer,
    available_estimators,
    cluster_many,
    make_estimator,
)
from repro.cache import ResultCache, clear_result_caches, get_result_cache
from repro.core.dbht import DBHTResult, dbht
from repro.core.pipeline import PipelineResult, tmfg_dbht
from repro.core.tmfg import TMFGResult, construct_tmfg
from repro.dendrogram import Dendrogram, cut_height, cut_k
from repro.metrics import adjusted_mutual_information, adjusted_rand_index

__version__ = "1.6.0"

__all__ = [
    "ClusteringConfig",
    "ClusterResult",
    "TMFGClusterer",
    "available_estimators",
    "make_estimator",
    "cluster_many",
    "ResultCache",
    "get_result_cache",
    "clear_result_caches",
    "DBHTResult",
    "dbht",
    "PipelineResult",
    "tmfg_dbht",
    "TMFGResult",
    "construct_tmfg",
    "Dendrogram",
    "cut_height",
    "cut_k",
    "adjusted_mutual_information",
    "adjusted_rand_index",
    "__version__",
]
