"""Plain-text rendering of dendrograms.

`render_tree` draws the merge structure as an indented ASCII tree, which is
enough to eyeball a hierarchy in a terminal or a log file without plotting
dependencies.  Large dendrograms can be truncated to the top levels with
``max_depth``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dendrogram.node import Dendrogram


def render_tree(
    dendrogram: Dendrogram,
    leaf_names: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = None,
    show_heights: bool = True,
) -> str:
    """Render a complete dendrogram as an indented ASCII tree.

    ``max_depth`` limits how many levels below the root are expanded; deeper
    subtrees are summarised as ``[k leaves]``.
    """
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete to render")
    if leaf_names is not None and len(leaf_names) != dendrogram.num_leaves:
        raise ValueError(
            f"expected {dendrogram.num_leaves} leaf names, got {len(leaf_names)}"
        )

    def leaf_label(leaf: int) -> str:
        return str(leaf_names[leaf]) if leaf_names is not None else f"leaf {leaf}"

    lines: List[str] = []

    def render(node_id: int, prefix: str, connector: str, depth: int) -> None:
        node = dendrogram.node(node_id)
        if node.is_leaf:
            lines.append(f"{prefix}{connector}{leaf_label(node.id)}")
            return
        if max_depth is not None and depth >= max_depth:
            lines.append(f"{prefix}{connector}[{node.size} leaves]")
            return
        label = f"height {node.height:.3g}" if show_heights else "*"
        lines.append(f"{prefix}{connector}{label}")
        child_prefix = prefix + ("   " if connector in ("", "`- ") else "|  ")
        render(node.left, child_prefix, "|- ", depth + 1)  # type: ignore[arg-type]
        render(node.right, child_prefix, "`- ", depth + 1)  # type: ignore[arg-type]

    render(dendrogram.root, "", "", 0)
    return "\n".join(lines)


def render_cluster_summary(
    dendrogram: Dendrogram,
    num_clusters: int,
    leaf_names: Optional[Sequence[str]] = None,
    max_members: int = 10,
) -> str:
    """One line per cluster of a k-cut: size and the first few members."""
    from repro.dendrogram.cut import cut_k

    labels = cut_k(dendrogram, num_clusters)
    lines = []
    for cluster in range(int(labels.max()) + 1):
        members = [index for index in range(len(labels)) if labels[index] == cluster]
        shown = members[:max_members]
        names = [
            str(leaf_names[m]) if leaf_names is not None else str(m) for m in shown
        ]
        suffix = ", ..." if len(members) > max_members else ""
        lines.append(
            f"cluster {cluster}: {len(members)} members ({', '.join(names)}{suffix})"
        )
    return "\n".join(lines)
