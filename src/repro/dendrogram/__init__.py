"""Dendrogram data structure and utilities.

The output of every hierarchical method in this repository (DBHT, the HAC
baselines) is a :class:`~repro.dendrogram.node.Dendrogram`: a full binary
merge tree over the input objects where each internal node carries a height.
Cutting the dendrogram (``cut_k`` / ``cut_height``) produces flat clusters,
which is how the paper evaluates quality (the tree is cut so the number of
clusters equals the number of ground-truth classes).
"""

from repro.dendrogram.cut import cut_k, cut_height
from repro.dendrogram.export import (
    cluster_membership_table,
    cophenetic_correlation,
    cophenetic_distances,
    to_newick,
)
from repro.dendrogram.linkage import dendrogram_from_linkage, to_linkage_matrix
from repro.dendrogram.node import Dendrogram, DendrogramNode
from repro.dendrogram.render import render_cluster_summary, render_tree

__all__ = [
    "cut_k",
    "cut_height",
    "cluster_membership_table",
    "cophenetic_correlation",
    "cophenetic_distances",
    "to_newick",
    "dendrogram_from_linkage",
    "to_linkage_matrix",
    "Dendrogram",
    "DendrogramNode",
    "render_cluster_summary",
    "render_tree",
]
