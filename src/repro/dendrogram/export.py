"""Dendrogram export and analysis utilities.

Downstream users of a hierarchical clustering library usually need to hand
the tree to other tools: Newick strings for tree viewers, cophenetic
distances for comparing hierarchies, and flat membership tables.  These are
small, dependency-free helpers on top of :class:`Dendrogram`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dendrogram.node import Dendrogram


def to_newick(
    dendrogram: Dendrogram,
    leaf_names: Optional[Sequence[str]] = None,
    include_heights: bool = True,
) -> str:
    """Serialise a complete dendrogram as a Newick string.

    Branch lengths are the height differences between a node and its parent
    (clipped at zero), which is the conventional mapping from dendrogram
    heights to Newick branch lengths.
    """
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete to export")
    if leaf_names is not None and len(leaf_names) != dendrogram.num_leaves:
        raise ValueError(
            f"expected {dendrogram.num_leaves} leaf names, got {len(leaf_names)}"
        )

    def name(leaf: int) -> str:
        return str(leaf_names[leaf]) if leaf_names is not None else f"L{leaf}"

    def render(node_id: int, parent_height: float) -> str:
        node = dendrogram.node(node_id)
        if node.is_leaf:
            label = name(node.id)
            branch = parent_height - 0.0
        else:
            left = render(node.left, node.height)  # type: ignore[arg-type]
            right = render(node.right, node.height)  # type: ignore[arg-type]
            label = f"({left},{right})"
            branch = parent_height - node.height
        if include_heights:
            return f"{label}:{max(branch, 0.0):.6g}"
        return label

    root = dendrogram.node(dendrogram.root)
    if root.is_leaf:
        return f"{name(root.id)};"
    left = render(root.left, root.height)  # type: ignore[arg-type]
    right = render(root.right, root.height)  # type: ignore[arg-type]
    return f"({left},{right});"


def cophenetic_distances(dendrogram: Dendrogram) -> np.ndarray:
    """Cophenetic distance matrix: the height of the lowest common ancestor.

    ``result[i, j]`` is the height of the first node that joins leaves ``i``
    and ``j``.  Computed bottom-up in O(n^2) total work by merging leaf sets.
    """
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete")
    n = dendrogram.num_leaves
    distances = np.zeros((n, n), dtype=float)
    leaf_sets: Dict[int, List[int]] = {leaf: [leaf] for leaf in range(n)}
    for node in dendrogram.internal_nodes():
        left_leaves = leaf_sets.pop(node.left)  # type: ignore[arg-type]
        right_leaves = leaf_sets.pop(node.right)  # type: ignore[arg-type]
        for i in left_leaves:
            for j in right_leaves:
                distances[i, j] = node.height
                distances[j, i] = node.height
        leaf_sets[node.id] = left_leaves + right_leaves
    return distances


def cophenetic_correlation(
    dendrogram: Dendrogram, original_distances: np.ndarray
) -> float:
    """Pearson correlation between cophenetic and original distances.

    A standard measure of how faithfully a dendrogram represents the
    underlying distance matrix (1 = perfect).
    """
    original_distances = np.asarray(original_distances, dtype=float)
    n = dendrogram.num_leaves
    if original_distances.shape != (n, n):
        raise ValueError(f"distance matrix must be {n} x {n}")
    cophenetic = cophenetic_distances(dendrogram)
    iu = np.triu_indices(n, k=1)
    a = cophenetic[iu]
    b = original_distances[iu]
    if np.std(a) == 0 or np.std(b) == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def cluster_membership_table(
    dendrogram: Dendrogram, cluster_counts: Sequence[int]
) -> np.ndarray:
    """Flat memberships for several cuts at once.

    Returns an array of shape ``(num_leaves, len(cluster_counts))`` whose
    column ``j`` is the labelling produced by cutting into
    ``cluster_counts[j]`` clusters — convenient for exploring a hierarchy at
    several resolutions (the stated use case of dendrograms in the paper).
    """
    from repro.dendrogram.cut import cut_k

    columns = [cut_k(dendrogram, int(k)) for k in cluster_counts]
    return np.stack(columns, axis=1) if columns else np.zeros((dendrogram.num_leaves, 0), dtype=int)
