"""Cutting dendrograms into flat clusterings.

The paper evaluates every hierarchical method by cutting its dendrogram so
that the number of clusters equals the number of ground-truth classes
(Section VII).  ``cut_k`` implements exactly that; ``cut_height`` cuts at a
height threshold.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.dendrogram.node import Dendrogram


def cut_k(dendrogram: Dendrogram, num_clusters: int) -> np.ndarray:
    """Cut the dendrogram into exactly ``num_clusters`` clusters.

    Repeatedly splits the cluster whose root has the greatest height (ties
    broken towards the larger raw merge distance, then towards later-created
    nodes), which for monotone heights is equivalent to a horizontal cut.
    The distance tie-break matters for DBHT dendrograms, whose re-assigned
    heights are integers at the inter-group level: among equally-high nodes
    the least cohesive cluster (largest complete-linkage merge distance) is
    split first.  Returns an array of cluster labels ``0 .. num_clusters-1``
    indexed by leaf id.  If ``num_clusters`` exceeds the number of leaves,
    each leaf becomes its own cluster.
    """
    if num_clusters < 1:
        raise ValueError("num_clusters must be at least 1")
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete before cutting")
    num_clusters = min(num_clusters, dendrogram.num_leaves)

    # Max-heap keyed by (height, merge distance, node id).
    heap: List = []
    root = dendrogram.root

    def push(node_id: int) -> None:
        node = dendrogram.node(node_id)
        if node.is_leaf:
            # Leaves cannot be split; key them below every internal node.
            heapq.heappush(heap, (float("inf"), float("inf"), -node_id, node_id))
        else:
            heapq.heappush(heap, (-node.height, -node.distance, -node_id, node_id))

    push(root)
    clusters = 1
    while clusters < num_clusters:
        key, distance_key, _, node_id = heapq.heappop(heap)
        node = dendrogram.node(node_id)
        if node.is_leaf:
            # Nothing left to split (all remaining entries are leaves).
            heapq.heappush(heap, (key, distance_key, -node_id, node_id))
            break
        push(node.left)  # type: ignore[arg-type]
        push(node.right)  # type: ignore[arg-type]
        clusters += 1

    labels = np.full(dendrogram.num_leaves, -1, dtype=int)
    for label, (_, _, _, node_id) in enumerate(sorted(heap, key=lambda item: item[3])):
        for leaf in dendrogram.leaves_under(node_id):
            labels[leaf] = label
    return labels


def cut_height(dendrogram: Dendrogram, height: float) -> np.ndarray:
    """Cut the dendrogram at a height threshold.

    Two leaves are in the same cluster iff their lowest common ancestor has
    height at most ``height``.  Returns cluster labels indexed by leaf id.
    """
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete before cutting")
    labels = np.full(dendrogram.num_leaves, -1, dtype=int)
    next_label = 0
    # Walk down from the root; a subtree whose root height <= threshold (or a
    # leaf) becomes one cluster.
    stack = [dendrogram.root]
    while stack:
        node_id = stack.pop()
        node = dendrogram.node(node_id)
        if node.is_leaf or node.height <= height:
            for leaf in dendrogram.leaves_under(node_id):
                labels[leaf] = next_label
            next_label += 1
        else:
            stack.append(node.left)  # type: ignore[arg-type]
            stack.append(node.right)  # type: ignore[arg-type]
    return labels
