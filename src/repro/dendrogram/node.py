"""The dendrogram (binary merge tree) data structure.

Leaves are numbered ``0 .. n-1`` and internal nodes ``n .. 2n-2`` in the
order they are created, mirroring the scipy linkage convention.  Each
internal node stores the *height* displayed in the dendrogram and the raw
*merge distance* used when the merge was decided; the DBHT algorithm
re-assigns heights after building the tree (Section V-D), so the two may
differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class DendrogramNode:
    """One node of a dendrogram.

    ``left``/``right`` are ``None`` for leaves.  ``size`` is the number of
    leaves in the subtree.
    """

    id: int
    left: Optional[int] = None
    right: Optional[int] = None
    height: float = 0.0
    distance: float = 0.0
    size: int = 1
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class Dendrogram:
    """A full binary merge tree over ``num_leaves`` objects."""

    def __init__(self, num_leaves: int) -> None:
        if num_leaves < 1:
            raise ValueError("a dendrogram needs at least one leaf")
        self.num_leaves = num_leaves
        self._nodes: List[DendrogramNode] = [
            DendrogramNode(id=i) for i in range(num_leaves)
        ]

    # -- construction ------------------------------------------------------

    def merge(
        self,
        left: int,
        right: int,
        height: float,
        distance: Optional[float] = None,
        **metadata: object,
    ) -> int:
        """Create an internal node joining subtrees ``left`` and ``right``.

        Returns the id of the new node.  ``distance`` defaults to ``height``.
        """
        if left == right:
            raise ValueError("cannot merge a node with itself")
        for node_id in (left, right):
            if not 0 <= node_id < len(self._nodes):
                raise IndexError(f"unknown node id {node_id}")
        new_id = len(self._nodes)
        node = DendrogramNode(
            id=new_id,
            left=left,
            right=right,
            height=float(height),
            distance=float(height if distance is None else distance),
            size=self._nodes[left].size + self._nodes[right].size,
            metadata=dict(metadata),
        )
        self._nodes.append(node)
        return new_id

    # -- queries -----------------------------------------------------------

    def node(self, node_id: int) -> DendrogramNode:
        return self._nodes[node_id]

    @property
    def nodes(self) -> Sequence[DendrogramNode]:
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_internal(self) -> int:
        return len(self._nodes) - self.num_leaves

    @property
    def is_complete(self) -> bool:
        """True if all leaves have been merged into a single tree."""
        return len(self._nodes) == 2 * self.num_leaves - 1

    @property
    def root(self) -> int:
        """Id of the root node (requires a complete dendrogram)."""
        if not self.is_complete:
            raise ValueError("dendrogram is not complete; no unique root")
        return len(self._nodes) - 1

    def leaves_under(self, node_id: int) -> List[int]:
        """All leaf ids in the subtree rooted at ``node_id``."""
        result: List[int] = []
        stack = [node_id]
        while stack:
            current = self._nodes[stack.pop()]
            if current.is_leaf:
                result.append(current.id)
            else:
                stack.append(current.left)  # type: ignore[arg-type]
                stack.append(current.right)  # type: ignore[arg-type]
        return result

    def internal_nodes(self) -> Iterator[DendrogramNode]:
        """Iterate over internal nodes in creation order."""
        for node in self._nodes[self.num_leaves:]:
            yield node

    def parent_map(self) -> Dict[int, int]:
        """Map from node id to parent id (root absent)."""
        parents: Dict[int, int] = {}
        for node in self.internal_nodes():
            parents[node.left] = node.id  # type: ignore[index]
            parents[node.right] = node.id  # type: ignore[index]
        return parents

    def heights_monotone(self, tolerance: float = 1e-9) -> bool:
        """Check that every child's height is at most its parent's height."""
        for node in self.internal_nodes():
            for child_id in (node.left, node.right):
                child = self._nodes[child_id]  # type: ignore[index]
                if not child.is_leaf and child.height > node.height + tolerance:
                    return False
        return True

    def set_height(self, node_id: int, height: float) -> None:
        """Overwrite the displayed height of a node (used by DBHT)."""
        self._nodes[node_id].height = float(height)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Dendrogram(leaves={self.num_leaves}, nodes={len(self._nodes)})"
