"""Conversion between :class:`Dendrogram` and scipy-style linkage matrices.

A linkage matrix has one row per merge: ``[left_id, right_id, height, size]``
with leaf ids ``0..n-1`` and the i-th merge creating node ``n + i``.  The
conversion is useful both for interoperability (plotting with scipy) and for
round-trip testing.
"""

from __future__ import annotations

import numpy as np

from repro.dendrogram.node import Dendrogram


def to_linkage_matrix(dendrogram: Dendrogram) -> np.ndarray:
    """Convert a complete dendrogram to an ``(n-1, 4)`` linkage matrix."""
    if not dendrogram.is_complete:
        raise ValueError("dendrogram must be complete")
    rows = []
    for node in dendrogram.internal_nodes():
        rows.append([float(node.left), float(node.right), float(node.height), float(node.size)])
    if not rows:
        return np.zeros((0, 4))
    return np.asarray(rows, dtype=float)


def dendrogram_from_linkage(linkage: np.ndarray, num_leaves: int = None) -> Dendrogram:
    """Build a :class:`Dendrogram` from an ``(n-1, 4)`` linkage matrix."""
    linkage = np.asarray(linkage, dtype=float)
    if linkage.ndim != 2 or (linkage.size and linkage.shape[1] != 4):
        raise ValueError("linkage matrix must have shape (n-1, 4)")
    if num_leaves is None:
        num_leaves = linkage.shape[0] + 1
    dendrogram = Dendrogram(num_leaves)
    for row in linkage:
        left, right, height, _ = row
        dendrogram.merge(int(left), int(right), float(height))
    return dendrogram
