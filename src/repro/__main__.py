"""Entry point for ``python -m repro``.

The ``lint`` verb is dispatched before :mod:`repro.cli` is imported:
the static-analysis engine is stdlib-only, and routing it early keeps
``python -m repro lint`` runnable on interpreters without numpy/scipy
(the CI lint job installs no numerical dependencies at all).
"""

import sys


def _dispatch(argv):
    if len(argv) > 1 and argv[1] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[2:])
    from repro.cli import main

    return main(argv[1:])


if __name__ == "__main__":
    sys.exit(_dispatch(sys.argv))
