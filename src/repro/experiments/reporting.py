"""Plain-text reporting for the experiment reproductions.

The benchmarks print the same rows/series the paper's tables and figures
report; this module renders them as aligned text tables so the output of
``pytest benchmarks/ --benchmark-only`` doubles as the raw data behind
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def stream_tick_table(ticks: Sequence[object]) -> "tuple[List[str], List[List[object]]]":
    """Headers and rows for a per-tick streaming report.

    ``ticks`` are :class:`repro.streaming.TickResult` objects; the rows
    show each tick's window, cluster count, how much of the TMFG the warm
    start replayed, the per-tick phase decomposition, and the drift
    against the previous tick's clustering.
    """
    headers = [
        "tick",
        "window",
        "clusters",
        "warm",
        "sim(s)",
        "tmfg(s)",
        "apsp(s)",
        "total(s)",
        "drift-ARI",
    ]
    rows: List[List[object]] = []
    for tick in ticks:
        steps = tick.step_seconds
        rows.append(
            [
                tick.tick,
                f"[{tick.start}, {tick.stop})",
                tick.num_clusters,
                f"{tick.warm_rounds}/{tick.rounds}",
                steps.get("similarity", 0.0),
                steps.get("tmfg", 0.0),
                steps.get("apsp", 0.0),
                steps.get("total", 0.0),
                "-" if tick.drift_ari is None else f"{tick.drift_ari:.3f}",
            ]
        )
    return headers, rows


def format_stream_ticks(ticks: Sequence[object], title: Optional[str] = None) -> str:
    """Render a streaming run's ticks as an aligned text table."""
    headers, rows = stream_tick_table(ticks)
    return format_table(headers, rows, title=title, float_format="{:.4f}")


def format_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """Render a flat mapping as ``key: value`` lines under a title."""
    lines = [title]
    for key, value in mapping.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.4f}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
