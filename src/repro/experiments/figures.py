"""Reproduction entry points, one per table / figure of the paper.

Every function takes an :class:`ExperimentConfig` and returns a dictionary
with ``title``, ``headers`` and ``rows`` (plus figure-specific extras) so the
benchmarks can both assert on the shape of the result and print the same
rows the paper reports.  Absolute numbers differ from the paper (pure
Python, synthetic data, single machine); EXPERIMENTS.md records the
qualitative comparison.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.pmfg import construct_pmfg
from repro.baselines.spectral import spectral_embedding
from repro.core.pipeline import tmfg_dbht
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import (
    correlation_matrix,
    correlation_to_dissimilarity,
    detrended_log_returns,
    similarity_and_dissimilarity,
)
from repro.datasets.stocks import (
    ICB_INDUSTRIES,
    cluster_sector_counts,
    generate_stock_market,
    market_cap_by_group,
)
from repro.datasets.synthetic import LabelledDataset
from repro.datasets.ucr_like import UCR_LIKE_SPECS, load_ucr_like
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.harness import run_method, subsample
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.edge_sum import edge_weight_sum_ratio
from repro.parallel.cost_model import WorkSpanTracker, speedup_curve


# ---------------------------------------------------------------------------
# Data-set loading (cached so a figure sweep loads each data set once)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=64)
def _load_dataset_cached(
    dataset_id: int,
    scale: float,
    noise: float,
    seed: int,
    outlier_fraction: float,
    outlier_scale: float,
) -> LabelledDataset:
    return load_ucr_like(
        dataset_id,
        scale=scale,
        noise=noise,
        seed=seed,
        outlier_fraction=outlier_fraction,
        outlier_scale=outlier_scale,
    )


def load_dataset(config: ExperimentConfig, dataset_id: int) -> LabelledDataset:
    """Load (generate) the synthetic stand-in for a Table II data set."""
    return _load_dataset_cached(
        dataset_id,
        config.scale,
        config.noise,
        config.seed,
        config.outlier_fraction,
        config.outlier_scale,
    )


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2_datasets(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Table II: the data-set registry and the generated stand-in sizes."""
    config = config or default_config()
    rows = []
    for dataset_id in config.dataset_ids:
        spec = UCR_LIKE_SPECS[dataset_id]
        dataset = load_dataset(config, dataset_id)
        rows.append(
            (
                spec.dataset_id,
                spec.name,
                spec.num_objects,
                spec.length,
                spec.num_classes,
                dataset.num_objects,
                dataset.data.shape[1],
            )
        )
    return {
        "title": "Table II: UCR data sets (paper sizes and generated stand-in sizes)",
        "headers": ["id", "name", "n (paper)", "L (paper)", "classes", "n (repro)", "L (repro)"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 1: sequential runtime vs clustering quality
# ---------------------------------------------------------------------------


def figure1_quality_vs_time(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 1: runtime vs. ARI for PMFG+DBHT, TMFG+DBHT, average and complete linkage."""
    config = config or default_config()
    methods = ["PMFG-DBHT", "PAR-TDBHT-1", "AVG", "COMP"]
    rows = []
    for dataset_id in config.slow_dataset_ids:
        dataset = subsample(
            load_dataset(config, dataset_id), config.max_slow_objects, seed=config.seed
        )
        for method in methods:
            run = run_method(method, dataset, seed=config.seed)
            rows.append((dataset_id, dataset.name, method, run.seconds, run.ari))
    return {
        "title": "Figure 1: sequential runtime (s) vs clustering quality (ARI)",
        "headers": ["dataset id", "dataset", "method", "seconds", "ARI"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 3: runtime of all methods on all data sets
# ---------------------------------------------------------------------------


def figure3_runtime(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 3: measured runtime per method and data set, plus the cost-model
    prediction for a 48-core machine for the PAR-TDBHT variants."""
    config = config or default_config()
    fast_methods = ["COMP", "AVG", "PAR-TDBHT-1", f"PAR-TDBHT-{config.default_prefix}"]
    rows = []
    for dataset_id in config.dataset_ids:
        dataset = load_dataset(config, dataset_id)
        for method in fast_methods:
            run = run_method(method, dataset, seed=config.seed)
            predicted = None
            tracker = run.extras.get("tracker")
            if isinstance(tracker, WorkSpanTracker) and tracker.total_work > 0:
                ratio = tracker.predicted_time(
                    1, config.span_overhead
                ) / tracker.predicted_time(48, config.span_overhead)
                predicted = run.seconds / max(ratio, 1.0)
            rows.append((dataset_id, method, run.seconds, predicted, run.ari))
        if dataset_id in config.slow_dataset_ids:
            slow_dataset = subsample(dataset, config.max_slow_objects, seed=config.seed)
            for method in ("SEQ-TDBHT", "PMFG-DBHT"):
                run = run_method(method, slow_dataset, seed=config.seed)
                rows.append((dataset_id, method + " (subsampled)", run.seconds, None, run.ari))
    return {
        "title": "Figure 3: runtime per method (seconds; predicted 48-core time for PAR-TDBHT)",
        "headers": ["dataset id", "method", "seconds", "predicted 48-core s", "ARI"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 4: self-relative speedup vs thread count
# ---------------------------------------------------------------------------


def figure4_speedup(
    config: Optional[ExperimentConfig] = None, dataset_id: int = 17
) -> Dict[str, object]:
    """Fig. 4: predicted self-relative speedup vs. thread count per prefix size.

    The paper measures real 48-core speedups on the Crop data set; the
    reproduction predicts them from the measured work/span of each phase
    (see DESIGN.md for the substitution rationale).  The qualitative shape —
    larger prefixes scale better because TMFG construction has fewer
    sequential rounds — is what is being reproduced.
    """
    config = config or default_config()
    dataset = load_dataset(config, dataset_id)
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
    rows = []
    curves: Dict[int, List[float]] = {}
    for prefix in config.prefix_sizes:
        tracker = WorkSpanTracker()
        tmfg_dbht(similarity, dissimilarity, prefix=prefix, tracker=tracker)
        curve = speedup_curve(
            tracker,
            config.thread_counts,
            span_overhead=config.span_overhead,
            hyperthreaded_last=True,
        )
        curves[prefix] = curve
        for threads, speedup in zip(config.thread_counts, curve):
            rows.append((prefix, threads, speedup))
    return {
        "title": "Figure 4: predicted self-relative speedup vs thread count (Crop stand-in)",
        "headers": ["prefix", "threads", "speedup"],
        "rows": rows,
        "curves": curves,
    }


# ---------------------------------------------------------------------------
# Figure 5: runtime breakdown per step
# ---------------------------------------------------------------------------


def figure5_breakdown(
    config: Optional[ExperimentConfig] = None, dataset_id: int = 6
) -> Dict[str, object]:
    """Fig. 5: runtime decomposition (tmfg / apsp / bubble-tree / hierarchy)."""
    config = config or default_config()
    dataset = load_dataset(config, dataset_id)
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
    rows = []
    for prefix in config.prefix_sizes:
        result = tmfg_dbht(similarity, dissimilarity, prefix=prefix)
        total = sum(result.step_seconds.values())
        for step in ("tmfg", "apsp", "bubble-tree", "hierarchy"):
            seconds = result.step_seconds.get(step, 0.0)
            share = seconds / total if total > 0 else 0.0
            rows.append((prefix, step, seconds, share))
    return {
        "title": f"Figure 5: runtime breakdown per step ({UCR_LIKE_SPECS[dataset_id].name} stand-in)",
        "headers": ["prefix", "step", "seconds", "fraction"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 6: clustering quality vs prefix size
# ---------------------------------------------------------------------------


def figure6_prefix_quality(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 6: ARI of PAR-TDBHT for every prefix size and data set."""
    config = config or default_config()
    rows = []
    for dataset_id in config.dataset_ids:
        dataset = load_dataset(config, dataset_id)
        for prefix in config.prefix_sizes:
            run = run_method(f"PAR-TDBHT-{prefix}", dataset, seed=config.seed)
            rows.append((dataset_id, prefix, run.ari))
    return {
        "title": "Figure 6: ARI of PAR-TDBHT vs prefix size",
        "headers": ["dataset id", "prefix", "ARI"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 7: edge-weight-sum ratio vs the sequential TMFG
# ---------------------------------------------------------------------------


def figure7_edge_sum(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 7: total kept edge weight relative to the sequential TMFG.

    The PMFG ratio is computed on the smaller slow-baseline data sets only
    (the PMFG is the expensive reference, exactly as in the paper where it
    timed out on the largest data sets).
    """
    config = config or default_config()
    rows = []
    for dataset_id in config.dataset_ids:
        dataset = load_dataset(config, dataset_id)
        similarity, _ = similarity_and_dissimilarity(dataset.data)
        reference = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        for prefix in config.prefix_sizes:
            if prefix == 1:
                rows.append((dataset_id, f"prefix {prefix}", 1.0))
                continue
            candidate = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=False)
            ratio = edge_weight_sum_ratio(candidate.graph, reference.graph)
            rows.append((dataset_id, f"prefix {prefix}", ratio))
        if dataset_id in config.slow_dataset_ids:
            small = subsample(dataset, config.max_slow_objects, seed=config.seed)
            small_similarity, _ = similarity_and_dissimilarity(small.data)
            small_reference = construct_tmfg(small_similarity, prefix=1, build_bubble_tree=False)
            pmfg = construct_pmfg(small_similarity)
            ratio = edge_weight_sum_ratio(pmfg.graph, small_reference.graph)
            rows.append((dataset_id, "PMFG (subsampled)", ratio))
    return {
        "title": "Figure 7: edge-weight-sum ratio relative to the sequential TMFG",
        "headers": ["dataset id", "variant", "edge-sum ratio"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 8: clustering quality of all methods
# ---------------------------------------------------------------------------


def figure8_quality(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 8: ARI of every method on every data set."""
    config = config or default_config()
    methods = [
        "PAR-TDBHT-1",
        f"PAR-TDBHT-{config.default_prefix}",
        "COMP",
        "AVG",
        "K-MEANS",
        "K-MEANS-S",
    ]
    rows = []
    for dataset_id in config.dataset_ids:
        dataset = load_dataset(config, dataset_id)
        for method in methods:
            run = run_method(method, dataset, seed=config.seed)
            rows.append((dataset_id, method, run.ari))
        if dataset_id in config.slow_dataset_ids:
            small = subsample(dataset, config.max_slow_objects, seed=config.seed)
            run = run_method("PMFG-DBHT", small, seed=config.seed)
            rows.append((dataset_id, "PMFG-DBHT (subsampled)", run.ari))
    return {
        "title": "Figure 8: clustering quality (ARI) of all methods",
        "headers": ["dataset id", "method", "ARI"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figure 9: K-MEANS-S sensitivity to the number of neighbours
# ---------------------------------------------------------------------------


def figure9_spectral_sensitivity(
    config: Optional[ExperimentConfig] = None,
    dataset_ids: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Fig. 9: ARI of K-MEANS-S as a function of the number of neighbours beta."""
    config = config or default_config()
    dataset_ids = tuple(dataset_ids) if dataset_ids is not None else config.dataset_ids
    rows = []
    for dataset_id in dataset_ids:
        dataset = load_dataset(config, dataset_id)
        for beta in config.spectral_neighbor_counts:
            if beta >= dataset.num_objects:
                continue
            run = run_method(
                "K-MEANS-S", dataset, seed=config.seed, spectral_neighbors=beta
            )
            rows.append((dataset_id, beta, run.ari))
    return {
        "title": "Figure 9: K-MEANS-S ARI vs number of nearest neighbours (beta)",
        "headers": ["dataset id", "beta", "ARI"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Figures 10 and 11: stock clustering
# ---------------------------------------------------------------------------


def _stock_pipeline(config: ExperimentConfig):
    market = generate_stock_market(
        num_stocks=config.stock_count, num_days=config.stock_days, seed=config.seed
    )
    returns = detrended_log_returns(market.prices)
    num_sectors = len(ICB_INDUSTRIES)
    # Follow the paper's preprocessing: spectral embedding of the detrended
    # log-returns, then Pearson correlation of the embedded data.
    embedding = spectral_embedding(
        returns, num_components=num_sectors, num_neighbors=min(20, market.num_stocks - 1)
    )
    similarity = correlation_matrix(embedding)
    dissimilarity = correlation_to_dissimilarity(similarity)
    return market, similarity, dissimilarity


def figure10_stock_clusters(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 10: cluster-vs-industry composition on the synthetic stock market."""
    config = config or default_config()
    market, similarity, dissimilarity = _stock_pipeline(config)
    num_sectors = len(ICB_INDUSTRIES)
    result = tmfg_dbht(similarity, dissimilarity, prefix=config.stock_prefix)
    labels = result.cut(num_sectors)
    exact = tmfg_dbht(similarity, dissimilarity, prefix=1)
    exact_labels = exact.cut(num_sectors)
    counts = cluster_sector_counts(labels, market.sectors, num_sectors=num_sectors)
    rows = []
    for cluster in range(counts.shape[0]):
        for sector in range(counts.shape[1]):
            if counts[cluster, sector] > 0:
                rows.append(
                    (cluster + 1, ICB_INDUSTRIES[sector][1], int(counts[cluster, sector]))
                )
    ari_prefix = adjusted_rand_index(market.sectors, labels)
    ari_exact = adjusted_rand_index(market.sectors, exact_labels)
    return {
        "title": (
            f"Figure 10: stock clusters vs ICB industries "
            f"(prefix {config.stock_prefix}: ARI {ari_prefix:.3f}; exact TMFG: ARI {ari_exact:.3f})"
        ),
        "headers": ["cluster", "industry", "count"],
        "rows": rows,
        "ari_prefix": ari_prefix,
        "ari_exact": ari_exact,
        "counts": counts,
        "labels": labels,
        "market": market,
    }


def figure11_market_cap(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 11: market-cap distribution per ICB sector and per DBHT cluster."""
    config = config or default_config()
    stock_result = figure10_stock_clusters(config)
    market = stock_result["market"]
    labels = stock_result["labels"]
    rows = []
    by_sector = market_cap_by_group(market.market_caps, market.sectors)
    for sector, caps in sorted(by_sector.items()):
        rows.append(
            (
                "sector",
                ICB_INDUSTRIES[sector][0],
                len(caps),
                float(np.median(caps)),
                float(np.percentile(caps, 25)),
                float(np.percentile(caps, 75)),
            )
        )
    by_cluster = market_cap_by_group(market.market_caps, labels)
    for cluster, caps in sorted(by_cluster.items()):
        rows.append(
            (
                "cluster",
                str(cluster + 1),
                len(caps),
                float(np.median(caps)),
                float(np.percentile(caps, 25)),
                float(np.percentile(caps, 75)),
            )
        )
    return {
        "title": "Figure 11: market capitalisation by sector and by PAR-TDBHT cluster",
        "headers": ["grouping", "group", "count", "median cap", "q25", "q75"],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Appendix example (Figs. 12 and 13)
# ---------------------------------------------------------------------------


APPENDIX_CORRELATION = np.array(
    [
        [1.00, 0.80, 0.40, 0.80, 0.80, 0.40],
        [0.80, 1.00, 0.41, 0.90, 0.40, 0.00],
        [0.40, 0.41, 1.00, 0.00, 0.40, 0.42],
        [0.80, 0.90, 0.00, 1.00, 0.80, 0.80],
        [0.80, 0.40, 0.40, 0.80, 1.00, 0.80],
        [0.40, 0.00, 0.42, 0.80, 0.80, 1.00],
    ]
)

APPENDIX_GROUND_TRUTH = np.array([0, 0, 0, 1, 1, 1])


def appendix_prefix_example() -> Dict[str, object]:
    """Appendix (Figs. 12–13): prefix=3 recovers the ground truth, prefix=1 does not."""
    rows = []
    results = {}
    for prefix in (1, 3):
        result = tmfg_dbht(APPENDIX_CORRELATION, prefix=prefix)
        labels = result.cut(2)
        ari = adjusted_rand_index(APPENDIX_GROUND_TRUTH, labels)
        rows.append((prefix, list(labels), ari))
        results[prefix] = ari
    return {
        "title": "Appendix example: clustering the 6-point correlation matrix of Fig. 12",
        "headers": ["prefix", "labels", "ARI"],
        "rows": rows,
        "ari_by_prefix": results,
    }


# ---------------------------------------------------------------------------
# Section VII-A: speedup factors and scaling with data size
# ---------------------------------------------------------------------------


def speedup_factors(config: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Speedup of PAR-TDBHT over the sequential baselines (Section VII-A text)."""
    config = config or default_config()
    rows = []
    for dataset_id in config.slow_dataset_ids:
        dataset = subsample(
            load_dataset(config, dataset_id), config.max_slow_objects, seed=config.seed
        )
        par1 = run_method("PAR-TDBHT-1", dataset, seed=config.seed)
        par10 = run_method(f"PAR-TDBHT-{config.default_prefix}", dataset, seed=config.seed)
        seq = run_method("SEQ-TDBHT", dataset, seed=config.seed)
        pmfg = run_method("PMFG-DBHT", dataset, seed=config.seed)
        rows.append(
            (
                dataset_id,
                seq.seconds / max(par1.seconds, 1e-9),
                seq.seconds / max(par10.seconds, 1e-9),
                pmfg.seconds / max(par1.seconds, 1e-9),
                pmfg.seconds / max(par10.seconds, 1e-9),
            )
        )
    return {
        "title": "Speedup of PAR-TDBHT over SEQ-TDBHT and PMFG-DBHT (measured, single thread)",
        "headers": [
            "dataset id",
            "SEQ/PAR-1",
            "SEQ/PAR-10",
            "PMFG/PAR-1",
            "PMFG/PAR-10",
        ],
        "rows": rows,
    }


def scaling_with_data_size(
    config: Optional[ExperimentConfig] = None,
    sizes: Sequence[int] = (80, 120, 180, 260, 360),
    prefix: int = 10,
) -> Dict[str, object]:
    """Runtime scaling exponent of PAR-TDBHT with the number of objects n."""
    config = config or default_config()
    rows = []
    times = []
    for size in sizes:
        dataset = load_ucr_like(6, scale=size / UCR_LIKE_SPECS[6].num_objects, noise=config.noise, seed=config.seed)
        similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
        start = time.perf_counter()
        tmfg_dbht(similarity, dissimilarity, prefix=prefix)
        elapsed = time.perf_counter() - start
        rows.append((dataset.num_objects, elapsed))
        times.append((dataset.num_objects, elapsed))
    log_n = np.log([n for n, _ in times])
    log_t = np.log([t for _, t in times])
    exponent = float(np.polyfit(log_n, log_t, 1)[0])
    return {
        "title": f"Runtime scaling with data size (fitted exponent {exponent:.2f})",
        "headers": ["n", "seconds"],
        "rows": rows,
        "exponent": exponent,
    }
