"""Running the paper's methods on labelled data sets.

``run_method`` is the single entry point the figure reproductions use: give
it a method name (the same names the paper uses: ``PAR-TDBHT-10``, ``COMP``,
``AVG``, ``K-MEANS``, ...), a labelled data set, and it returns the flat
clustering, its quality, the wall-clock time, and — for the TMFG+DBHT
pipeline — the per-step timing decomposition used by Fig. 5.

Each paper name is translated into a :class:`~repro.api.ClusteringConfig`
plus a registry id and executed through
:func:`~repro.api.estimators.make_estimator`, so the harness runs the same
estimator layer as the CLI and the batch front door.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api.config import ClusteringConfig
from repro.api.estimators import make_estimator
from repro.baselines.pmfg import construct_pmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import LabelledDataset
from repro.metrics.ami import adjusted_mutual_information
from repro.metrics.ari import adjusted_rand_index
from repro.parallel.scheduler import ParallelBackend
from repro.streaming.runner import StreamingPipeline


@dataclass
class MethodRun:
    """Result of running one clustering method on one data set."""

    method: str
    dataset: str
    labels: np.ndarray
    seconds: float
    ari: float
    ami: Optional[float] = None
    step_seconds: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, object] = field(default_factory=dict)


_PAR_TDBHT_PATTERN = re.compile(r"^PAR-TDBHT-(\d+)$", re.IGNORECASE)
_STREAM_TDBHT_PATTERN = re.compile(r"^STREAM-TDBHT-(\d+)(-COLD)?$", re.IGNORECASE)

# Paper name -> estimator-registry id for the fixed (non-parameterised) names.
_METHOD_IDS = {
    "SEQ-TDBHT": "classic-dbht",
    "PMFG-DBHT": "pmfg-dbht",
    "COMP": "hac-complete",
    "AVG": "hac-average",
    "K-MEANS": "kmeans",
    "K-MEANS-S": "spectral",
}


def available_methods() -> List[str]:
    """Names accepted by :func:`run_method` (prefix sizes are free-form)."""
    return [
        "PAR-TDBHT-1",
        "PAR-TDBHT-10",
        "PAR-TDBHT-<prefix>",
        "SEQ-TDBHT",
        "STREAM-TDBHT-<prefix>",
        "STREAM-TDBHT-<prefix>-COLD",
        "PMFG-DBHT",
        "COMP",
        "AVG",
        "K-MEANS",
        "K-MEANS-S",
    ]


def _split_backend(
    backend: Optional[Union[ParallelBackend, str]]
) -> tuple:
    """Split a backend given as instance-or-name into (name, instance)."""
    if isinstance(backend, str):
        return backend, None
    return None, backend


def run_method(
    method: str,
    dataset: LabelledDataset,
    num_clusters: Optional[int] = None,
    seed: int = 0,
    compute_ami: bool = False,
    spectral_neighbors: int = 10,
    kernel: Optional[str] = None,
    backend: Optional[object] = None,
    stream_window: Optional[int] = None,
    stream_hop: Optional[int] = None,
) -> MethodRun:
    """Run ``method`` on ``dataset`` and evaluate against its labels.

    ``num_clusters`` defaults to the number of ground-truth classes, which
    is how the paper cuts every dendrogram.  ``kernel`` is the single switch
    between the ``"python"`` and ``"numpy"`` hot-loop kernels of the
    TMFG/DBHT pipelines (identical results; see
    :mod:`repro.parallel.kernels`); ``backend`` is a
    :class:`~repro.parallel.scheduler.ParallelBackend` instance or name
    (``"serial"``/``"thread"``/``"process"``) used for the parallelisable
    phases.

    The ``STREAM-TDBHT-<prefix>`` family treats the data set as a return
    stream (one series per object), slides a ``stream_window``-wide
    correlation window in steps of ``stream_hop`` through
    :class:`~repro.streaming.StreamingPipeline` (TMFG warm starts on;
    append ``-COLD`` for the cold rebuild path — identical labels, only
    timing differs), scores the final tick's cut against the ground truth,
    and reports the mean per-tick timing decomposition in
    ``step_seconds`` (keys ``"similarity"``, ``"tmfg"``, ``"apsp"``,
    ``"bubble-tree"``, ``"hierarchy"``, ``"total"``).  The window defaults
    to half the series length and the hop to an eighth of the remainder.
    """
    num_clusters = dataset.num_classes if num_clusters is None else num_clusters
    name = method.upper()
    start = time.perf_counter()
    step_seconds: Dict[str, float] = {}
    extras: Dict[str, object] = {}

    stream_match = _STREAM_TDBHT_PATTERN.match(name)
    if stream_match:
        prefix = int(stream_match.group(1))
        warm = stream_match.group(2) is None
        length = dataset.data.shape[1]
        window = (
            stream_window
            if stream_window is not None
            else min(length, max(8, length // 2))
        )
        hop = stream_hop if stream_hop is not None else max(1, (length - window) // 8)
        backend_name, backend_instance = _split_backend(backend)
        stream_config = ClusteringConfig(
            method="tmfg-dbht",
            num_clusters=num_clusters,
            prefix=prefix,
            warm_start=warm,
            kernel=kernel,
            backend=backend_name,
        )
        pipeline = StreamingPipeline(
            dataset.data,
            window=window,
            hop=hop,
            backend=backend_instance,
            config=stream_config,
        )
        stream_result = pipeline.run()
        labels = stream_result.labels
        step_seconds = stream_result.mean_step_seconds()
        extras["stream"] = stream_result
        extras["ticks"] = stream_result.num_ticks
        extras["window"] = window
        extras["hop"] = hop
        extras["warm_full_replay_rate"] = stream_result.warm_stats.full_replay_rate
        extras["warm_round_replay_rate"] = stream_result.warm_stats.round_replay_rate
        extras["mean_drift_ari"] = stream_result.mean_drift_ari()
        extras["mean_drift_ami"] = stream_result.mean_drift_ami()
        seconds = time.perf_counter() - start
        ari = adjusted_rand_index(dataset.labels, labels)
        ami = adjusted_mutual_information(dataset.labels, labels) if compute_ami else None
        return MethodRun(
            method=name,
            dataset=dataset.name,
            labels=np.asarray(labels),
            seconds=seconds,
            ari=ari,
            ami=ami,
            step_seconds=step_seconds,
            extras=extras,
        )

    backend_name, backend_instance = _split_backend(backend)
    par_match = _PAR_TDBHT_PATTERN.match(name)
    method_id: Optional[str] = None
    prefix = 1
    if par_match:
        method_id = "tmfg-dbht"
        prefix = int(par_match.group(1))
    elif name == "PMFG":
        # Graph-quality reference only (Fig. 7); no estimator, no clustering.
        similarity, _ = similarity_and_dissimilarity(dataset.data)
        pmfg = construct_pmfg(similarity)
        extras["edge_weight_sum"] = pmfg.edge_weight_sum()
        labels = np.zeros(dataset.num_objects, dtype=int)
    elif name in _METHOD_IDS:
        method_id = _METHOD_IDS[name]
    else:
        raise ValueError(
            f"unknown method {method!r}; available methods: {available_methods()}"
        )

    if method_id is not None:
        config = ClusteringConfig(
            method=method_id,
            num_clusters=num_clusters,
            prefix=prefix,
            kernel=kernel,
            backend=backend_name,
            seed=seed,
            spectral_neighbors=spectral_neighbors,
        )
        estimator = make_estimator(method_id, config, backend=backend_instance)
        result = estimator.fit(dataset.data).result_
        labels = result.labels
        step_seconds = {k: v for k, v in result.step_seconds.items() if k != "total"}
        extras.update(result.extras)

    seconds = time.perf_counter() - start
    ari = adjusted_rand_index(dataset.labels, labels)
    ami = adjusted_mutual_information(dataset.labels, labels) if compute_ami else None
    return MethodRun(
        method=name,
        dataset=dataset.name,
        labels=np.asarray(labels),
        seconds=seconds,
        ari=ari,
        ami=ami,
        step_seconds=step_seconds,
        extras=extras,
    )


def subsample(dataset: LabelledDataset, max_objects: int, seed: int = 0) -> LabelledDataset:
    """Random subsample of a data set (used for the slow baselines)."""
    if dataset.num_objects <= max_objects:
        return dataset
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(dataset.num_objects, size=max_objects, replace=False))
    return LabelledDataset(
        data=dataset.data[indices],
        labels=dataset.labels[indices],
        name=f"{dataset.name}[{max_objects}]",
    )
