"""Experiment harness reproducing the paper's evaluation.

* :mod:`repro.experiments.config` — experiment-wide configuration (data-set
  scale, method lists, prefix sweeps, random seeds).
* :mod:`repro.experiments.harness` — run a named method on a data set and
  collect labels, timings, and quality scores.
* :mod:`repro.experiments.figures` — one entry point per table / figure of
  the paper; each returns plain data structures that the benchmarks print.
* :mod:`repro.experiments.reporting` — text-table rendering of those
  results, written to stdout and to EXPERIMENTS-friendly strings.
"""

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.harness import MethodRun, available_methods, run_method
from repro.experiments.reporting import format_table

__all__ = [
    "ExperimentConfig",
    "default_config",
    "MethodRun",
    "available_methods",
    "run_method",
    "format_table",
]
