"""Configuration shared by the experiment reproductions.

The paper's experiments run on data sets with thousands of objects on a
48-core machine; the reproduction runs on synthetic stand-ins scaled down so
the whole figure sweep finishes in minutes in pure Python.  All scaling
knobs live here so a user with more time can turn them up
(``ExperimentConfig(scale=0.2, ...)``) without touching the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass
class ExperimentConfig:
    """Knobs controlling the size and scope of the experiment sweeps."""

    # Fraction of each Table II data set's size to generate (objects and length).
    scale: float = 0.035
    # Noise level of the synthetic time-series generator; higher is harder.
    noise: float = 1.4
    # Fraction of objects with extra (outlier) noise, and its scale.
    outlier_fraction: float = 0.06
    outlier_scale: float = 4.0
    # Data sets (Table II ids) used by the per-data-set figures.
    dataset_ids: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
    # Smaller subset for the slow baselines (PMFG and the sequential TMFG+DBHT).
    slow_dataset_ids: Tuple[int, ...] = (6, 11, 12, 15, 16)
    # Cap on the number of objects fed to the slow baselines.
    max_slow_objects: int = 120
    # Prefix sizes swept by the prefix-related figures (as in the paper).
    prefix_sizes: Tuple[int, ...] = (1, 2, 5, 10, 30, 50, 200)
    # Thread counts of the scalability figure (48h = 48 cores hyper-threaded).
    thread_counts: Tuple[int, ...] = (1, 4, 12, 24, 36, 48, 96)
    # Scheduling-overhead constant c of the work-span prediction T_P = W/P + c*S.
    # Calibrated so the predicted speedup range matches the paper's 48-core
    # measurements (prefix 200 on Crop ~ 37-42x, prefix 1 much lower).
    span_overhead: float = 100.0
    # Default prefix used where the paper uses PAR-TDBHT-10.
    default_prefix: int = 10
    # Numbers of nearest neighbours swept for K-MEANS-S (Fig. 9).
    spectral_neighbor_counts: Tuple[int, ...] = (5, 10, 20, 40, 80, 160)
    # Stock-market experiment size.
    stock_count: int = 200
    stock_days: int = 250
    stock_prefix: int = 30
    # Random seed for everything.
    seed: int = 1

    def dataset_kwargs(self) -> Dict[str, float]:
        return {
            "scale": self.scale,
            "noise": self.noise,
            "outlier_fraction": self.outlier_fraction,
            "outlier_scale": self.outlier_scale,
        }


def default_config() -> ExperimentConfig:
    """The configuration used by the benchmark suite."""
    return ExperimentConfig()


def quick_config() -> ExperimentConfig:
    """A minimal configuration used by the integration tests."""
    return ExperimentConfig(
        scale=0.02,
        dataset_ids=(6, 11, 15),
        slow_dataset_ids=(11,),
        max_slow_objects=60,
        prefix_sizes=(1, 5, 20),
        spectral_neighbor_counts=(5, 15),
        stock_count=60,
        stock_days=120,
    )
