"""Priority concurrent write cells (Table I of the paper).

``WRITE_MIN``, ``WRITE_MAX``, and ``WRITE_ADD`` are concurrent-write
primitives: many workers may write to the same cell and the cell keeps,
respectively, the smallest value, the largest value, or the running sum.
The paper assumes each takes constant work and span.

The cells here are thread-safe (a per-cell lock) so they behave correctly
when used from the thread-pool backend, and they are trivially correct when
used sequentially.  Values may be any totally-ordered objects; the DBHT code
uses tuples such as ``(score, bubble_id)`` so that ties are broken
deterministically by the second component.
"""

from __future__ import annotations

import threading
from typing import Any, Generic, TypeVar

T = TypeVar("T")


class _Cell(Generic[T]):
    """Base class holding a value and a lock."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: T) -> None:
        self._value = initial
        self._lock = threading.Lock()

    @property
    def value(self) -> T:
        """Current value stored in the cell."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self._value!r})"


class WriteMin(_Cell[T]):
    """Cell keeping the smallest value written to it."""

    def write(self, value: T) -> bool:
        """Write ``value``; keep it only if it is smaller than the current value.

        Returns ``True`` if the write took effect.
        """
        with self._lock:
            if value < self._value:
                self._value = value
                return True
            return False


class WriteMax(_Cell[T]):
    """Cell keeping the largest value written to it."""

    def write(self, value: T) -> bool:
        """Write ``value``; keep it only if it is larger than the current value.

        Returns ``True`` if the write took effect.
        """
        with self._lock:
            if value > self._value:
                self._value = value
                return True
            return False


class WriteAdd(_Cell[float]):
    """Cell accumulating the sum of all values written to it."""

    def __init__(self, initial: float = 0.0) -> None:
        super().__init__(initial)

    def write(self, value: float) -> float:
        """Atomically add ``value`` and return the new total."""
        with self._lock:
            self._value += value
            return self._value


def write_min_array(cells: list, index: int, value: Any) -> bool:
    """Convenience helper mirroring ``WRITE_MIN(location, value)`` on an array of cells."""
    cell: WriteMin = cells[index]
    return cell.write(value)


def write_max_array(cells: list, index: int, value: Any) -> bool:
    """Convenience helper mirroring ``WRITE_MAX(location, value)`` on an array of cells."""
    cell: WriteMax = cells[index]
    return cell.write(value)


def write_add_array(cells: list, index: int, value: float) -> float:
    """Convenience helper mirroring ``WRITE_ADD(location, value)`` on an array of cells."""
    cell: WriteAdd = cells[index]
    return cell.write(value)
