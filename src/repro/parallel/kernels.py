"""Kernel registry: one switch between ``python`` and ``numpy`` hot loops.

Several hot paths of the pipeline have two interchangeable implementations
with identical results:

* ``"apsp"`` — per-source array-heap Dijkstra (``python``) vs the batched
  Bellman-Ford relaxation kernel (``numpy``) in
  :mod:`repro.graph.shortest_paths`;
* ``"gain_update"`` — per-face gain recomputation (``python``) vs one bulk
  masked argmax over the gain matrix (``numpy``) in
  :mod:`repro.core.gains`.

Rather than threading booleans through every layer, implementations register
themselves here under ``(operation, kernel name)`` and consumers resolve
them by name; :func:`set_default_kernel` flips every consumer at once, which
is how the experiment harness, the CLI (``--kernel``), and the benchmark
suite select an implementation.  Kernels are addressed by *name* (a string)
rather than by function object so that the choice survives pickling into
process-pool workers, which re-resolve the kernel from their own registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

PYTHON = "python"
NUMPY = "numpy"
KERNEL_NAMES = (PYTHON, NUMPY)

_REGISTRY: Dict[Tuple[str, str], Callable] = {}
_DEFAULT_KERNEL: str = NUMPY


def register_kernel(operation: str, name: str, func: Callable) -> Callable:
    """Register ``func`` as the ``name`` implementation of ``operation``."""
    _REGISTRY[(operation, name)] = func
    return func


def available_kernels(operation: str) -> List[str]:
    """Names of the registered implementations of ``operation``."""
    return sorted(name for (op, name) in _REGISTRY if op == operation)


def get_kernel(operation: str, name: Optional[str] = None) -> Callable:
    """Resolve an implementation of ``operation``.

    ``name=None`` uses the process-wide default (see
    :func:`set_default_kernel`); an unknown combination raises ``KeyError``
    listing what is available.
    """
    resolved = name if name is not None else _DEFAULT_KERNEL
    try:
        return _REGISTRY[(operation, resolved)]
    except KeyError:
        raise KeyError(
            f"no {resolved!r} kernel registered for {operation!r}; "
            f"available: {available_kernels(operation)}"
        ) from None


def default_kernel() -> str:
    """The process-wide default kernel name."""
    return _DEFAULT_KERNEL


def _registered_names() -> set:
    return {name for (_, name) in _REGISTRY}


def set_default_kernel(name: str) -> None:
    """Select the default implementation (``"python"``, ``"numpy"``, or any
    registered custom kernel name)."""
    valid = set(KERNEL_NAMES) | _registered_names()
    if name not in valid:
        raise ValueError(f"unknown kernel {name!r}; expected one of {sorted(valid)}")
    global _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name


def resolve_kernel_name(name: Optional[str], operation: Optional[str] = None) -> str:
    """``name`` itself, or the default when ``None`` (validates the name).

    With ``operation`` given, the name must be registered for that
    operation, so custom kernels added through :func:`register_kernel`
    resolve the same way the built-ins do.
    """
    if name is None:
        return _DEFAULT_KERNEL
    if operation is not None:
        if (operation, name) not in _REGISTRY:
            raise ValueError(
                f"unknown kernel {name!r} for {operation!r}; "
                f"available: {available_kernels(operation)}"
            )
        return name
    if name not in _registered_names():
        raise ValueError(
            f"unknown kernel {name!r}; registered: {sorted(_registered_names())}"
        )
    return name


@contextmanager
def kernel_scope(name: str) -> Iterator[None]:
    """Temporarily switch the default kernel (used by tests and benchmarks)."""
    previous = _DEFAULT_KERNEL
    set_default_kernel(name)
    try:
        yield
    finally:
        set_default_kernel(previous)
