"""The paper's parallel primitives (Table I).

Each primitive has well-defined sequential semantics (which is what the unit
tests check) and can optionally execute over a :class:`ParallelBackend`.
The asymptotic costs quoted in the paper are recorded with the
:class:`~repro.parallel.cost_model.WorkSpanTracker` by the callers in
:mod:`repro.core`, not here, because the interesting work/span accounting is
per algorithm phase.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.parallel.scheduler import ParallelBackend, get_backend

T = TypeVar("T")
R = TypeVar("R")


def parallel_filter(
    items: Sequence[T],
    predicate: Callable[[T], bool],
    backend: Optional[ParallelBackend] = None,
) -> List[T]:
    """Return the items satisfying ``predicate``, preserving input order.

    Matches the paper's Filter primitive: O(n) work, O(log n) span.
    """
    backend = get_backend(backend)
    flags = backend.map(predicate, items)
    return [item for item, keep in zip(items, flags) if keep]


def parallel_map(
    items: Sequence[T],
    func: Callable[[T], R],
    backend: Optional[ParallelBackend] = None,
) -> List[R]:
    """Apply ``func`` to every item, returning results in input order."""
    backend = get_backend(backend)
    return backend.map(func, items)


def parallel_for(
    items: Sequence[T],
    func: Callable[[T], None],
    backend: Optional[ParallelBackend] = None,
) -> None:
    """Run ``func`` on every item for its side effects."""
    backend = get_backend(backend)
    backend.for_each(func, items)


def parallel_sort(
    items: Sequence[T],
    key: Optional[Callable[[T], object]] = None,
    reverse: bool = False,
) -> List[T]:
    """Stable sort of ``items``.

    The paper's Sort primitive is O(n log n) work and O(log n) span;
    here we rely on Timsort, which is the right sequential substitute and is
    stable (the algorithms rely on stability for deterministic tie-breaks).
    """
    return sorted(items, key=key, reverse=reverse)


def parallel_max(
    items: Sequence[T],
    key: Optional[Callable[[T], object]] = None,
    backend: Optional[ParallelBackend] = None,
) -> T:
    """Return the maximum element of ``items`` (O(n) work, O(1) span w.h.p.).

    Ties are broken in favour of the earliest element, which makes the
    prefix-1 TMFG deterministic.
    """
    if len(items) == 0:
        raise ValueError("parallel_max() arg is an empty sequence")
    backend = get_backend(backend)
    if backend.num_workers <= 1 or len(items) < 1024:
        return _sequential_max(items, key)
    chunk_size = int(math.ceil(len(items) / backend.num_workers))
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    partial = backend.map(lambda chunk: _sequential_max(chunk, key), chunks)
    return _sequential_max(partial, key)


def _sequential_max(items: Sequence[T], key: Optional[Callable[[T], object]]) -> T:
    best = items[0]
    best_key = key(best) if key is not None else best
    for item in items[1:]:
        item_key = key(item) if key is not None else item
        if item_key > best_key:
            best = item
            best_key = item_key
    return best


def parallel_top_k(
    items: Sequence[T],
    k: int,
    key: Optional[Callable[[T], object]] = None,
) -> List[T]:
    """Return the ``k`` largest items in non-increasing order.

    Used by the prefix-batched TMFG (Line 9 of Algorithm 1), where the paper
    sorts the gains array and takes a prefix.  ``k >= len(items)`` returns a
    full descending sort.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    ordered = parallel_sort(items, key=key, reverse=True)
    return ordered[:k]
