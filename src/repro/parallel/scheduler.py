"""Execution backends for the parallel primitives.

The algorithms in :mod:`repro.core` are written against an abstract
``ParallelBackend`` so that the same code can run

* serially (the default, and fastest option in CPython for fine-grained
  loops), or
* over a thread pool, which gives genuine concurrency for coarse-grained
  work that releases the GIL (large numpy reductions) and, more importantly,
  exercises the concurrent-write primitives the way the paper's algorithms
  use them.

A module-level default backend can be set with :func:`set_backend`; code that
does not care simply calls :func:`get_backend`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ParallelBackend:
    """Interface for executing independent tasks.

    Subclasses implement :meth:`map`.  ``num_workers`` reports the degree of
    parallelism the backend exposes (1 for the serial backend), which the
    cost model uses when predicting running times.
    """

    num_workers: int = 1

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``func`` to every item and return the results in order."""
        raise NotImplementedError

    def for_each(self, func: Callable[[T], None], items: Iterable[T]) -> None:
        """Apply ``func`` to every item for its side effects."""
        self.map(func, items)

    def close(self) -> None:
        """Release any resources held by the backend."""


class SerialBackend(ParallelBackend):
    """Run everything in the calling thread (deterministic order)."""

    num_workers = 1

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [func(item) for item in items]


class _ExecutorBackend(ParallelBackend):
    """Shared pool management for the executor-based backends."""

    _executor_cls: type

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._pool = self._executor_cls(max_workers=num_workers)

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> List[R]:
        # Generators and other unsized iterables are materialized first:
        # the short-path below needs len(), and a half-consumed generator
        # must not be handed to the pool.
        if not hasattr(items, "__len__"):
            items = list(items)
        if len(items) <= 1:
            return [func(item) for item in items]
        return list(self._pool.map(func, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadBackend(_ExecutorBackend):
    """Run tasks on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.

    Tasks must be thread-safe; the core algorithms only use this backend for
    independent per-item work combined with the atomic cells in
    :mod:`repro.parallel.atomics`.
    """

    _executor_cls = ThreadPoolExecutor


class ProcessBackend(_ExecutorBackend):
    """Run tasks on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Unlike the thread backend this sidesteps the GIL entirely, but both the
    function and its arguments must be picklable: a module-level function
    (or a :func:`functools.partial` of one) over flat numpy arrays.  The CSR
    graph representation (:mod:`repro.graph.csr`) exists in part so the APSP
    source chunks can be shipped to workers this way.
    """

    _executor_cls = ProcessPoolExecutor


BACKEND_NAMES = ("serial", "thread", "process")

_BACKEND_FACTORIES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(name: str, num_workers: Optional[int] = None) -> ParallelBackend:
    """Construct a backend from its name (``serial``/``thread``/``process``)."""
    try:
        factory = _BACKEND_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        ) from None
    if name == "serial":
        return factory()
    return factory(num_workers=num_workers)


_DEFAULT_BACKEND: ParallelBackend = SerialBackend()


def set_backend(backend: ParallelBackend) -> None:
    """Install ``backend`` as the process-wide default."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def get_backend(backend: Optional[ParallelBackend] = None) -> ParallelBackend:
    """Return ``backend`` if given, otherwise the process-wide default.

    Deliberately does *not* accept backend names: a name constructs a fresh
    pool the caller must ``close()``, so the call sites that support names
    (e.g. the APSP entry points, the CLI) resolve them with
    :func:`make_backend` and own the resulting pool explicitly.
    """
    if isinstance(backend, str):
        raise TypeError(
            f"get_backend takes an instance or None, not the name {backend!r}; "
            "construct (and close) named backends with make_backend()"
        )
    return backend if backend is not None else _DEFAULT_BACKEND
