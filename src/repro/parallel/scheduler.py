"""Execution backends for the parallel primitives.

The algorithms in :mod:`repro.core` are written against an abstract
``ParallelBackend`` so that the same code can run

* serially (the default, and fastest option in CPython for fine-grained
  loops), or
* over a thread pool, which gives genuine concurrency for coarse-grained
  work that releases the GIL (large numpy reductions) and, more importantly,
  exercises the concurrent-write primitives the way the paper's algorithms
  use them.

A module-level default backend can be set with :func:`set_backend`; code that
does not care simply calls :func:`get_backend`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ParallelBackend:
    """Interface for executing independent tasks.

    Subclasses implement :meth:`map`.  ``num_workers`` reports the degree of
    parallelism the backend exposes (1 for the serial backend), which the
    cost model uses when predicting running times.
    """

    num_workers: int = 1

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``func`` to every item and return the results in order."""
        raise NotImplementedError

    def for_each(self, func: Callable[[T], None], items: Sequence[T]) -> None:
        """Apply ``func`` to every item for its side effects."""
        self.map(func, items)

    def close(self) -> None:
        """Release any resources held by the backend."""


class SerialBackend(ParallelBackend):
    """Run everything in the calling thread (deterministic order)."""

    num_workers = 1

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [func(item) for item in items]


class ThreadBackend(ParallelBackend):
    """Run tasks on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.

    Tasks must be thread-safe; the core algorithms only use this backend for
    independent per-item work combined with the atomic cells in
    :mod:`repro.parallel.atomics`.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        if num_workers is None:
            num_workers = os.cpu_count() or 1
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(max_workers=num_workers)

    def map(self, func: Callable[[T], R], items: Sequence[T]) -> List[R]:
        if len(items) <= 1:
            return [func(item) for item in items]
        return list(self._pool.map(func, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


_DEFAULT_BACKEND: ParallelBackend = SerialBackend()


def set_backend(backend: ParallelBackend) -> None:
    """Install ``backend`` as the process-wide default."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def get_backend(backend: Optional[ParallelBackend] = None) -> ParallelBackend:
    """Return ``backend`` if given, otherwise the process-wide default."""
    return backend if backend is not None else _DEFAULT_BACKEND
