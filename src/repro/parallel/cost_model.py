"""Work–span cost model.

The paper analyses its algorithms in the work–span model and reports
self-relative speedups on a 48-core machine (Fig. 4).  Because CPython's GIL
prevents genuine shared-memory scaling of fine-grained loops, the
reproduction instruments each algorithm phase with its *work* (total number
of primitive operations) and *span* (longest dependency chain) and predicts
the running time on ``P`` processors with the standard work-stealing bound

    T_P = W / P + c * S

where ``c`` is a scheduling-overhead constant.  Self-relative speedup is then
``T_1 / T_P``.  This preserves the shape of the scalability results: larger
prefixes produce fewer rounds (smaller span relative to work) and therefore
scale better, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass
class PhaseCost:
    """Work and span accumulated for one named phase of an algorithm."""

    name: str
    work: float = 0.0
    span: float = 0.0

    def add(self, work: float, span: float) -> None:
        """Accumulate ``work`` and add ``span`` to the critical path."""
        self.work += work
        self.span += span

    def predicted_time(self, num_workers: int, span_overhead: float = 1.0) -> float:
        """Predicted running time on ``num_workers`` processors."""
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        return self.work / num_workers + span_overhead * self.span


class WorkSpanTracker:
    """Accumulates per-phase work/span counters for a run of an algorithm.

    Phases are created lazily by name.  A round-based algorithm (e.g. the
    prefix-batched TMFG) calls :meth:`add` once per round with that round's
    work and span; the tracker sums work and sums span (the rounds are
    sequentially dependent, so spans add).
    """

    def __init__(self) -> None:
        self._phases: Dict[str, PhaseCost] = {}

    def add(self, phase: str, work: float, span: float) -> None:
        """Add ``work``/``span`` to ``phase`` (creating it if necessary)."""
        if phase not in self._phases:
            self._phases[phase] = PhaseCost(phase)
        self._phases[phase].add(work, span)

    def phase(self, name: str) -> PhaseCost:
        """Return the cost record for ``name`` (zero if never recorded)."""
        return self._phases.get(name, PhaseCost(name))

    @property
    def phases(self) -> List[PhaseCost]:
        """All recorded phases, in insertion order."""
        return list(self._phases.values())

    @property
    def total_work(self) -> float:
        return sum(phase.work for phase in self._phases.values())

    @property
    def total_span(self) -> float:
        return sum(phase.span for phase in self._phases.values())

    def predicted_time(self, num_workers: int, span_overhead: float = 1.0) -> float:
        """Predicted total running time on ``num_workers`` processors."""
        return sum(
            phase.predicted_time(num_workers, span_overhead) for phase in self._phases.values()
        )

    def merge(self, other: "WorkSpanTracker") -> None:
        """Fold another tracker's phases into this one."""
        for phase in other.phases:
            self.add(phase.name, phase.work, phase.span)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict view used by the reporting code."""
        return {
            phase.name: {"work": phase.work, "span": phase.span}
            for phase in self._phases.values()
        }


def predicted_speedup(
    tracker: WorkSpanTracker,
    num_workers: int,
    span_overhead: float = 1.0,
    hyperthreading_efficiency: float = 1.0,
) -> float:
    """Self-relative speedup ``T_1 / T_P`` predicted by the cost model.

    ``hyperthreading_efficiency`` < 1 models the paper's observation that
    two-way hyper-threading adds less than 2x capacity; Fig. 4's "48h" point
    uses 96 workers with efficiency ~0.6.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    effective = max(1.0, num_workers * hyperthreading_efficiency)
    t1 = tracker.predicted_time(1, span_overhead)
    tp = tracker.total_work / effective + span_overhead * tracker.total_span
    if tp <= 0:
        return 1.0
    return t1 / tp


def speedup_curve(
    tracker: WorkSpanTracker,
    thread_counts: Iterable[int],
    span_overhead: float = 1.0,
    hyperthreaded_last: bool = False,
) -> List[float]:
    """Speedups for a list of thread counts (mirrors Fig. 4's x-axis).

    If ``hyperthreaded_last`` is true, the final entry is treated as a
    hyper-threaded configuration with reduced per-thread efficiency.
    """
    counts = list(thread_counts)
    curve = []
    for i, count in enumerate(counts):
        efficiency = 0.6 if (hyperthreaded_last and i == len(counts) - 1) else 1.0
        curve.append(predicted_speedup(tracker, count, span_overhead, efficiency))
    return curve
