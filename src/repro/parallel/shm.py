"""Zero-copy matrix shipment to process workers via shared memory.

The process fan-out of :func:`repro.api.batch.cluster_many` used to pickle
a full copy of every input matrix into every job.  This module instead
places each matrix in a :class:`multiprocessing.shared_memory.SharedMemory`
segment once and ships only a tiny picklable :class:`SharedMatrixRef`
(name, shape, dtype); workers map the segment and read the matrix in place
without copying.

Ownership protocol
------------------

* The parent opens a :class:`SharedMatrixArena` (a context manager) for
  one dispatch, :meth:`~SharedMatrixArena.share`\\ s the matrices, and on
  exit closes *and unlinks* every segment — after the batch returns, no
  shared memory outlives the call.
* Workers attach with :func:`open_matrix`.  A worker's attachment is NOT
  closed when its task finishes: the executor pickles the task's return
  value *after* the task function returns, and the result may in principle
  still reference the mapped buffer.  Instead, attachments are retired and
  closed at the start of the worker's *next* task (and by the OS at worker
  exit).  Unlinking while workers are still attached is safe on POSIX —
  the segment is freed when the last mapping closes.
* Worker-side attachments must not be owned by a resource tracker the
  parent does not control: on Python 3.13+ workers attach with
  ``track=False``; on older versions attaching registers the segment with
  the worker's resource tracker, and the worker unregisters it again — but
  *only* when that tracker is the worker's own (spawn/forkserver).  Forked
  workers share the parent's tracker process, where the segment is
  (correctly) registered by the parent's create; unregistering there would
  steal the parent's registration.  Each :class:`SharedMatrixRef` carries
  the parent's tracker pid so workers can tell the two cases apart.

Availability is probed, not assumed: on platforms or sandboxes without a
usable ``/dev/shm`` the caller falls back to pickled dispatch (see
:func:`shared_memory_available`).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.tracer import trace_span

_TRACK_PARAM_SUPPORTED = None  # resolved on first attach


@dataclass(frozen=True)
class SharedMatrixRef:
    """Picklable handle to a matrix living in a shared-memory segment.

    ``tracker_pid`` is the pid of the creating process's resource-tracker
    daemon (``None`` if undeterminable); workers use it to decide whether
    their own tracker is the parent's (fork) or a private one (spawn).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    tracker_pid: Optional[int] = None


def _tracker_pid() -> Optional[int]:
    """Pid of this process's resource-tracker daemon, if one is running."""
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._pid  # type: ignore[attr-defined]
    except Exception:  # repro: allow[swallowed-exception] - probing a CPython private; None falls back to pickled dispatch
        return None


class SharedMatrixArena:
    """Parent-side owner of the shared segments for one batch dispatch.

    Use as a context manager around the ``backend.map`` call; exiting
    closes and unlinks every segment created by :meth:`share`.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []

    def share(self, matrix: np.ndarray) -> SharedMatrixRef:
        """Copy ``matrix`` into a fresh segment and return its handle.

        This is the *single* copy of the zero-copy dispatch path: the
        assignment below writes straight from ``matrix`` (contiguous or
        strided, writable or read-only) into the mapped segment, with no
        intermediate ``ascontiguousarray`` materialization.
        """
        array = np.asarray(matrix)
        with trace_span("shm.share", nbytes=int(array.nbytes)):
            segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
            self._segments.append(segment)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            return SharedMatrixRef(
                segment.name, tuple(array.shape), array.dtype.str, _tracker_pid()
            )

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass

    def __enter__(self) -> "SharedMatrixArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Segments whose task has finished; their results were pickled by the
#: executor before the next task started, so they are safe to close then.
_RETIRED: List[shared_memory.SharedMemory] = []


def _attach(ref: SharedMatrixRef) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    On 3.13+ ``track=False`` skips registration entirely.  Before that,
    attaching registers the segment with this process's resource tracker;
    when that tracker is private to this process (spawn/forkserver
    workers), it would unlink the parent-owned segment at worker exit, so
    the registration is undone.  A forked worker shares the *parent's*
    tracker — there the registration is the parent's own (sets dedupe the
    double add) and must be left alone.
    """
    global _TRACK_PARAM_SUPPORTED
    if _TRACK_PARAM_SUPPORTED is not False:
        try:
            segment = shared_memory.SharedMemory(name=ref.name, track=False)
            _TRACK_PARAM_SUPPORTED = True
            return segment
        except TypeError:
            _TRACK_PARAM_SUPPORTED = False
    segment = shared_memory.SharedMemory(name=ref.name)
    own_tracker = _tracker_pid()
    if own_tracker is not None and own_tracker != ref.tracker_pid:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # repro: allow[swallowed-exception] - best-effort de-dup of tracker bookkeeping; worst case is a spurious leak warning
            pass
    return segment


def open_matrix(ref: SharedMatrixRef) -> np.ndarray:
    """Map ``ref``'s segment and return the matrix as a zero-copy view.

    Called at task start in a worker (or inline in the parent for
    single-item dispatches).  Also closes segments retired by this
    process's previous tasks — see the module docstring's ownership
    protocol.  The returned array is read-only: the segment is shared by
    every worker attached to it.
    """
    while _RETIRED:
        try:
            _RETIRED.pop().close()
        except OSError:
            pass
    segment = _attach(ref)
    _RETIRED.append(segment)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    view.flags.writeable = False
    return view


def shared_memory_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Sandboxes and minimal containers sometimes lack a writable shared
    memory mount; probing once lets callers fall back to pickled dispatch
    instead of failing mid-batch.
    """
    try:
        probe = shared_memory.SharedMemory(create=True, size=16)
    except Exception:  # repro: allow[swallowed-exception] - availability probe; False IS the diagnostic, callers fall back
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:  # repro: allow[swallowed-exception] - probe cleanup on an already-degraded platform
        pass
    return True
