"""Parallel runtime substrate.

The paper implements its algorithms in C++ with ParlayLib on a 48-core
shared-memory machine.  Pure Python cannot exploit fine-grained shared-memory
parallelism because of the GIL, so this package provides two complementary
substitutes:

* the paper's parallel primitives (Table I) — ``parallel_filter``,
  ``parallel_sort``, ``parallel_max``, and the priority concurrent writes
  ``WriteMin``/``WriteMax``/``WriteAdd`` — implemented with correct
  semantics, optionally executed over a thread pool for coarse-grained work;
* a work–span cost model (:mod:`repro.parallel.cost_model`) that records the
  work and span of each algorithm phase and predicts the running time on
  ``P`` processors as ``W / P + c * S``, which is how the scalability
  experiments (Fig. 4) are reproduced.
"""

from repro.parallel.atomics import WriteAdd, WriteMax, WriteMin
from repro.parallel.cost_model import PhaseCost, WorkSpanTracker, predicted_speedup
from repro.parallel.kernels import (
    available_kernels,
    default_kernel,
    get_kernel,
    kernel_scope,
    register_kernel,
    set_default_kernel,
)
from repro.parallel.primitives import (
    parallel_filter,
    parallel_for,
    parallel_map,
    parallel_max,
    parallel_sort,
)
from repro.parallel.scheduler import (
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    make_backend,
    set_backend,
)

__all__ = [
    "WriteAdd",
    "WriteMax",
    "WriteMin",
    "PhaseCost",
    "WorkSpanTracker",
    "predicted_speedup",
    "available_kernels",
    "default_kernel",
    "get_kernel",
    "kernel_scope",
    "register_kernel",
    "set_default_kernel",
    "parallel_filter",
    "parallel_for",
    "parallel_map",
    "parallel_max",
    "parallel_sort",
    "ParallelBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
    "make_backend",
    "set_backend",
]
