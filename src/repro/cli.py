"""Command-line interface.

Three subcommands cover the library's main workflows without writing Python:

``cluster``
    Cluster a CSV/NPY matrix of time series (one object per row) with
    TMFG + DBHT and write the flat labels (and optionally a Newick tree).

``stream``
    Slide a rolling correlation window across a return stream (one asset
    per row), re-clustering every ``--hop`` observations with warm-started
    TMFG rebuilds, and report per-tick timings and cluster drift.

``figure``
    Re-run one of the paper's figure reproductions and print its rows.

Examples
--------
::

    python -m repro cluster data.csv --clusters 5 --prefix 10 --out labels.csv
    python -m repro stream returns.csv --clusters 5 --window 250 --hop 5 --json ticks.json
    python -m repro figure fig6 --scale 0.02
    python -m repro list-figures
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import __version__
from repro.core.pipeline import tmfg_dbht
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.dendrogram.export import to_newick
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_stream_ticks, format_table
from repro.parallel.kernels import KERNEL_NAMES
from repro.parallel.scheduler import BACKEND_NAMES, make_backend
from repro.streaming.runner import StreamingPipeline

FIGURE_ENTRY_POINTS: Dict[str, Callable[..., dict]] = {
    "table2": figures.table2_datasets,
    "fig1": figures.figure1_quality_vs_time,
    "fig3": figures.figure3_runtime,
    "fig4": figures.figure4_speedup,
    "fig5": figures.figure5_breakdown,
    "fig6": figures.figure6_prefix_quality,
    "fig7": figures.figure7_edge_sum,
    "fig8": figures.figure8_quality,
    "fig9": figures.figure9_spectral_sensitivity,
    "fig10": figures.figure10_stock_clusters,
    "fig11": figures.figure11_market_cap,
    "appendix": figures.appendix_prefix_example,
    "speedup-factors": figures.speedup_factors,
    "scaling": figures.scaling_with_data_size,
}


def _load_matrix(path: str) -> np.ndarray:
    """Load a 2-D matrix from a .npy or delimited-text file."""
    if path.endswith(".npy"):
        matrix = np.load(path)
    else:
        matrix = np.loadtxt(path, delimiter=",")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix in {path}, got shape {matrix.shape}")
    return matrix


def _validate_workers(args: argparse.Namespace) -> Optional[str]:
    """Error message for an invalid --workers/--backend combination, or None."""
    if args.workers is not None and args.backend in (None, "serial"):
        return "--workers has no effect without --backend thread|process"
    if args.workers is not None and args.workers < 1:
        return "--workers must be at least 1"
    return None


def _make_cli_backend(args: argparse.Namespace):
    """Construct the backend requested on the command line (caller closes it)."""
    if args.backend and args.backend != "serial":
        return make_backend(args.backend, num_workers=args.workers)
    return None


def _command_cluster(args: argparse.Namespace) -> int:
    data = _load_matrix(args.input)
    if args.precomputed:
        similarity = data
        dissimilarity = None
    else:
        similarity, dissimilarity = similarity_and_dissimilarity(data)
    error = _validate_workers(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    backend = _make_cli_backend(args)
    try:
        result = tmfg_dbht(
            similarity,
            dissimilarity,
            prefix=args.prefix,
            kernel=args.kernel,
            backend=backend,
        )
    finally:
        if backend is not None:
            backend.close()
    labels = result.cut(args.clusters)
    if args.out:
        np.savetxt(args.out, labels, fmt="%d")
        print(f"wrote {len(labels)} labels to {args.out}")
    else:
        print(",".join(str(int(label)) for label in labels))
    if args.newick:
        with open(args.newick, "w", encoding="utf-8") as handle:
            handle.write(to_newick(result.dendrogram) + "\n")
        print(f"wrote Newick tree to {args.newick}")
    sizes = np.bincount(labels)
    print(f"clusters: {len(sizes)}  sizes: {sizes.tolist()}")
    timing = "  ".join(f"{k}={v:.2f}s" for k, v in result.step_seconds.items())
    print(f"timings: {timing}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    returns = _load_matrix(args.input)
    error = _validate_workers(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    backend = _make_cli_backend(args)
    try:
        pipeline = StreamingPipeline(
            returns,
            window=args.window,
            hop=args.hop,
            num_clusters=args.clusters,
            prefix=args.prefix,
            warm_start=not args.cold,
            kernel=args.kernel,
            backend=backend,
            max_ticks=args.max_ticks,
        )
        result = pipeline.run()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        if backend is not None:
            backend.close()
    mode = "cold" if args.cold else "warm"
    print(
        format_stream_ticks(
            result.ticks,
            title=f"Streaming TMFG+DBHT ({mode}, window={args.window}, hop={args.hop})",
        )
    )
    stats = result.warm_stats
    summary = f"ticks: {result.num_ticks}  mean tick: {result.mean_tick_seconds():.4f}s"
    if not args.cold:
        summary += (
            f"  warm replay: {stats.round_replay_rate:.1%} of rounds "
            f"({stats.full_replays}/{stats.warm_attempts} full)"
        )
    print(summary)
    drift = result.mean_drift_ari()
    if drift is not None:
        print(f"mean consecutive-tick drift: ARI={drift:.4f}")
    if args.out and result.labels is not None:
        np.savetxt(args.out, result.labels, fmt="%d")
        print(f"wrote final-tick labels to {args.out}")
    if args.json:
        payload = {
            "window": args.window,
            "hop": args.hop,
            "clusters": args.clusters,
            "warm": not args.cold,
            "ticks": [
                {
                    "tick": tick.tick,
                    "start": tick.start,
                    "stop": tick.stop,
                    "num_clusters": tick.num_clusters,
                    "warm_started": tick.warm_started,
                    "warm_rounds": tick.warm_rounds,
                    "rounds": tick.rounds,
                    "step_seconds": tick.step_seconds,
                    "drift_ari": tick.drift_ari,
                    "drift_ami": tick.drift_ami,
                }
                for tick in result.ticks
            ],
            "mean_step_seconds": result.mean_step_seconds(),
            "warm_full_replay_rate": stats.full_replay_rate,
            "warm_round_replay_rate": stats.round_replay_rate,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote per-tick report to {args.json}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURE_ENTRY_POINTS:
        print(f"unknown figure {args.name!r}; use `list-figures`", file=sys.stderr)
        return 2
    entry_point = FIGURE_ENTRY_POINTS[args.name]
    if args.name == "appendix":
        result = entry_point()
    else:
        config = ExperimentConfig(scale=args.scale) if args.scale else None
        result = entry_point(config)
    print(format_table(result["headers"], result["rows"], title=result["title"]))
    return 0


def _command_list_figures(_: argparse.Namespace) -> int:
    for name in FIGURE_ENTRY_POINTS:
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel filtered graphs (TMFG) + DBHT hierarchical clustering",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser("cluster", help="cluster a data matrix with TMFG + DBHT")
    cluster.add_argument("input", help="CSV or .npy file, one object per row")
    cluster.add_argument("--clusters", type=int, required=True, help="number of flat clusters")
    cluster.add_argument("--prefix", type=int, default=10, help="TMFG prefix size (1 = exact)")
    cluster.add_argument(
        "--precomputed",
        action="store_true",
        help="treat the input as a precomputed similarity matrix instead of raw series",
    )
    cluster.add_argument("--out", help="write labels to this file (one per line)")
    cluster.add_argument("--newick", help="also write the dendrogram as a Newick file")
    cluster.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=None,
        help="hot-loop kernel for gains/APSP (default: numpy; identical results)",
    )
    cluster.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="parallel backend for the APSP source chunks (default: serial)",
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backend (default: cpu count)",
    )
    cluster.set_defaults(func=_command_cluster)

    stream = subparsers.add_parser(
        "stream",
        help="rolling-window streaming clustering of a return stream",
    )
    stream.add_argument("input", help="CSV or .npy return matrix, one asset per row")
    stream.add_argument("--clusters", type=int, required=True, help="flat clusters per tick")
    stream.add_argument("--window", type=int, required=True, help="observations per window")
    stream.add_argument("--hop", type=int, default=1, help="observations per tick (default 1)")
    stream.add_argument("--prefix", type=int, default=1, help="TMFG prefix size (1 = exact)")
    stream.add_argument(
        "--cold",
        action="store_true",
        help="disable TMFG warm starts (identical labels; cold-rebuild timing)",
    )
    stream.add_argument("--max-ticks", type=int, default=None, help="stop after this many ticks")
    stream.add_argument("--out", help="write the final tick's labels to this file")
    stream.add_argument("--json", help="write the per-tick report as JSON to this file")
    stream.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=None,
        help="hot-loop kernel for gains/APSP (default: numpy; identical results)",
    )
    stream.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="parallel backend for the APSP source chunks (default: serial)",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backend (default: cpu count)",
    )
    stream.set_defaults(func=_command_stream)

    figure = subparsers.add_parser("figure", help="re-run one of the paper's figures")
    figure.add_argument("name", help="figure id, e.g. fig6 (see list-figures)")
    figure.add_argument("--scale", type=float, default=None, help="data-set scale factor")
    figure.set_defaults(func=_command_figure)

    list_figures = subparsers.add_parser("list-figures", help="list available figure ids")
    list_figures.set_defaults(func=_command_list_figures)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
