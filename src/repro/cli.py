"""Command-line interface.

Three subcommands cover the library's main workflows without writing Python:

``cluster``
    Cluster a CSV/NPY matrix with any registered estimator (``--method``,
    default TMFG + DBHT) and write the flat labels (and optionally a Newick
    tree).  The run is described by a :class:`~repro.api.ClusteringConfig`;
    ``--config cfg.json`` loads one (CLI flags override it) and
    ``--save-config cfg.json`` writes the resolved config back out, so a
    run can be reproduced from its serialized configuration alone.

``stream``
    Slide a rolling correlation window across a return stream (one asset
    per row), re-clustering every ``--hop`` observations with warm-started
    TMFG rebuilds, and report per-tick timings and cluster drift.

``serve``
    Run the micro-batching HTTP/JSON clustering daemon (``POST /cluster``,
    ``GET /healthz``, ``GET /metrics``) until SIGTERM.  The flags shared
    with ``cluster`` (``--kernel``, ``--backend``, ``--config``,
    ``--cache-dir``, ...) set the *default* config that request payloads
    overlay.

``trace``
    Inspect the JSON-lines event log written by ``serve --trace-log``:
    render per-trace span waterfalls and a per-kind latency breakdown.

``figure``
    Re-run one of the paper's figure reproductions and print its rows.

Examples
--------
::

    python -m repro cluster data.csv --clusters 5 --prefix 10 --out labels.csv
    python -m repro cluster data.csv --clusters 5 --method hac-average
    python -m repro cluster data.csv --config cfg.json
    python -m repro stream returns.csv --clusters 5 --window 250 --hop 5 --json ticks.json
    python -m repro serve --port 8752 --max-batch-size 16 --max-wait-ms 10
    python -m repro serve --port 8752 --workers 2 --trace-log traces.jsonl
    python -m repro trace traces.jsonl --limit 3
    python -m repro figure fig6 --scale 0.02
    python -m repro list-figures
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro import __version__
from repro.api.config import ClusteringConfig
from repro.api.estimators import available_estimators, make_estimator
from repro.dendrogram.export import to_newick
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_stream_ticks, format_table
from repro.graph.shortest_paths import available_apsp_methods
from repro.parallel.kernels import KERNEL_NAMES
from repro.parallel.scheduler import BACKEND_NAMES
from repro.streaming.runner import StreamingPipeline

FIGURE_ENTRY_POINTS: Dict[str, Callable[..., dict]] = {
    "table2": figures.table2_datasets,
    "fig1": figures.figure1_quality_vs_time,
    "fig3": figures.figure3_runtime,
    "fig4": figures.figure4_speedup,
    "fig5": figures.figure5_breakdown,
    "fig6": figures.figure6_prefix_quality,
    "fig7": figures.figure7_edge_sum,
    "fig8": figures.figure8_quality,
    "fig9": figures.figure9_spectral_sensitivity,
    "fig10": figures.figure10_stock_clusters,
    "fig11": figures.figure11_market_cap,
    "appendix": figures.appendix_prefix_example,
    "speedup-factors": figures.speedup_factors,
    "scaling": figures.scaling_with_data_size,
}


def _load_matrix(path: str) -> np.ndarray:
    """Load a 2-D matrix from a .npy or delimited-text file."""
    if path.endswith(".npy"):
        matrix = np.load(path)
    else:
        matrix = np.loadtxt(path, delimiter=",")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix in {path}, got shape {matrix.shape}")
    return matrix


# Config-field -> CLI-flag spelling, applied to validation errors so the
# message names the flag the user typed.  Only whole field names are
# replaced (not substrings of other fields or of already-spelled flags),
# and only for errors raised from flag handling — errors from a --config
# file keep the JSON field names the file actually uses.
_FLAG_SPELLINGS = (
    ("num_clusters", "--clusters"),
    ("cache_dir", "--cache-dir"),
    ("apsp_method", "--apsp-method"),
    ("landmarks", "--landmarks"),
    ("workers", "--workers"),
    ("backend", "--backend"),
    ("kernel", "--kernel"),
    ("prefix", "--prefix"),
    ("method", "--method"),
)

# ClusteringConfig fields deliberately reachable only through a --config
# file (no dedicated flag): research knobs that would clutter the CLI
# surface.  The config-fingerprint lint rule checks that every config
# field is either flag-wired above / in _config_from_args or listed here,
# so adding a field without deciding its CLI story fails `repro lint`.
_CONFIG_FILE_ONLY_FIELDS = (
    "linkage",
    "seed",
    "num_restarts",
    "spectral_neighbors",
)


def _flagged_message(error: Exception) -> str:
    message = str(error)
    for field_name, flag in _FLAG_SPELLINGS:
        message = re.sub(rf"(?<![\w-]){field_name}(?![\w-])", flag, message)
    return message


class _ConfigFileError(ValueError):
    """A --config file failed to load; message uses JSON field names."""


def _config_from_args(args: argparse.Namespace, default: ClusteringConfig) -> ClusteringConfig:
    """The one CLI path from parsed flags to a validated ClusteringConfig.

    ``--config`` (when present) replaces ``default`` as the base; explicit
    flags override the base field by field.  Validation happens in the
    frozen dataclass, so every subcommand shares the same rules (e.g.
    ``--workers`` without a parallel ``--backend`` is rejected here).
    """
    base = default
    config_path = getattr(args, "config", None)
    if config_path:
        try:
            with open(config_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("a ClusteringConfig JSON document must be an object")
            # Overlay onto the subcommand's defaults so a partial file does
            # not silently revert them (e.g. cluster's prefix 10).
            base = base.merged(payload)
        except (ValueError, OSError) as error:
            raise _ConfigFileError(f"bad --config file {config_path}: {error}") from error
    changes = {}
    if getattr(args, "method", None) is not None:
        changes["method"] = args.method
    if getattr(args, "clusters", None) is not None:
        changes["num_clusters"] = args.clusters
    if getattr(args, "prefix", None) is not None:
        changes["prefix"] = args.prefix
    if getattr(args, "kernel", None) is not None:
        changes["kernel"] = args.kernel
    if getattr(args, "apsp_method", None) is not None:
        changes["apsp_method"] = args.apsp_method
    if getattr(args, "landmarks", None) is not None:
        changes["landmarks"] = args.landmarks
    if getattr(args, "backend", None) is not None:
        changes["backend"] = args.backend
    if getattr(args, "workers", None) is not None:
        changes["workers"] = args.workers
    if getattr(args, "precomputed", False):
        changes["precomputed"] = True
    if getattr(args, "no_cache", False):
        changes["cache"] = False
        changes["cache_dir"] = None
    if getattr(args, "cache_dir", None) is not None:
        changes["cache_dir"] = args.cache_dir
    if getattr(args, "cold", False) and getattr(args, "warm", False):
        raise ValueError("--cold and --warm are mutually exclusive")
    if getattr(args, "cold", False):
        changes["warm_start"] = False
    if getattr(args, "warm", False):
        changes["warm_start"] = True
    return base.replace(**changes)


def _print_cli_error(error: Exception) -> None:
    if isinstance(error, _ConfigFileError):
        print(str(error), file=sys.stderr)
    else:
        print(_flagged_message(error), file=sys.stderr)


def _command_cluster(args: argparse.Namespace) -> int:
    try:
        config = _config_from_args(args, ClusteringConfig(prefix=10, cache=True))
    except (ValueError, OSError) as error:
        _print_cli_error(error)
        return 2
    if config.num_clusters is None:
        print("--clusters is required (as a flag or via --config)", file=sys.stderr)
        return 2
    data = _load_matrix(args.input)
    try:
        estimator = make_estimator(config.method, config)
        result = estimator.fit(data).result_
    except ValueError as error:
        # Fit-time values may come from a --config file, so keep the raw
        # field names (flag spelling applies only to flag-merge errors).
        print(str(error), file=sys.stderr)
        return 2
    if args.newick and result.dendrogram is None:
        # Fail before writing any output so a non-zero exit leaves no files.
        print(
            f"method {config.method!r} builds no dendrogram; --newick is unavailable",
            file=sys.stderr,
        )
        return 2
    if args.save_config:
        with open(args.save_config, "w", encoding="utf-8") as handle:
            handle.write(config.to_json(indent=2) + "\n")
        print(f"wrote config to {args.save_config}")
    labels = result.labels
    if args.out:
        np.savetxt(args.out, labels, fmt="%d")
        print(f"wrote {len(labels)} labels to {args.out}")
    else:
        print(",".join(str(int(label)) for label in labels))
    if args.newick:
        with open(args.newick, "w", encoding="utf-8") as handle:
            handle.write(to_newick(result.dendrogram) + "\n")
        print(f"wrote Newick tree to {args.newick}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2) + "\n")
        print(f"wrote result to {args.json}")
    sizes = np.bincount(labels)
    print(f"clusters: {len(sizes)}  sizes: {sizes.tolist()}")
    timing = "  ".join(f"{k}={v:.2f}s" for k, v in result.step_seconds.items())
    print(f"timings: {timing}")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    try:
        config = _config_from_args(args, ClusteringConfig(warm_start=True, cache=True))
    except (ValueError, OSError) as error:
        _print_cli_error(error)
        return 2
    if config.num_clusters is None:
        print("--clusters is required (as a flag or via --config)", file=sys.stderr)
        return 2
    returns = _load_matrix(args.input)
    try:
        pipeline = StreamingPipeline(
            returns,
            window=args.window,
            hop=args.hop,
            max_ticks=args.max_ticks,
            config=config,
        )
        result = pipeline.run()
    except ValueError as error:
        print(_flagged_message(error), file=sys.stderr)
        return 2
    mode = "warm" if config.warm_start else "cold"
    print(
        format_stream_ticks(
            result.ticks,
            title=f"Streaming TMFG+DBHT ({mode}, window={args.window}, hop={args.hop})",
        )
    )
    stats = result.warm_stats
    summary = f"ticks: {result.num_ticks}  mean tick: {result.mean_tick_seconds():.4f}s"
    if result.reused_ticks:
        summary += f"  reused (unchanged window): {result.reused_ticks}"
    if result.apsp_stats is not None:
        summary += f"  apsp row reuse: {result.apsp_stats['reuse_rate']:.1%}"
    if config.warm_start:
        summary += (
            f"  warm replay: {stats.round_replay_rate:.1%} of rounds "
            f"({stats.full_replays}/{stats.warm_attempts} full)"
        )
    print(summary)
    drift = result.mean_drift_ari()
    if drift is not None:
        print(f"mean consecutive-tick drift: ARI={drift:.4f}")
    if args.out and result.labels is not None:
        np.savetxt(args.out, result.labels, fmt="%d")
        print(f"wrote final-tick labels to {args.out}")
    if args.json:
        payload = {
            "window": args.window,
            "hop": args.hop,
            "clusters": config.num_clusters,
            "warm": config.warm_start,
            "config": config.to_dict(),
            "ticks": [
                {
                    "tick": tick.tick,
                    "start": tick.start,
                    "stop": tick.stop,
                    "num_clusters": tick.num_clusters,
                    "warm_started": tick.warm_started,
                    "warm_rounds": tick.warm_rounds,
                    "rounds": tick.rounds,
                    "step_seconds": tick.step_seconds,
                    "drift_ari": tick.drift_ari,
                    "drift_ami": tick.drift_ami,
                    "reused": tick.reused,
                }
                for tick in result.ticks
            ],
            "mean_step_seconds": result.mean_step_seconds(),
            "warm_full_replay_rate": stats.full_replay_rate,
            "warm_round_replay_rate": stats.round_replay_rate,
            "apsp_stats": result.apsp_stats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote per-tick report to {args.json}")
    return 0


def _serve_replica_argv(args: argparse.Namespace) -> list:
    """The ``repro serve`` flags one fleet replica inherits from the
    parent invocation (everything except --host/--port/--workers, which
    the supervisor owns)."""
    argv = [
        "--max-batch-size", str(args.max_batch_size),
        "--max-wait-ms", str(args.max_wait_ms),
        "--max-queue", str(args.max_queue),
        "--fit-workers", str(args.fit_workers),
        "--binary" if args.binary else "--no-binary",
    ]
    for flag, value in (
        ("--clusters", args.clusters),
        ("--method", args.method),
        ("--prefix", args.prefix),
        ("--kernel", args.kernel),
        ("--apsp-method", args.apsp_method),
        ("--landmarks", args.landmarks),
        ("--backend", args.backend),
        ("--config", args.config),
        ("--cache-dir", args.cache_dir),
    ):
        if value is not None:
            argv += [flag, str(value)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.trace_log is not None:
        # Passed through verbatim: a {replica_id} placeholder is expanded
        # per replica by the supervisor; a plain path is shared by every
        # replica (the event log appends whole lines, so that is safe).
        argv += ["--trace-log", args.trace_log]
        if args.trace_sample != 1.0:
            argv += ["--trace-sample", str(args.trace_sample)]
    return argv


def _command_serve_fleet(args: argparse.Namespace) -> int:
    from repro.serve.fleet import build_fleet

    try:
        # Validate the shared config up front so bad flags fail fast here
        # instead of crash-looping N replicas.
        config = _config_from_args(args, ClusteringConfig(cache=True))
        router_trace_log = (
            args.trace_log.replace("{replica_id}", "router")
            if args.trace_log is not None
            else None
        )
        fleet = build_fleet(
            args.replicas,
            _serve_replica_argv(args),
            args.host,
            args.port,
            trace_log=router_trace_log,
            trace_sample=args.trace_sample,
        )
    except (ValueError, OSError) as error:
        _print_cli_error(error)
        return 2

    def _announce(ready) -> None:
        print(
            f"repro serve fleet listening on http://{ready.host}:{ready.port} "
            f"(workers={args.replicas}, method={config.method}, "
            f"cache={'on' if config.cache else 'off'}, "
            f"binary={'on' if args.binary else 'off'})",
            flush=True,
        )

    try:
        fleet.run(on_ready=_announce)
    except OSError as error:  # e.g. port already bound
        print(f"repro serve failed to start: {error}", file=sys.stderr)
        return 1
    except (TimeoutError, RuntimeError) as error:
        print(f"repro serve fleet failed to become ready: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass  # signal handler already drained; exit quietly
    print("repro serve fleet drained and stopped", flush=True)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here: the serving layer pulls in asyncio machinery no other
    # subcommand needs.
    from repro.serve.server import ClusteringServer

    if args.replicas < 1:
        _print_cli_error(ValueError("--workers must be at least 1"))
        return 2
    if args.replicas > 1:
        return _command_serve_fleet(args)
    try:
        config = _config_from_args(args, ClusteringConfig(cache=True))
        server = ClusteringServer(
            host=args.host,
            port=args.port,
            default_config=config,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            max_queue_depth=args.max_queue,
            fit_workers=args.fit_workers,
            binary=args.binary,
            trace_log=(
                args.trace_log.replace("{replica_id}", "server")
                if args.trace_log is not None
                else None
            ),
            trace_sample=args.trace_sample,
        )
    except (ValueError, OSError) as error:
        _print_cli_error(error)
        return 2

    def _announce(ready: ClusteringServer) -> None:
        print(
            f"repro serve listening on http://{ready.host}:{ready.port} "
            f"(method={config.method}, cache={'on' if config.cache else 'off'}, "
            f"max_batch_size={ready.max_batch_size}, max_wait_ms={ready.max_wait_ms:g}, "
            f"max_queue={ready.max_queue_depth}, fit_workers={ready.fit_workers}, "
            f"binary={'on' if ready.binary else 'off'})",
            flush=True,
        )

    try:
        server.run(on_ready=_announce)
    except OSError as error:  # e.g. port already bound
        print(f"repro serve failed to start: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass  # signal handler already drained; exit quietly
    print("repro serve drained and stopped", flush=True)
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.events import load_trace_events
    from repro.obs.traceview import (
        format_kind_table,
        format_waterfall,
        group_traces,
        kind_breakdown,
        trace_summary,
    )

    try:
        events = load_trace_events(args.log)
    except (OSError, ValueError) as error:
        _print_cli_error(error)
        return 2
    if not events:
        print("no trace events found", file=sys.stderr)
        return 1

    traces = group_traces(events)
    if args.trace is not None:
        if args.trace not in traces:
            _print_cli_error(
                ValueError(
                    f"trace {args.trace!r} not found in the log(s); "
                    f"{len(traces)} trace(s) present"
                )
            )
            return 2
        selected = {args.trace: traces[args.trace]}
    else:
        # Most recent traces first, capped at --limit.
        ordered = sorted(
            traces.items(),
            key=lambda item: trace_summary(item[0], item[1])["started_unix"],
            reverse=True,
        )
        selected = dict(ordered[: args.limit])

    if args.json:
        payload = {
            "events": len(events),
            "traces": [
                {
                    **trace_summary(trace_id, spans),
                    "spans_detail": spans,
                }
                for trace_id, spans in selected.items()
            ],
            "kinds": kind_breakdown(events),
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    for trace_id, spans in selected.items():
        print(format_waterfall(trace_id, spans))
        print()
    print(
        f"{len(events)} event(s), {len(traces)} trace(s) "
        f"({len(selected)} shown; --limit/--trace to adjust)"
    )
    print()
    print(format_kind_table(kind_breakdown(events)))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURE_ENTRY_POINTS:
        print(f"unknown figure {args.name!r}; use `list-figures`", file=sys.stderr)
        return 2
    entry_point = FIGURE_ENTRY_POINTS[args.name]
    if args.name == "appendix":
        result = entry_point()
    else:
        config = ExperimentConfig(scale=args.scale) if args.scale else None
        result = entry_point(config)
    print(format_table(result["headers"], result["rows"], title=result["title"]))
    return 0


def _command_list_figures(_: argparse.Namespace) -> int:
    for name in FIGURE_ENTRY_POINTS:
        print(name)
    return 0


def _command_list_methods(_: argparse.Namespace) -> int:
    for name in available_estimators():
        print(name)
    return 0


def _add_execution_flags(parser: argparse.ArgumentParser, include_workers: bool = True) -> None:
    """The kernel/backend/workers flags shared by cluster and stream.

    ``include_workers=False`` leaves ``--workers`` out so a subcommand can
    claim that spelling for itself (serve uses it for the replica count;
    its backend worker count is still settable via ``--config``).
    """
    parser.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=None,
        help="hot-loop kernel for gains/APSP (default: numpy; identical results)",
    )
    parser.add_argument(
        "--apsp-method",
        dest="apsp_method",
        choices=available_apsp_methods(),
        default=None,
        help=(
            "APSP implementation for the DBHT (default: dijkstra; "
            "'landmark' is approximate and strictly opt-in)"
        ),
    )
    parser.add_argument(
        "--landmarks",
        type=int,
        default=None,
        help="landmark count for --apsp-method landmark (default 32)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="parallel backend for the APSP source chunks (default: serial)",
    )
    if include_workers:
        parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for the thread/process backend (default: cpu count)",
        )
    parser.add_argument(
        "--config",
        default=None,
        help="load a serialized ClusteringConfig JSON (explicit flags override it)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist the content-addressed result cache under this directory "
        "(hits across runs; corrupt/stale entries degrade to misses)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (identical results; always recomputes)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel filtered graphs (TMFG) + DBHT hierarchical clustering",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    cluster = subparsers.add_parser("cluster", help="cluster a data matrix with any registered method")
    cluster.add_argument("input", help="CSV or .npy file, one object per row")
    cluster.add_argument(
        "--clusters",
        type=int,
        default=None,
        help="number of flat clusters (required unless --config carries num_clusters)",
    )
    cluster.add_argument(
        "--method",
        choices=available_estimators(),
        default=None,
        help="estimator id from the method registry (default: tmfg-dbht)",
    )
    cluster.add_argument(
        "--prefix", type=int, default=None, help="TMFG prefix size (default 10; 1 = exact)"
    )
    cluster.add_argument(
        "--precomputed",
        action="store_true",
        help="treat the input as a precomputed similarity matrix instead of raw series",
    )
    cluster.add_argument("--out", help="write labels to this file (one per line)")
    cluster.add_argument("--newick", help="also write the dendrogram as a Newick file")
    cluster.add_argument("--json", help="write the full ClusterResult as JSON to this file")
    cluster.add_argument(
        "--save-config",
        default=None,
        help="write the resolved ClusteringConfig as JSON to this file",
    )
    _add_execution_flags(cluster)
    cluster.set_defaults(func=_command_cluster)

    stream = subparsers.add_parser(
        "stream",
        help="rolling-window streaming clustering of a return stream",
    )
    stream.add_argument("input", help="CSV or .npy return matrix, one asset per row")
    stream.add_argument(
        "--clusters",
        type=int,
        default=None,
        help="flat clusters per tick (required unless --config carries num_clusters)",
    )
    stream.add_argument("--window", type=int, required=True, help="observations per window")
    stream.add_argument("--hop", type=int, default=1, help="observations per tick (default 1)")
    stream.add_argument("--prefix", type=int, default=None, help="TMFG prefix size (default 1 = exact)")
    stream.add_argument(
        "--cold",
        action="store_true",
        help="disable TMFG warm starts (identical labels; cold-rebuild timing)",
    )
    stream.add_argument(
        "--warm",
        action="store_true",
        help="force TMFG warm starts on (overrides warm_start=false in --config)",
    )
    stream.add_argument("--max-ticks", type=int, default=None, help="stop after this many ticks")
    stream.add_argument("--out", help="write the final tick's labels to this file")
    stream.add_argument("--json", help="write the per-tick report as JSON to this file")
    _add_execution_flags(stream)
    stream.set_defaults(func=_command_stream)

    serve = subparsers.add_parser(
        "serve",
        help="run the micro-batching HTTP/JSON clustering service",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8752,
        help="bind port (default 8752; 0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--clusters",
        type=int,
        default=None,
        help="default flat-cluster count for requests that do not set num_clusters",
    )
    serve.add_argument(
        "--method",
        choices=available_estimators(),
        default=None,
        help="default estimator id for requests that do not name one (default: tmfg-dbht)",
    )
    serve.add_argument(
        "--prefix", type=int, default=None, help="default TMFG prefix size (default 1)"
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=16,
        help="flush a micro-batch at this many waiting requests (default 16)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=10.0,
        help="flush when the oldest waiting request is this old (default 10ms; 0 disables batching)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="admission bound: answer 429 beyond this many waiting requests (default 256)",
    )
    serve.add_argument(
        "--fit-workers",
        type=int,
        default=2,
        help="threads fitting batches concurrently (default 2)",
    )
    serve.add_argument(
        "--binary",
        dest="binary",
        action="store_true",
        default=True,
        help="accept/emit the application/x-repro-matrix binary matrix transport (default)",
    )
    serve.add_argument(
        "--no-binary",
        dest="binary",
        action="store_false",
        help="JSON-only surface: answer 415 to binary matrix bodies",
    )
    serve.add_argument(
        "--trace-log",
        default=None,
        metavar="PATH",
        help=(
            "append one JSON line per finished span to PATH and enable request "
            "tracing; the literal {replica_id} in PATH becomes the replica id "
            "under --workers N (or 'server'/'router' for the local process)"
        ),
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help=(
            "fraction of untraced requests to originate a trace for when "
            "--trace-log is set (default 1.0; client-supplied trace ids are "
            "always honored)"
        ),
    )
    serve.add_argument(
        "--workers",
        dest="replicas",
        type=int,
        default=1,
        help=(
            "replica count: 1 (default) serves in-process; N>=2 runs N supervised "
            "replica processes behind one consistent-hash router on --port"
        ),
    )
    _add_execution_flags(serve, include_workers=False)
    serve.set_defaults(func=_command_serve)

    trace = subparsers.add_parser(
        "trace",
        help="inspect a --trace-log: per-trace waterfalls and per-kind latency breakdowns",
    )
    trace.add_argument(
        "log",
        nargs="+",
        help="trace event log file(s) written by repro serve --trace-log",
    )
    trace.add_argument(
        "--trace",
        default=None,
        metavar="TRACE_ID",
        help="show only this trace id (default: the --limit most recent traces)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=10,
        help="maximum number of traces to render (default 10)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable summaries and span details instead of waterfalls",
    )
    trace.set_defaults(func=_command_trace)

    figure = subparsers.add_parser("figure", help="re-run one of the paper's figures")
    figure.add_argument("name", help="figure id, e.g. fig6 (see list-figures)")
    figure.add_argument("--scale", type=float, default=None, help="data-set scale factor")
    figure.set_defaults(func=_command_figure)

    list_figures = subparsers.add_parser("list-figures", help="list available figure ids")
    list_figures.set_defaults(func=_command_list_figures)

    list_methods = subparsers.add_parser(
        "list-methods", help="list the estimator ids the method registry resolves"
    )
    list_methods.set_defaults(func=_command_list_methods)

    # The lint verb is also dispatched pre-import by repro/__main__.py so
    # `python -m repro lint` works without numpy; registering it here too
    # keeps `repro.cli.main(["lint", ...])` and --help consistent.
    from repro.analysis.cli import add_lint_arguments, run_lint_command

    lint = subparsers.add_parser(
        "lint", help="run the AST-based invariant checker over the source tree"
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint_command)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
