"""Unified estimator API.

One typed configuration surface (:class:`ClusteringConfig`), one estimator
contract (:class:`ClusteringEstimator` subclasses behind
:func:`make_estimator`), one result type (:class:`ClusterResult`), and one
batch front door (:func:`cluster_many`)::

    from repro.api import ClusteringConfig, make_estimator

    config = ClusteringConfig(method="tmfg-dbht", prefix=10, num_clusters=4)
    labels = make_estimator(config.method, config).fit_predict(data)

Configs serialize losslessly (``to_dict``/``from_dict``, ``to_json``/
``from_json``), which backs ``repro cluster --config cfg.json`` and lets
batch jobs ship their configuration as data.
"""

from repro.api.batch import cluster_many
from repro.api.config import APSP_METHODS, LINKAGE_NAMES, ClusteringConfig
from repro.api.estimators import (
    ClassicDBHTClusterer,
    ClusteringEstimator,
    HACClusterer,
    KMeansClusterer,
    NotFittedError,
    PMFGClusterer,
    SpectralKMeansClusterer,
    TMFGClusterer,
    available_estimators,
    make_estimator,
    register_method,
)
from repro.api.result import ClusterResult

__all__ = [
    "APSP_METHODS",
    "LINKAGE_NAMES",
    "ClusteringConfig",
    "ClusterResult",
    "ClusteringEstimator",
    "NotFittedError",
    "TMFGClusterer",
    "PMFGClusterer",
    "ClassicDBHTClusterer",
    "HACClusterer",
    "KMeansClusterer",
    "SpectralKMeansClusterer",
    "available_estimators",
    "make_estimator",
    "register_method",
    "cluster_many",
]
