"""Batch front door: cluster many matrices through one config.

:func:`cluster_many` is the serving-shaped endpoint of the library: give it
a sequence of input matrices (independent jobs — different windows,
different markets, different scenario sweeps) and one
:class:`~repro.api.config.ClusteringConfig`, and it fans the fits out over
a :mod:`repro.parallel.scheduler` backend, returning one
:class:`~repro.api.result.ClusterResult` per input, in order.

Serving batches are heavily repetitive, so the front door is
cache-and-dedup aware:

* identical jobs (same config fingerprint, same matrix bytes) are
  deduplicated *before* dispatch — each distinct job is fitted once and
  its duplicates receive clones (``dedupe=False`` restores one-fit-per-
  input, mainly for benchmarking the dedup itself);
* with ``config.cache``, the content-addressed result cache
  (:mod:`repro.cache`) is consulted per distinct job and only the misses
  are shipped to workers; computed results are stored back.

With a process fan-out, input matrices are placed in shared memory and
mapped zero-copy into the workers (:mod:`repro.parallel.shm`) instead of
being pickled into every job; where shared memory is unavailable the
dispatch transparently falls back to pickling.  The per-fit
``config.backend`` is forced to serial under a process fan-out (with a
warning) — nesting pools would multiply workers.
"""

from __future__ import annotations

import warnings
from functools import partial
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.api.config import ClusteringConfig
from repro.api.estimators import make_estimator
from repro.api.result import ClusterResult
from repro.cache import get_result_cache, result_cache_key
from repro.obs.tracer import trace_span
from repro.parallel import shm
from repro.parallel.scheduler import (
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)


def fit_one(config: ClusteringConfig, matrix: np.ndarray) -> ClusterResult:
    """Fit ``config.method`` on one matrix (the unit of batch work)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(
            f"fit_one expects a 2-D matrix (objects x observations, or a "
            f"square similarity matrix with config.precomputed); got shape "
            f"{matrix.shape}"
        )
    estimator = make_estimator(config.method, config)
    estimator.fit(matrix)
    assert estimator.result_ is not None
    return estimator.result_


def _fit_one_shared(config: ClusteringConfig, ref: shm.SharedMatrixRef) -> ClusterResult:
    """Worker entry point: fit one matrix mapped from shared memory."""
    return fit_one(config, shm.open_matrix(ref))


def cluster_many(
    matrices: Sequence[np.ndarray],
    config: Optional[ClusteringConfig] = None,
    backend: Optional[Union[ParallelBackend, str]] = None,
    workers: Optional[int] = None,
    dedupe: bool = True,
) -> List[ClusterResult]:
    """Cluster every matrix in ``matrices`` with the same config.

    Parameters
    ----------
    matrices:
        Independent input matrices (raw series per row, or precomputed
        similarities when ``config.precomputed``).
    config:
        The shared :class:`ClusteringConfig` (defaults when ``None``).
        ``config.cache`` routes every distinct job through the
        content-addressed result cache.
    backend:
        Fan-out backend: a live :class:`ParallelBackend` (caller closes
        it), a name (``"serial"``/``"thread"``/``"process"`` — opened and
        closed here), or ``None`` for serial.
    workers:
        Worker count when ``backend`` is a name.  Passing it alongside a
        live backend instance (whose pool size is already fixed) or with
        no backend at all (a serial run) raises ``ValueError`` — silently
        ignoring the argument would let a mis-sized pool pass unnoticed.
    dedupe:
        Deduplicate identical jobs before dispatch (default).  Duplicates
        receive :meth:`~repro.api.result.ClusterResult.clone`\\ s of the
        one computed result — byte-identical payloads that share the
        read-only ``raw`` artefacts.

    Returns
    -------
    list of ClusterResult
        One result per input matrix, in input order.
    """
    config = config if config is not None else ClusteringConfig()
    if workers is not None and isinstance(backend, ParallelBackend):
        raise ValueError(
            f"workers={workers} was passed alongside a live backend instance, "
            f"which already fixed its pool at {backend.num_workers} worker(s); "
            "size the pool at construction or pass the backend by name"
        )
    if workers is not None and backend is None:
        raise ValueError(
            f"workers={workers} has no effect without a fan-out backend; "
            "pass backend='thread' or backend='process'"
        )
    if len(matrices) == 0:
        # Nothing to fit: skip backend construction, fingerprinting, and
        # dispatch entirely (the serving path flushes empty batches away).
        return []
    owns_backend = False
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend, num_workers=workers)
        owns_backend = True
    with trace_span("batch.cluster_many", jobs=len(matrices)) as probe:
        try:
            if isinstance(backend, ProcessBackend) and config.backend not in (None, "serial"):
                warnings.warn(
                    f"cluster_many: a process fan-out with config.backend="
                    f"{config.backend!r} would nest pools and multiply workers; "
                    "forcing the per-fit backend to serial",
                    RuntimeWarning,
                    stacklevel=2,
                )
                config = config.replace(backend=None, workers=None)

            # Normalize the config through the registry before fingerprinting:
            # the estimator a worker builds pins method aliases to their
            # canonical id (par-tdbht -> tmfg-dbht) and applies id-pinned
            # fields (comp -> linkage="complete") and fingerprints *that*
            # config, so keying on the raw config would store every alias
            # under a second key and miss entries a direct estimator fit wrote.
            config = make_estimator(config.method, config).config

            arrays = [np.asarray(matrix, dtype=float) for matrix in matrices]
            cache = get_result_cache(config.cache_dir) if config.cache else None
            if not dedupe and cache is None:
                # Explicit cold path (bench baselines): nothing consumes the
                # fingerprints, so skip hashing the inputs entirely.
                return _dispatch(backend, config, arrays)
            keys = [result_cache_key(config, array) for array in arrays]

            # One representative result per distinct key: cache hits now,
            # computed misses below.
            resolved: Dict[str, ClusterResult] = {}
            if cache is not None:
                for key in dict.fromkeys(keys):
                    hit = cache.get(key)
                    if hit is not None:
                        resolved[key] = hit
            if dedupe:
                first_index: Dict[str, int] = {}
                for index, key in enumerate(keys):
                    if key not in resolved:
                        first_index.setdefault(key, index)
                todo = sorted(first_index.values())
            else:
                todo = [i for i, key in enumerate(keys) if key not in resolved]
            probe.set_attribute("distinct", len(todo))
            probe.set_attribute("cache_hits", len(resolved))

            results: List[Optional[ClusterResult]] = [None] * len(arrays)
            if todo:
                computed = _dispatch(backend, config, [arrays[i] for i in todo])
                for index, result in zip(todo, computed):
                    results[index] = result
                    key = keys[index]
                    if key not in resolved:
                        resolved[key] = result
                        # Misses dispatched to serial/thread backends already
                        # stored themselves via estimator.fit (same process-wide
                        # cache), so only store what is still absent — process
                        # workers populate their own memory tier, not ours.
                        # (Dispatch keeps config.cache on rather than stripping
                        # it: the config is embedded in serialized payloads, so
                        # a stripped copy would break hit/cold byte-identity.)
                        if cache is not None and key not in cache:
                            cache.put(key, result.clone())
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = resolved[key].clone()
            return results
        finally:
            if owns_backend:
                backend.close()


def _dispatch(
    backend: ParallelBackend,
    config: ClusteringConfig,
    arrays: List[np.ndarray],
) -> List[ClusterResult]:
    """Run the miss jobs on ``backend``, zero-copy where it pays off.

    Shared-memory shipment only helps when matrices actually cross a
    process boundary: serial/thread backends and single-item dispatches
    (which run inline) go straight to :func:`fit_one`.
    """
    use_shared = (
        isinstance(backend, ProcessBackend)
        and len(arrays) > 1
        and shm.shared_memory_available()
    )
    if not use_shared:
        return backend.map(partial(fit_one, config), arrays)
    with shm.SharedMatrixArena() as arena:
        refs = [arena.share(array) for array in arrays]
        return backend.map(partial(_fit_one_shared, config), refs)
