"""Batch front door: cluster many matrices through one config.

:func:`cluster_many` is the first serving-shaped endpoint of the library:
give it a sequence of input matrices (independent jobs — different
windows, different markets, different scenario sweeps) and one
:class:`~repro.api.config.ClusteringConfig`, and it fans the fits out over
a :mod:`repro.parallel.scheduler` backend, returning one
:class:`~repro.api.result.ClusterResult` per input, in order.

The fan-out backend is independent of ``config.backend`` (which
parallelises *inside* one fit); with a process fan-out, keep the per-fit
config serial — nesting pools multiplies workers.  Jobs are dispatched as
``(config, matrix)`` through a module-level function, so the process
backend can pickle them, and every result object the estimators produce is
built from plain arrays/dataclasses and pickles back.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.api.config import ClusteringConfig
from repro.api.estimators import make_estimator
from repro.api.result import ClusterResult
from repro.parallel.scheduler import ParallelBackend, SerialBackend, make_backend


def fit_one(config: ClusteringConfig, matrix: np.ndarray) -> ClusterResult:
    """Fit ``config.method`` on one matrix (the unit of batch work)."""
    estimator = make_estimator(config.method, config)
    estimator.fit(matrix)
    assert estimator.result_ is not None
    return estimator.result_


def cluster_many(
    matrices: Sequence[np.ndarray],
    config: Optional[ClusteringConfig] = None,
    backend: Optional[Union[ParallelBackend, str]] = None,
    workers: Optional[int] = None,
) -> List[ClusterResult]:
    """Cluster every matrix in ``matrices`` with the same config.

    Parameters
    ----------
    matrices:
        Independent input matrices (raw series per row, or precomputed
        similarities when ``config.precomputed``).
    config:
        The shared :class:`ClusteringConfig` (defaults when ``None``).
    backend:
        Fan-out backend: a live :class:`ParallelBackend` (caller closes
        it), a name (``"serial"``/``"thread"``/``"process"`` — opened and
        closed here), or ``None`` for serial.
    workers:
        Worker count when ``backend`` is a name.

    Returns
    -------
    list of ClusterResult
        One result per input matrix, in input order.
    """
    config = config if config is not None else ClusteringConfig()
    owns_backend = False
    if backend is None:
        backend = SerialBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend, num_workers=workers)
        owns_backend = True
    try:
        return backend.map(partial(fit_one, config), list(matrices))
    finally:
        if owns_backend:
            backend.close()
