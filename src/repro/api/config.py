"""The one typed, serializable configuration surface of the library.

Every run — a CLI invocation, a harness method, a streaming tick, a batch
job — is described by a frozen :class:`ClusteringConfig`.  The dataclass
consolidates the knobs that previously lived as positional/keyword
arguments of ``tmfg_dbht``, hand-rolled CLI plumbing, and the streaming
runner's parameter copies:

* ``method`` — a registry id resolved by
  :func:`repro.api.estimators.make_estimator` (``"tmfg-dbht"``,
  ``"pmfg-dbht"``, ``"hac"``, ``"kmeans"``, ...);
* the TMFG/DBHT knobs ``prefix``, ``apsp_method``, ``kernel``,
  ``warm_start``;
* the execution knobs ``backend`` (a *name*, so the config stays
  serializable; pools are opened with :meth:`ClusteringConfig.open_backend`
  and owned by the caller) and ``workers``;
* baseline-specific knobs (``linkage``, ``seed``, ``num_restarts``,
  ``spectral_neighbors``) that are ignored by methods that do not use them.

Configs validate eagerly in ``__post_init__`` and round-trip losslessly
through ``to_dict``/``from_dict`` (and the JSON convenience wrappers), which
is what the ``repro cluster --config cfg.json`` path and the batch front
door rely on.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.parallel.kernels import resolve_kernel_name
from repro.parallel.scheduler import BACKEND_NAMES, ParallelBackend, make_backend

#: The built-in APSP methods; kept for documentation and backwards
#: compatibility.  Validation resolves against the *live* registry
#: (:func:`repro.graph.shortest_paths.available_apsp_methods`), so custom
#: methods registered with ``register_apsp_method`` are accepted too.
APSP_METHODS = ("dijkstra", "floyd", "scipy", "incremental", "landmark")
LINKAGE_NAMES = ("single", "complete", "average", "weighted")

DEFAULT_METHOD = "tmfg-dbht"


@dataclass(frozen=True)
class ClusteringConfig:
    """Immutable description of one clustering run.

    Parameters
    ----------
    method:
        Registry id of the estimator (see
        :func:`repro.api.available_estimators`).  Validated against the
        registry when the estimator is built, not here, so configs can be
        constructed without importing the estimator layer.
    num_clusters:
        Flat clusters to cut/produce.  ``None`` defers the choice: the
        hierarchical estimators still fit and expose their dendrogram, and
        the caller cuts later; the partitional ones (k-means, spectral)
        require it at ``fit`` time.
    prefix:
        TMFG prefix batch size (``1`` = exact sequential TMFG).
    apsp_method:
        APSP implementation for the DBHT, resolved against the live method
        registry (:func:`repro.graph.shortest_paths.available_apsp_methods`).
        ``"dijkstra"``/``"floyd"``/``"scipy"`` give identical distances;
        ``"incremental"`` is exact and reuses state across streaming ticks;
        ``"landmark"`` is the opt-in approximate mode — it never engages
        unless selected here.
    landmarks:
        Landmark count for ``apsp_method="landmark"`` (``None`` = the
        method's default, currently 32).  Rejected for any other
        ``apsp_method``.  Part of the cache fingerprint, so approximate
        results can never collide with exact cache entries.
    kernel:
        Hot-loop kernel name (``"python"``/``"numpy"``/any registered
        custom kernel); ``None`` uses the process-wide default.
    backend:
        Parallel-backend *name* (``"serial"``/``"thread"``/``"process"``)
        or ``None`` for the serial default.  Kept as a name so the config
        serializes; :meth:`open_backend` constructs the pool.
    workers:
        Worker count for the thread/process backend; requires such a
        backend to be selected.
    warm_start:
        Whether streaming runs replay the previous tick's TMFG decisions
        (verified per round, so results never change).
    precomputed:
        Treat the fitted matrix as a precomputed similarity matrix instead
        of raw series (one object per row).
    cache:
        Consult the content-addressed result cache (:mod:`repro.cache`)
        before fitting, keyed by this config's computation-relevant fields
        plus the input matrix's dtype/shape/bytes.  Hits return the stored
        cold fit verbatim (labels, timings, artefacts), so enabling the
        cache never changes results.  ``cluster_many`` additionally uses
        the same fingerprints to deduplicate identical jobs, and the
        streaming runner to skip ticks whose windowed correlation is
        unchanged.
    cache_dir:
        Optional directory for the persistent cache tier (entries survive
        the process; corrupt or stale files degrade to misses).  Requires
        ``cache=True``.
    linkage:
        Linkage rule for the HAC estimator.
    seed / num_restarts:
        Seeding for the k-means-family estimators.
    spectral_neighbors:
        kNN-graph neighbours for the spectral estimator (clamped to
        ``n - 1`` at fit time, as the harness always did).
    """

    method: str = DEFAULT_METHOD
    num_clusters: Optional[int] = None
    prefix: int = 1
    apsp_method: str = "dijkstra"
    landmarks: Optional[int] = None
    kernel: Optional[str] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    warm_start: bool = False
    precomputed: bool = False
    cache: bool = False
    cache_dir: Optional[str] = None
    linkage: str = "complete"
    seed: int = 0
    num_restarts: int = 3
    spectral_neighbors: int = 10

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method:
            raise ValueError("method must be a non-empty string id")
        if self.num_clusters is not None and self.num_clusters < 1:
            raise ValueError("num_clusters must be at least 1 (or None)")
        if self.prefix < 1:
            raise ValueError("prefix must be at least 1")
        from repro.graph.shortest_paths import available_apsp_methods

        valid_methods = available_apsp_methods()
        if self.apsp_method not in valid_methods:
            raise ValueError(
                f"unknown apsp_method {self.apsp_method!r}; expected one of {valid_methods}"
            )
        if self.landmarks is not None:
            if self.apsp_method != "landmark":
                raise ValueError(
                    "landmarks is set but apsp_method is "
                    f"{self.apsp_method!r}; it only applies to apsp_method='landmark'"
                )
            if self.landmarks < 2:
                raise ValueError("landmarks must be at least 2")
        if self.kernel is not None:
            resolve_kernel_name(self.kernel)
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.workers is not None:
            if self.backend in (None, "serial"):
                raise ValueError("workers has no effect without backend 'thread' or 'process'")
            if self.workers < 1:
                raise ValueError("workers must be at least 1")
        if self.cache_dir is not None and not self.cache:
            raise ValueError(
                "cache_dir is set but caching is disabled; enable cache or drop cache_dir"
            )
        if self.linkage not in LINKAGE_NAMES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; expected one of {LINKAGE_NAMES}"
            )
        if self.num_restarts < 1:
            raise ValueError("num_restarts must be at least 1")
        if self.spectral_neighbors < 1:
            raise ValueError("spectral_neighbors must be at least 1")

    # -- derivation --------------------------------------------------------

    def replace(self, **changes: Any) -> "ClusteringConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def merged(self, payload: Dict[str, Any]) -> "ClusteringConfig":
        """A copy updated from a (possibly partial) :meth:`to_dict`-style dict.

        Unlike :meth:`from_dict`, fields absent from ``payload`` keep *this*
        config's values rather than the dataclass defaults — the CLI uses
        this so a hand-written partial ``--config`` file overlays the
        subcommand's defaults instead of silently reverting them.
        """
        field_names = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(payload) - field_names)
        if unknown:
            raise ValueError(
                f"unknown ClusteringConfig keys {unknown}; valid keys: {sorted(field_names)}"
            )
        return dataclasses.replace(self, **payload)

    def open_backend(self) -> Optional[ParallelBackend]:
        """Construct the configured pool, or ``None`` for the serial default.

        The caller owns (and must ``close()``) the returned backend; the
        config itself never holds live resources.
        """
        if self.backend in (None, "serial"):
            return None
        return make_backend(self.backend, num_workers=self.workers)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict holding every field (lossless)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClusteringConfig":
        """Rebuild a config from :meth:`to_dict` output (rejects unknown keys).

        Missing fields take the dataclass defaults; to overlay a partial
        payload onto an existing config, use :meth:`merged`.
        """
        return cls().merged(payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The config as a JSON document (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusteringConfig":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("a ClusteringConfig JSON document must be an object")
        return cls.from_dict(payload)
