"""The unified result type of the estimator layer.

:class:`ClusterResult` subsumes what previously came back in three shapes —
``PipelineResult`` from ``tmfg_dbht``, ``ClassicDBHTResult`` from the
baselines, and the streaming runner's per-tick payloads: flat labels, the
per-step wall-clock decomposition, and lazy access to the heavyweight
artefacts (dendrogram, bubble tree, filtered graph) through the ``raw``
result object, which is kept verbatim so nothing the old entry points
returned is lost.

``to_dict``/``to_json`` emit the JSON-safe serving payload (labels,
timings, the originating :class:`~repro.api.config.ClusteringConfig`),
which is what the batch front door and the CLI report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.api.config import ClusteringConfig
from repro.dendrogram.node import Dendrogram


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of an extras value to JSON-safe types."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    # numpy scalars are not Python-number instances: np.bool_ is not a bool
    # subclass, np.int64/np.float32 are not int/float subclasses.
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return None


@dataclass
class ClusterResult:
    """Output of one estimator fit (or one streaming tick).

    ``labels`` is ``None`` when the config deferred the flat cut
    (``num_clusters=None`` on a hierarchical method); :meth:`cut` produces
    cuts on demand.  ``raw`` holds the method's native result object
    (``PipelineResult``, ``ClassicDBHTResult``, ``KMeansResult``, ...) so
    every intermediate artefact stays reachable without widening this
    class per method.
    """

    method: str
    config: ClusteringConfig
    labels: Optional[np.ndarray]
    step_seconds: Dict[str, float] = field(default_factory=dict)
    raw: Optional[object] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- lazy artefacts ----------------------------------------------------

    @property
    def num_clusters(self) -> Optional[int]:
        """Distinct labels in the flat clustering (``None`` before a cut)."""
        if self.labels is None:
            return None
        return int(len(np.unique(self.labels)))

    @property
    def dendrogram(self) -> Optional[Dendrogram]:
        """The method's dendrogram, if it builds one (lazy, from ``raw``)."""
        if isinstance(self.raw, Dendrogram):
            return self.raw
        dendrogram = getattr(self.raw, "dendrogram", None)
        return dendrogram if isinstance(dendrogram, Dendrogram) else None

    @property
    def bubble_tree(self) -> Optional[object]:
        """The DBHT bubble tree, for the methods that construct one."""
        tmfg = getattr(self.raw, "tmfg", None)
        if tmfg is not None and getattr(tmfg, "bubble_tree", None) is not None:
            return tmfg.bubble_tree
        return getattr(self.raw, "bubble_tree", None)

    @property
    def seconds(self) -> float:
        """Total wall-clock of the fit."""
        if "total" in self.step_seconds:
            return self.step_seconds["total"]
        return float(sum(self.step_seconds.values()))

    def cut(self, num_clusters: int) -> np.ndarray:
        """Flat clustering with ``num_clusters`` clusters (hierarchical methods)."""
        dendrogram = self.dendrogram
        if dendrogram is None:
            raise ValueError(
                f"method {self.method!r} produced no dendrogram; only its fitted "
                "labels are available"
            )
        from repro.dendrogram.cut import cut_k

        return cut_k(dendrogram, num_clusters)

    def clone(self) -> "ClusterResult":
        """A copy safe to hand to an independent caller.

        The labels array and the mutable dicts are copied so no caller can
        corrupt another's (or the cache's) view; ``raw`` — the heavyweight
        read-only artefacts — and the frozen config are shared.  Clones
        serialize byte-identically to their source.
        """
        return ClusterResult(
            method=self.method,
            config=self.config,
            labels=None if self.labels is None else self.labels.copy(),
            step_seconds=dict(self.step_seconds),
            raw=self.raw,
            extras=dict(self.extras),
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload: labels, timings, config, scalar extras.

        This is the dict behind :meth:`to_json` — every value is a plain
        JSON type, so callers (the serving layer in particular) can embed
        it directly inside a larger response envelope without a
        stringify-then-reparse round trip, and
        ``json.dumps(result.to_dict())`` is byte-identical to
        ``result.to_json()``.
        """
        return {
            "method": self.method,
            "config": self.config.to_dict(),
            "labels": None if self.labels is None else [int(l) for l in self.labels],
            "num_clusters": self.num_clusters,
            "step_seconds": {k: float(v) for k, v in self.step_seconds.items()},
            "extras": {
                key: safe
                for key, safe in (
                    (key, _json_safe(value)) for key, value in self.extras.items()
                )
                if safe is not None
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
