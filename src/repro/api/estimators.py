"""Sklearn-style estimators and the method registry.

Every clustering method in the library — the paper's TMFG+DBHT pipeline,
the PMFG/classic-DBHT baselines, HAC, k-means, spectral k-means — is
wrapped in a uniform estimator contract:

* construct with a :class:`~repro.api.config.ClusteringConfig` (or keyword
  overrides of one),
* ``fit(X)`` where ``X`` is either raw series (one object per row) or,
  with ``config.precomputed``, a similarity matrix,
* read ``labels_`` / ``result_`` afterwards, or call ``fit_predict(X)``.

Estimators are stateless between fits apart from ``result_``: refitting
with the same data reproduces the same output, and the config is frozen so
a fit can never mutate it.

The registry maps string ids to estimators so that the CLI, the harness,
and the batch front door can swap methods without touching code::

    estimator = make_estimator("hac-average", config)
    labels = estimator.fit_predict(data)

Custom methods plug in with :func:`register_method`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.api.config import ClusteringConfig
from repro.api.result import ClusterResult
from repro.datasets.similarity import (
    default_dissimilarity,
    similarity_and_dissimilarity,
)
from repro.obs.tracer import trace_span
from repro.parallel.scheduler import ParallelBackend


class NotFittedError(ValueError):
    """Raised when a fitted-only attribute is read before ``fit``."""


class ClusteringEstimator:
    """Base class: the fit/predict contract shared by every method.

    Parameters
    ----------
    config:
        The run's :class:`ClusteringConfig`; ``None`` uses the defaults.
        The estimator pins ``config.method`` to its own registry id.
    backend:
        Optional live :class:`ParallelBackend` to use instead of opening
        one from ``config.backend`` per fit.  The caller owns it; the
        estimator never closes an injected backend.
    **overrides:
        Field overrides applied to ``config`` (e.g. ``prefix=10``).
    """

    method_id: str = ""
    requires_raw_data = False

    def __init__(
        self,
        config: Optional[ClusteringConfig] = None,
        backend: Optional[ParallelBackend] = None,
        **overrides: Any,
    ) -> None:
        base = config if config is not None else ClusteringConfig()
        overrides.pop("method", None)  # the class, not the caller, names the method
        self.config = base.replace(method=self.method_id, **overrides)
        self._backend = backend
        self.result_: Optional[ClusterResult] = None

    # -- fitted attributes -------------------------------------------------

    @property
    def labels_(self) -> np.ndarray:
        """Flat labels of the last fit."""
        if self.result_ is None:
            raise NotFittedError(
                f"this {type(self).__name__} is not fitted yet; call fit(X) first"
            )
        if self.result_.labels is None:
            raise NotFittedError(
                "no flat labels: the config has num_clusters=None; set it or "
                "cut the dendrogram via result_.cut(k)"
            )
        return self.result_.labels

    # -- the contract ------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: Optional[np.ndarray] = None,
        dissimilarity: Optional[np.ndarray] = None,
        **fit_params: Any,
    ) -> "ClusteringEstimator":
        """Cluster ``X`` and store the :class:`ClusterResult` on ``result_``.

        ``dissimilarity`` optionally supplies an explicit dissimilarity
        matrix (as the functional ``tmfg_dbht(sim, dis, ...)`` signature
        allowed) instead of the default derivation; only the
        similarity-based methods accept it.

        With ``config.cache``, the content-addressed result cache is
        consulted first (keyed on the config's computation-relevant fields
        plus the input bytes); a hit stores a clone of the cached cold fit
        on ``result_`` and skips the computation entirely.  Fits carrying
        warm-start hints bypass the cache: their outputs are identical by
        construction, but their replay telemetry is tick-specific and must
        not be served for unrelated inputs.  Fits carrying an incremental
        APSP engine (``apsp_state``) bypass it too — serving a stored
        result would leave the carried engine stale for the next tick.
        """
        # Drop the previous fit up front so a failed refit can never serve
        # stale labels.
        self.result_ = None
        with trace_span("estimator.fit", method=self.method_id) as probe:
            cache = cache_key = None
            if (
                self.config.cache
                and fit_params.get("warm_start") is None
                and fit_params.get("apsp_state") is None
            ):
                from repro.cache import get_result_cache, result_cache_key

                # Key on the same float view the pipeline will cluster, so
                # int/float spellings of identical data share an entry.
                X = np.asarray(X, dtype=float)
                if dissimilarity is not None:
                    dissimilarity = np.asarray(dissimilarity, dtype=float)
                cache = get_result_cache(self.config.cache_dir)
                cache_key = result_cache_key(self.config, X, dissimilarity)
                cached = cache.get(cache_key)
                if cached is not None:
                    probe.set_attribute("cache", "hit")
                    self.result_ = cached.clone()
                    return self
            elif self.config.cache:
                probe.set_attribute("cache", "bypass")  # warm-start / apsp_state
            else:
                probe.set_attribute("cache", "off")
            start = time.perf_counter()
            data, similarity, derived_dissimilarity = self._prepare(X)
            probe.set_attribute("n", int(np.asarray(X).shape[0]))
            if dissimilarity is not None:
                if self.requires_raw_data:
                    raise ValueError(
                        f"method {self.method_id!r} operates on raw series and does not "
                        "accept a dissimilarity matrix"
                    )
                derived_dissimilarity = np.asarray(dissimilarity, dtype=float)
            backend = self._backend if self._backend is not None else self.config.open_backend()
            owns_backend = self._backend is None and backend is not None
            try:
                result = self._fit(data, similarity, derived_dissimilarity, backend, **fit_params)
            finally:
                if owns_backend:
                    backend.close()
            result.step_seconds.setdefault("total", time.perf_counter() - start)
            if cache is not None:
                probe.set_attribute("cache", "miss")
                # Store a private clone so later caller mutations of the
                # returned result can never alter what the cache serves.
                cache.put(cache_key, result.clone())
            self.result_ = result
            return self

    def fit_predict(self, X: np.ndarray, y: Optional[np.ndarray] = None, **fit_params: Any) -> np.ndarray:
        """``fit(X)`` and return the flat labels."""
        return self.fit(X, **fit_params).labels_

    # -- method-specific pieces --------------------------------------------

    def _prepare(
        self, X: np.ndarray
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        """Split the input into (raw data, similarity, dissimilarity)."""
        X = np.asarray(X, dtype=float)
        if self.requires_raw_data:
            if self.config.precomputed:
                raise ValueError(
                    f"method {self.method_id!r} operates on raw series and does not "
                    "accept a precomputed similarity matrix"
                )
            return X, None, None
        if self.config.precomputed:
            return None, X, None
        similarity, dissimilarity = similarity_and_dissimilarity(X)
        return X, similarity, dissimilarity

    def _fit(
        self,
        data: Optional[np.ndarray],
        similarity: Optional[np.ndarray],
        dissimilarity: Optional[np.ndarray],
        backend: Optional[ParallelBackend],
        **fit_params: Any,
    ) -> ClusterResult:
        raise NotImplementedError

    def _require_num_clusters(self) -> int:
        if self.config.num_clusters is None:
            raise ValueError(
                f"method {self.method_id!r} needs config.num_clusters at fit time"
            )
        return self.config.num_clusters

    def _cut_labels(self, result: ClusterResult) -> None:
        """Fill ``result.labels`` by cutting the dendrogram, if a cut was asked for."""
        if self.config.num_clusters is not None:
            result.labels = result.cut(self.config.num_clusters)


class TMFGClusterer(ClusteringEstimator):
    """The paper's pipeline: prefix-batched TMFG + TMFG-specialised DBHT.

    A thin estimator shell over :func:`repro.core.pipeline.tmfg_dbht` — the
    constructed graph, dendrogram, and labels are byte-identical to a
    direct call with the same knobs.  ``fit`` accepts an optional
    ``warm_start`` keyword carrying
    :class:`~repro.core.tmfg.WarmStartHints` from a previous build (the
    streaming runner's path); hints are verified per round, so they never
    change the output.
    """

    method_id = "tmfg-dbht"

    def _fit(self, data, similarity, dissimilarity, backend, warm_start=None, apsp_state=None):
        from repro.core.pipeline import tmfg_dbht

        pipeline = tmfg_dbht(
            similarity,
            dissimilarity,
            prefix=self.config.prefix,
            backend=backend,
            apsp_method=self.config.apsp_method,
            kernel=self.config.kernel,
            warm_start=warm_start,
            apsp_state=apsp_state,
            landmarks=self.config.landmarks,
        )
        result = ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=None,
            step_seconds=dict(pipeline.step_seconds),
            raw=pipeline,
            extras={
                "edge_weight_sum": pipeline.tmfg.edge_weight_sum(),
                "rounds": pipeline.tmfg.rounds,
                "warm_started": pipeline.tmfg.warm_started,
                "warm_rounds": pipeline.tmfg.warm_rounds,
                "tracker": pipeline.tracker,
            },
        )
        self._cut_labels(result)
        return result


class PMFGClusterer(ClusteringEstimator):
    """The PMFG-DBHT baseline: planarity-tested PMFG + the original DBHT."""

    method_id = "pmfg-dbht"

    def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
        from repro.baselines.classic_dbht import pmfg_dbht

        classic = pmfg_dbht(
            similarity, dissimilarity, kernel=self.config.kernel, backend=backend
        )
        result = ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=None,
            raw=classic,
        )
        self._cut_labels(result)
        return result


class ClassicDBHTClusterer(ClusteringEstimator):
    """SEQ-TDBHT: exact TMFG (prefix 1) + the original quadratic-work DBHT."""

    method_id = "classic-dbht"

    def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
        from repro.baselines.classic_dbht import classic_dbht
        from repro.core.tmfg import construct_tmfg

        if dissimilarity is None:
            dissimilarity = default_dissimilarity(similarity)
        tmfg_start = time.perf_counter()
        tmfg = construct_tmfg(
            similarity, prefix=1, build_bubble_tree=False, kernel=self.config.kernel
        )
        tmfg_seconds = time.perf_counter() - tmfg_start
        dbht_start = time.perf_counter()
        classic = classic_dbht(
            tmfg.graph, dissimilarity, kernel=self.config.kernel, backend=backend
        )
        dbht_seconds = time.perf_counter() - dbht_start
        result = ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=None,
            step_seconds={"tmfg": tmfg_seconds, "dbht": dbht_seconds},
            raw=classic,
            extras={"edge_weight_sum": tmfg.edge_weight_sum()},
        )
        self._cut_labels(result)
        return result


class HACClusterer(ClusteringEstimator):
    """Hierarchical agglomerative clustering (the COMP/AVG baselines).

    The linkage rule comes from ``config.linkage``; the registered ids
    ``hac-complete``/``hac-average`` (aliases ``comp``/``avg``) pin it.
    """

    method_id = "hac"

    def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
        from repro.baselines.hac import hac_dendrogram

        if dissimilarity is None:
            dissimilarity = default_dissimilarity(similarity)
        dendrogram = hac_dendrogram(dissimilarity, method=self.config.linkage)
        result = ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=None,
            raw=dendrogram,
            extras={"linkage": self.config.linkage},
        )
        self._cut_labels(result)
        return result


class KMeansClusterer(ClusteringEstimator):
    """The K-MEANS baseline: Lloyd's algorithm with k-means|| seeding."""

    method_id = "kmeans"
    requires_raw_data = True

    def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
        from repro.baselines.kmeans import kmeans

        num_clusters = self._require_num_clusters()
        fitted = kmeans(
            data,
            num_clusters,
            init="k-means||",
            seed=self.config.seed,
            num_restarts=self.config.num_restarts,
        )
        return ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=fitted.labels,
            raw=fitted,
            extras={"inertia": fitted.inertia, "iterations": fitted.iterations},
        )


class SpectralKMeansClusterer(ClusteringEstimator):
    """The K-MEANS-S baseline: kNN-Laplacian embedding + k-means."""

    method_id = "spectral"
    requires_raw_data = True

    def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
        from repro.baselines.spectral import spectral_kmeans

        num_clusters = self._require_num_clusters()
        neighbors = min(self.config.spectral_neighbors, data.shape[0] - 1)
        fitted = spectral_kmeans(
            data,
            num_clusters,
            num_neighbors=neighbors,
            seed=self.config.seed,
            num_restarts=self.config.num_restarts,
        )
        return ClusterResult(
            method=self.method_id,
            config=self.config,
            labels=fitted.labels,
            raw=fitted,
            extras={"inertia": fitted.inertia, "num_neighbors": neighbors},
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Tuple[Type[ClusteringEstimator], Dict[str, Any]]] = {}


def register_method(
    name: str,
    estimator_cls: Type[ClusteringEstimator],
    **config_overrides: Any,
) -> None:
    """Register ``estimator_cls`` under ``name`` (lower-cased).

    ``config_overrides`` are config fields the id pins (e.g.
    ``hac-average`` pins ``linkage="average"``); they win over the caller's
    config, so an id always means the same method.
    """
    _REGISTRY[name.lower()] = (estimator_cls, dict(config_overrides))


def available_estimators() -> List[str]:
    """Sorted method ids :func:`make_estimator` resolves."""
    return sorted(_REGISTRY)


def make_estimator(
    name: str,
    config: Optional[ClusteringConfig] = None,
    backend: Optional[ParallelBackend] = None,
    **overrides: Any,
) -> ClusteringEstimator:
    """Build the estimator registered under ``name``.

    ``config`` supplies the knobs (defaults when ``None``); ``overrides``
    are applied on top, and fields pinned by the id win over both.  An
    unknown id raises ``ValueError`` listing every valid id.
    """
    key = str(name).lower()
    try:
        estimator_cls, pinned = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown method id {name!r}; valid ids: {available_estimators()}"
        ) from None
    merged = {**overrides, **pinned}
    return estimator_cls(config, backend=backend, **merged)


register_method("tmfg-dbht", TMFGClusterer)
register_method("par-tdbht", TMFGClusterer)
register_method("pmfg-dbht", PMFGClusterer)
register_method("classic-dbht", ClassicDBHTClusterer)
register_method("seq-tdbht", ClassicDBHTClusterer)
register_method("hac", HACClusterer)
register_method("hac-complete", HACClusterer, linkage="complete")
register_method("comp", HACClusterer, linkage="complete")
register_method("hac-average", HACClusterer, linkage="average")
register_method("avg", HACClusterer, linkage="average")
register_method("kmeans", KMeansClusterer)
register_method("k-means", KMeansClusterer)
register_method("spectral", SpectralKMeansClusterer)
register_method("k-means-s", SpectralKMeansClusterer)
