"""``repro.obs`` — stdlib-only tracing, event logging, and exposition.

The observability subsystem for the serving stack:

* :mod:`repro.obs.tracer` — :class:`Span`/:class:`Tracer`, ambient
  ``contextvars`` propagation (:func:`trace_span`), and the HTTP header
  pair that carries a trace across the client → router → replica hops.
* :mod:`repro.obs.events` — the schema-versioned JSON-lines event log
  behind ``repro serve --trace-log`` (one line per closed span).
* :mod:`repro.obs.prometheus` — Prometheus text exposition of the
  ``/metrics`` JSON documents plus exact bucket-wise fleet merging.
* :mod:`repro.obs.traceview` — waterfall/breakdown reconstruction for
  the ``repro trace`` CLI.

Everything here is importable without numpy: the CI lint job and the
``repro trace`` / ``repro lint`` entry points run on a bare interpreter.
"""

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    TraceEventLog,
    iter_trace_events,
    load_trace_events,
    validate_event,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    merge_histogram_dicts,
    merge_metrics_documents,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ECHO_HEADER,
    TRACE_ID_HEADER,
    Span,
    Tracer,
    current_span,
    new_span_id,
    new_trace_id,
    trace_span,
    valid_trace_id,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "NOOP_SPAN",
    "PARENT_SPAN_HEADER",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "TRACE_ECHO_HEADER",
    "TRACE_ID_HEADER",
    "TraceEventLog",
    "Tracer",
    "current_span",
    "iter_trace_events",
    "load_trace_events",
    "merge_histogram_dicts",
    "merge_metrics_documents",
    "new_span_id",
    "new_trace_id",
    "render_prometheus",
    "trace_span",
    "valid_trace_id",
    "validate_event",
    "wants_prometheus",
]
