"""Prometheus text exposition for the ``/metrics`` JSON documents.

The JSON document stays the canonical wire format (the fleet router
scrapes replicas as JSON and tests diff it); this module is a pure
renderer from that document to the Prometheus text format, version
0.0.4 — ``# TYPE`` per metric, cumulative ``_bucket{le="…"}`` histogram
series in **seconds**, and a stable sort so scrapes diff cleanly.

Fleet aggregation is exact, not approximated: replica
:class:`LatencyHistogram` dicts expose their raw per-bucket counts
(``bucket_bounds_ms`` / ``bucket_counts``), so
:func:`merge_metrics_documents` sums replica histograms bucket-wise and
quantiles computed downstream are the true fleet quantiles.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional
from urllib.parse import parse_qs

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "merge_histogram_dicts",
    "merge_metrics_documents",
    "render_prometheus",
    "wants_prometheus",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: payload["latency"] sub-key -> exported histogram metric name.
_LATENCY_METRICS = {
    "request": "repro_request_latency_seconds",
    "queue_wait": "repro_queue_wait_latency_seconds",
    "batch_fit": "repro_batch_fit_latency_seconds",
}

#: payload["batching"] counters (monotone across a process lifetime).
_BATCHING_COUNTERS = (
    "batches",
    "batched_requests",
    "distinct_jobs",
    "deduped_requests",
    "rejected",
)

#: payload["cache"] counters, exported as repro_cache_<name>_total.
_CACHE_COUNTERS = ("hits", "misses", "stores", "evictions", "disk_hits", "disk_errors")


def wants_prometheus(raw_path: str, accept: Optional[str]) -> bool:
    """Content negotiation for ``/metrics``.

    ``?format=prometheus`` (or ``format=openmetrics``) wins outright;
    otherwise an ``Accept`` header asking for ``text/plain`` without
    also asking for JSON selects the text exposition.  The default stays
    JSON so existing scrapers and the fleet's replica scrape never
    change behaviour.
    """
    query = raw_path.partition("?")[2]
    if query:
        values = parse_qs(query).get("format", [])
        if any(value in ("prometheus", "openmetrics") for value in values):
            return True
        if values:
            return False
    if not accept:
        return False
    accept = accept.lower()
    return "text/plain" in accept and "application/json" not in accept


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _is_histogram_dict(value: Any) -> bool:
    return (
        isinstance(value, dict)
        and "bucket_counts" in value
        and "bucket_bounds_ms" in value
    )


def merge_histogram_dicts(histograms: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Bucket-wise sum of :meth:`LatencyHistogram.as_dict` payloads.

    All inputs must share bucket bounds (they do: every process uses
    ``DEFAULT_BUCKET_BOUNDS_MS``); mismatched bounds raise rather than
    silently mis-merge.
    """
    merged: Optional[Dict[str, Any]] = None
    for histogram in histograms:
        if merged is None:
            merged = {
                "count": int(histogram.get("count", 0)),
                "sum_ms": float(histogram.get("sum_ms", 0.0)),
                "max_ms": float(histogram.get("max_ms", 0.0)),
                "bucket_bounds_ms": list(histogram["bucket_bounds_ms"]),
                "bucket_counts": list(histogram["bucket_counts"]),
            }
            continue
        if list(histogram["bucket_bounds_ms"]) != merged["bucket_bounds_ms"]:
            raise ValueError("cannot merge histograms with different bucket bounds")
        merged["count"] += int(histogram.get("count", 0))
        merged["sum_ms"] += float(histogram.get("sum_ms", 0.0))
        merged["max_ms"] = max(merged["max_ms"], float(histogram.get("max_ms", 0.0)))
        merged["bucket_counts"] = [
            a + b for a, b in zip(merged["bucket_counts"], histogram["bucket_counts"])
        ]
    if merged is None:
        merged = {
            "count": 0,
            "sum_ms": 0.0,
            "max_ms": 0.0,
            "bucket_bounds_ms": [],
            "bucket_counts": [],
        }
    return merged


def _sum_counter_dicts(dicts: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {}
    for mapping in dicts:
        if not mapping:
            continue
        for key, value in mapping.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def merge_metrics_documents(documents: List[Dict[str, Any]]) -> Dict[str, Any]:
    """One fleet-wide ``/metrics`` document from N replica documents.

    Counters sum; histograms merge bucket-wise; gauges that only make
    sense per process (pid, uptime, version) are dropped.  Cache stats
    sum too, which over-counts when replicas share one disk tier's
    entries — the per-replica JSON document remains the place to read
    unaggregated numbers.
    """
    latency_names = sorted({name for doc in documents for name in doc.get("latency", {})})
    span_kinds = sorted({kind for doc in documents for kind in doc.get("spans", {})})
    cache_docs = [doc.get("cache") for doc in documents if doc.get("cache")]
    return {
        "replica_count": len(documents),
        "queue_depth": sum(int(doc.get("queue_depth", 0)) for doc in documents),
        "requests_total": _sum_counter_dicts(doc.get("requests_total") for doc in documents),
        "responses_total": _sum_counter_dicts(doc.get("responses_total") for doc in documents),
        "errors_total": sum(int(doc.get("errors_total", 0)) for doc in documents),
        "rejected_total": sum(int(doc.get("rejected_total", 0)) for doc in documents),
        "latency": {
            name: merge_histogram_dicts(
                doc["latency"][name]
                for doc in documents
                if name in doc.get("latency", {})
            )
            for name in latency_names
        },
        "spans": {
            kind: merge_histogram_dicts(
                doc["spans"][kind] for doc in documents if kind in doc.get("spans", {})
            )
            for kind in span_kinds
        },
        "batching": _sum_counter_dicts(doc.get("batching") for doc in documents),
        "cache": _sum_counter_dicts(cache_docs) if cache_docs else None,
    }


def _histogram_lines(
    lines: List[str],
    typed: set,
    metric: str,
    histogram: Dict[str, Any],
    labels: str = "",
) -> None:
    if metric not in typed:
        typed.add(metric)
        lines.append(f"# TYPE {metric} histogram")
    bounds = histogram.get("bucket_bounds_ms") or []
    counts = histogram.get("bucket_counts") or []
    cumulative = 0
    label_prefix = f"{labels}," if labels else ""
    for bound_ms, count in zip(bounds, counts):
        cumulative += int(count)
        le = _format_number(bound_ms / 1000.0)
        lines.append(
            f'{metric}_bucket{{{label_prefix}le="{le}"}} {cumulative}'
        )
    total = int(histogram.get("count", 0))
    lines.append(f'{metric}_bucket{{{label_prefix}le="+Inf"}} {total}')
    sum_seconds = float(histogram.get("sum_ms", 0.0)) / 1000.0
    suffix = f"{{{labels}}}" if labels else ""
    lines.append(f"{metric}_sum{suffix} {_format_number(round(sum_seconds, 9))}")
    lines.append(f"{metric}_count{suffix} {total}")


def _scalar(
    lines: List[str],
    typed: set,
    metric: str,
    metric_type: str,
    value: Any,
    labels: str = "",
) -> None:
    if metric not in typed:
        typed.add(metric)
        lines.append(f"# TYPE {metric} {metric_type}")
    suffix = f"{{{labels}}}" if labels else ""
    lines.append(f"{metric}{suffix} {_format_number(value)}")


def render_prometheus(
    payload: Dict[str, Any],
    *,
    fleet: Optional[Dict[str, Any]] = None,
    routed_per_replica: Optional[Dict[str, int]] = None,
) -> str:
    """The text exposition of one ``/metrics`` JSON document.

    ``fleet`` adds the router's own series (``repro_fleet_*``) when
    rendering the aggregated fleet endpoint; ``routed_per_replica`` adds
    the per-replica routing counter with a ``replica`` label.
    """
    lines: List[str] = []
    typed: set = set()

    if "uptime_seconds" in payload:
        _scalar(lines, typed, "repro_uptime_seconds", "gauge", payload["uptime_seconds"])
    if "draining" in payload:
        _scalar(lines, typed, "repro_draining", "gauge", 1 if payload["draining"] else 0)
    if "queue_depth" in payload:
        _scalar(lines, typed, "repro_queue_depth", "gauge", payload["queue_depth"])
    if "replica_count" in payload:
        _scalar(lines, typed, "repro_replica_count", "gauge", payload["replica_count"])

    for route, count in sorted((payload.get("requests_total") or {}).items()):
        _scalar(
            lines, typed, "repro_requests_total", "counter", count,
            f'route="{_escape_label(route)}"',
        )
    for status, count in sorted((payload.get("responses_total") or {}).items()):
        _scalar(
            lines, typed, "repro_responses_total", "counter", count,
            f'status="{_escape_label(status)}"',
        )
    if "errors_total" in payload:
        _scalar(lines, typed, "repro_errors_total", "counter", payload["errors_total"])
    if "rejected_total" in payload:
        _scalar(lines, typed, "repro_rejected_total", "counter", payload["rejected_total"])

    for name, histogram in sorted((payload.get("latency") or {}).items()):
        metric = _LATENCY_METRICS.get(name, f"repro_{name}_latency_seconds")
        if _is_histogram_dict(histogram):
            _histogram_lines(lines, typed, metric, histogram)
    for kind, histogram in sorted((payload.get("spans") or {}).items()):
        if _is_histogram_dict(histogram):
            _histogram_lines(
                lines, typed, "repro_span_duration_seconds", histogram,
                f'kind="{_escape_label(kind)}"',
            )

    batching = payload.get("batching") or {}
    for name in _BATCHING_COUNTERS:
        if name in batching:
            _scalar(lines, typed, f"repro_batch_{name}_total", "counter", batching[name])
    if "largest_batch" in batching:
        _scalar(lines, typed, "repro_largest_batch", "gauge", batching["largest_batch"])

    cache = payload.get("cache")
    if cache:
        for name in _CACHE_COUNTERS:
            if name in cache:
                _scalar(lines, typed, f"repro_cache_{name}_total", "counter", cache[name])
        if "hit_rate" in cache:
            _scalar(lines, typed, "repro_cache_hit_rate", "gauge", round(cache["hit_rate"], 6))

    if fleet:
        _scalar(lines, typed, "repro_fleet_uptime_seconds", "gauge", fleet.get("uptime_seconds", 0.0))
        _scalar(lines, typed, "repro_fleet_draining", "gauge", 1 if fleet.get("draining") else 0)
        _scalar(lines, typed, "repro_fleet_workers", "gauge", fleet.get("workers", 0))
        _scalar(lines, typed, "repro_fleet_ready_replicas", "gauge", fleet.get("ready_replicas", 0))
        for name in ("restarts_total", "failovers_total", "proxy_errors_total", "unrouted_total"):
            _scalar(lines, typed, f"repro_fleet_{name}", "counter", fleet.get(name, 0))
        for status, count in sorted((fleet.get("responses_total") or {}).items()):
            _scalar(
                lines, typed, "repro_fleet_responses_total", "counter", count,
                f'status="{_escape_label(status)}"',
            )
    if routed_per_replica:
        for replica_id, count in sorted(routed_per_replica.items()):
            _scalar(
                lines, typed, "repro_fleet_routed_total", "counter", count,
                f'replica="{_escape_label(replica_id)}"',
            )

    return "\n".join(lines) + "\n"
