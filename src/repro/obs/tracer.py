"""Spans, tracers, and ambient context propagation.

The tracing model is deliberately small: a :class:`Span` is one timed
operation (monotonic-clock duration, wall-clock start for waterfall
ordering) carrying a ``trace_id`` shared by every span in one request, a
unique ``span_id``, an optional ``parent_id``, free-form attributes, and
an error flag.  A :class:`Tracer` creates spans and fans each closed
span out to its sinks (the JSON-lines event log, the per-kind latency
histograms, per-trace collectors for the response ``trace`` block).

Propagation is ambient: entering a span as a context manager installs it
in a :mod:`contextvars` variable, so library code deep in the stack —
``estimators.fit``, ``cluster_many``, the result cache, the APSP kernel
dispatch — opens children via :func:`trace_span` without any signature
churn.  Crossing a thread hop (``loop.run_in_executor``) works by
running the callable inside ``contextvars.copy_context()``; see
``ClusteringServer._run_batch``.

Zero-cost-when-off is load-bearing: with no ambient span active,
:func:`trace_span` returns the shared :data:`NOOP_SPAN` singleton — no
object is allocated, every method on it is a no-op — so untraced
requests pay only a ``ContextVar.get`` per instrumentation site and
responses stay byte-identical.

Across HTTP hops the trace context rides in two headers
(:data:`TRACE_ID_HEADER` / :data:`PARENT_SPAN_HEADER`); a client adds
:data:`TRACE_ECHO_HEADER` to ask the server to return the collected
spans in the response envelope.
"""

from __future__ import annotations

import contextvars
import os
import random
import re
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "NOOP_SPAN",
    "PARENT_SPAN_HEADER",
    "Span",
    "TRACE_ECHO_HEADER",
    "TRACE_ID_HEADER",
    "Tracer",
    "current_span",
    "new_span_id",
    "new_trace_id",
    "trace_span",
    "valid_trace_id",
]

#: Version stamped into every emitted event line; bump on breaking
#: changes to the event shape so `repro trace` can reject mixed logs.
EVENT_SCHEMA_VERSION = 1

#: Canonical (lowercase) header names; `httpio.Request` lowercases
#: incoming header keys, so lookups use these directly.
TRACE_ID_HEADER = "x-repro-trace-id"
PARENT_SPAN_HEADER = "x-repro-parent-span"
TRACE_ECHO_HEADER = "x-repro-trace-echo"

_ID_PATTERN = re.compile(r"[0-9a-fA-F][0-9a-fA-F-]{0,63}")

#: The ambient span for the current execution context (task or thread).
_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_current_span", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-digit span id (unique within a trace)."""
    return os.urandom(4).hex()


def valid_trace_id(value: Optional[str]) -> Optional[str]:
    """``value`` if it is a plausible wire-carried id, else ``None``.

    Accepts 1–64 hex-or-dash characters so foreign tracers' ids survive
    the hop; anything else (empty, spaces, control bytes) is dropped
    rather than propagated into log lines.
    """
    if not value:
        return None
    if _ID_PATTERN.fullmatch(value) is None:
        return None
    return value.lower()


def current_span() -> Optional["Span"]:
    """The ambient span for this context, or ``None`` when untraced."""
    return _current_span.get()


def trace_span(kind: str, **attributes: Any) -> "Span":
    """A child of the ambient span, or :data:`NOOP_SPAN` when untraced.

    This is the one call library code makes.  The fast path — no active
    trace — is a ``ContextVar.get`` and a ``None`` check; no span object
    is allocated and the returned singleton swallows every method call.
    """
    parent = _current_span.get()
    if parent is None:
        return NOOP_SPAN
    return parent.tracer.start_span(
        kind,
        trace_id=parent.trace_id,
        parent_id=parent.span_id,
        **attributes,
    )


class Span:
    """One timed operation within a trace.

    Use as a context manager (installs itself as the ambient span so
    nested :func:`trace_span` calls become children), or call
    :meth:`end` explicitly.  ``duration_seconds`` comes from the
    monotonic clock; ``started_at`` is wall-clock and only orders the
    waterfall.
    """

    __slots__ = (
        "tracer",
        "kind",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "started_at",
        "duration_seconds",
        "error",
        "_start_clock",
        "_token",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        kind: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attributes = attributes
        self.started_at = time.time()
        self.duration_seconds = 0.0
        self.error = False
        self._start_clock = time.perf_counter()
        self._token: Optional[contextvars.Token] = None
        self._ended = False

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_error(self, message: Optional[str] = None) -> None:
        self.error = True
        if message is not None:
            self.attributes["error_message"] = message

    def child(self, kind: str, **attributes: Any) -> "Span":
        """A new span in this trace parented to this one."""
        return self.tracer.start_span(
            kind, trace_id=self.trace_id, parent_id=self.span_id, **attributes
        )

    def end(self) -> None:
        """Close the span (idempotent) and hand it to the tracer's sinks."""
        if self._ended:
            return
        self._ended = True
        self.duration_seconds = time.perf_counter() - self._start_clock
        self.tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned event form of this span (one log line)."""
        return {
            "schema": EVENT_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start_unix": round(self.started_at, 6),
            "duration_ms": round(self.duration_seconds * 1000.0, 6),
            "error": self.error,
            "pid": os.getpid(),
            "attributes": self.attributes,
        }

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.error = True
            self.attributes.setdefault("exception", exc_type.__name__)
        self.end()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(kind={self.kind!r}, trace={self.trace_id}, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class _NoopSpan:
    """The do-nothing span returned when no trace is active.

    A single shared instance (:data:`NOOP_SPAN`): identity-comparable,
    never installed in the context variable, accepts and discards every
    span operation so instrumentation sites need no ``if traced:``
    branches.
    """

    __slots__ = ()

    kind = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    error = False
    duration_seconds = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_error(self, message: Optional[str] = None) -> None:
        pass

    def child(self, kind: str, **attributes: Any) -> "_NoopSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOOP_SPAN"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and fans closed spans out to sinks.

    Sinks are callables taking the closed :class:`Span`; they run on
    whichever thread closed the span, so each sink handles its own
    locking (the event log and the metrics registry both do).  Per-trace
    collectors back the opt-in response ``trace`` block: a trace id is
    registered with :meth:`collect` before the request runs and drained
    (or discarded) afterwards, so unechoed traffic never accumulates.
    """

    def __init__(self, sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be within [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self._sinks: List[Callable[[Span], None]] = []
        self._collectors: Dict[str, List[Dict[str, Any]]] = {}
        self._random = random.Random()

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        self._sinks.append(sink)

    def should_sample(self) -> bool:
        """One sampling decision for a server-initiated trace."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._random.random() < self.sample_rate

    def start_span(
        self,
        kind: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """A live span; close it with ``with``, ``.end()``, or return it.

        With no explicit ids the span continues the ambient trace when
        one is active, else roots a fresh trace.
        """
        if trace_id is None:
            ambient = _current_span.get()
            if ambient is not None:
                trace_id = ambient.trace_id
                if parent_id is None:
                    parent_id = ambient.span_id
            else:
                trace_id = new_trace_id()
        return Span(self, kind, trace_id, parent_id, dict(attributes))

    def emit(
        self,
        kind: str,
        *,
        trace_id: str,
        parent_id: Optional[str] = None,
        duration_seconds: float = 0.0,
        started_at: Optional[float] = None,
        error: bool = False,
        **attributes: Any,
    ) -> None:
        """Record an already-measured span in one shot.

        Used where the timing exists before the trace structure does —
        e.g. the batcher synthesises per-member queue-wait spans from
        enqueue timestamps when a batch resolves.
        """
        span = Span(self, kind, trace_id, parent_id, dict(attributes))
        if started_at is not None:
            span.started_at = started_at
        span.duration_seconds = float(duration_seconds)
        span.error = error
        span._ended = True
        self._finish(span)

    # -- per-trace collection (the response `trace` block) --------------

    def collect(self, trace_id: str) -> None:
        """Start buffering closed spans for ``trace_id``."""
        self._collectors.setdefault(trace_id, [])

    def drain(self, trace_id: str) -> List[Dict[str, Any]]:
        """Remove and return the buffered spans for ``trace_id``."""
        return self._collectors.pop(trace_id, [])

    def discard(self, trace_id: str) -> None:
        """Drop a collector without reading it (error-path cleanup)."""
        self._collectors.pop(trace_id, None)

    def _finish(self, span: Span) -> None:
        if self._collectors:
            bucket = self._collectors.get(span.trace_id)
            if bucket is not None:
                bucket.append(span.to_dict())
        for sink in self._sinks:
            sink(span)
