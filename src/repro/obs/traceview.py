"""Trace reconstruction and rendering for ``repro trace``.

Takes the flat JSON-lines event stream (possibly interleaved from the
router and every replica appending to one shared ``--trace-log``) and
rebuilds per-trace span trees, prints waterfalls with proportional
duration bars, and summarises durations per span kind.  Pure functions
over plain dicts — the CLI's ``--json`` mode reuses the same structures
verbatim.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = [
    "format_kind_table",
    "format_waterfall",
    "group_traces",
    "kind_breakdown",
    "trace_summary",
]


def group_traces(events: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Events bucketed by trace id, each bucket ordered by start time;
    traces ordered oldest-first by their earliest span."""
    buckets: Dict[str, List[Dict[str, Any]]] = {}
    for event in events:
        buckets.setdefault(event["trace_id"], []).append(event)
    for spans in buckets.values():
        spans.sort(key=lambda event: event["start_unix"])
    return dict(
        sorted(buckets.items(), key=lambda item: item[1][0]["start_unix"])
    )


def trace_summary(trace_id: str, spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Headline numbers for one trace."""
    start = min(span["start_unix"] for span in spans)
    end = max(span["start_unix"] + span["duration_ms"] / 1000.0 for span in spans)
    roots = [span for span in spans if _parent_of(span, spans) is None]
    return {
        "trace_id": trace_id,
        "spans": len(spans),
        "errors": sum(1 for span in spans if span["error"]),
        "started_unix": round(start, 6),
        "duration_ms": round((end - start) * 1000.0, 3),
        "root_kinds": [span["kind"] for span in roots],
        "pids": sorted({span["pid"] for span in spans}),
    }


def _parent_of(
    span: Dict[str, Any], spans: List[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    parent_id = span.get("parent_id")
    if parent_id is None:
        return None
    for candidate in spans:
        if candidate["span_id"] == parent_id:
            return candidate
    return None  # orphan: parent was sampled out or logged elsewhere


def _children_index(spans: List[Dict[str, Any]]) -> Dict[Optional[str], List[Dict[str, Any]]]:
    span_ids = {span["span_id"] for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {None: []}
    for span in spans:
        parent_id = span.get("parent_id")
        if parent_id not in span_ids:
            parent_id = None  # orphans render at the root level
        children.setdefault(parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda event: event["start_unix"])
    return children


def format_waterfall(
    trace_id: str, spans: List[Dict[str, Any]], *, bar_width: int = 32
) -> str:
    """An indented span tree with offset/width bars over the trace window.

    Bar position is the span's wall-clock offset inside the trace; bar
    length is its share of the total duration (minimum one cell so
    microsecond spans stay visible).
    """
    summary = trace_summary(trace_id, spans)
    trace_start = summary["started_unix"]
    total_seconds = max(summary["duration_ms"] / 1000.0, 1e-9)
    children = _children_index(spans)
    started = time.strftime(
        "%Y-%m-%dT%H:%M:%S", time.gmtime(summary["started_unix"])
    )
    lines = [
        f"trace {trace_id}  spans={summary['spans']}  "
        f"errors={summary['errors']}  duration={summary['duration_ms']:.1f}ms  "
        f"started={started}Z"
    ]
    label_width = max(
        (len(span["kind"]) + 2 * _depth(span, spans) for span in spans), default=0
    )

    def render(span: Dict[str, Any], depth: int) -> None:
        offset = (span["start_unix"] - trace_start) / total_seconds
        share = (span["duration_ms"] / 1000.0) / total_seconds
        lead = max(0, min(bar_width - 1, int(round(offset * bar_width))))
        body = max(1, min(bar_width - lead, int(round(share * bar_width))))
        bar = " " * lead + "#" * body + " " * (bar_width - lead - body)
        label = "  " * depth + span["kind"]
        flag = " !" if span["error"] else ""
        lines.append(
            f"  {label:<{label_width}}  {span['duration_ms']:>9.2f}ms  |{bar}|"
            f"  pid={span['pid']}{flag}"
        )
        for child in children.get(span["span_id"], []):
            render(child, depth + 1)

    for root in children[None]:
        render(root, 0)
    return "\n".join(lines)


def _depth(span: Dict[str, Any], spans: List[Dict[str, Any]]) -> int:
    depth = 0
    current = span
    while depth < len(spans):
        current = _parent_of(current, spans)
        if current is None:
            return depth
        depth += 1
    return depth


def kind_breakdown(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-span-kind duration statistics over the whole event stream."""
    by_kind: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for event in events:
        by_kind.setdefault(event["kind"], []).append(float(event["duration_ms"]))
        if event["error"]:
            errors[event["kind"]] = errors.get(event["kind"], 0) + 1
    rows = []
    for kind, durations in sorted(by_kind.items()):
        ordered = sorted(durations)
        rows.append(
            {
                "kind": kind,
                "count": len(ordered),
                "errors": errors.get(kind, 0),
                "total_ms": round(sum(ordered), 3),
                "mean_ms": round(sum(ordered) / len(ordered), 3),
                "p95_ms": round(ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))], 3),
                "max_ms": round(ordered[-1], 3),
            }
        )
    rows.sort(key=lambda row: row["total_ms"], reverse=True)
    return rows


def format_kind_table(rows: List[Dict[str, Any]]) -> str:
    """The per-kind breakdown as an aligned text table."""
    if not rows:
        return "no spans"
    header = f"{'kind':<24} {'count':>7} {'errors':>7} {'mean_ms':>10} {'p95_ms':>10} {'max_ms':>10} {'total_ms':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['kind']:<24} {row['count']:>7} {row['errors']:>7} "
            f"{row['mean_ms']:>10.3f} {row['p95_ms']:>10.3f} "
            f"{row['max_ms']:>10.3f} {row['total_ms']:>12.3f}"
        )
    return "\n".join(lines)
