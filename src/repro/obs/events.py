"""The structured JSON-lines trace event log.

One line per closed span, shaped by :meth:`Span.to_dict` and pinned by
``EVENT_SCHEMA_VERSION``.  The log is append-only and every event is a
single ``write()`` + ``flush()`` of one ``\\n``-terminated line, so a
fleet — router plus N replica processes — can share one ``--trace-log``
file: POSIX append-mode writes of small lines land whole, and each line
carries its writer's ``pid``.  A failing disk degrades to a counter
(``dropped``), never to a serving error.

Readers use :func:`iter_trace_events` / :func:`load_trace_events`, which
validate each line against the schema (:func:`validate_event`) so CI and
``repro trace`` both reject malformed logs loudly.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.tracer import EVENT_SCHEMA_VERSION, Span

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "TraceEventLog",
    "iter_trace_events",
    "load_trace_events",
    "validate_event",
]

#: field name -> accepted types; ``parent_id`` may also be None.
_EVENT_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "trace_id": (str,),
    "span_id": (str,),
    "parent_id": (str, type(None)),
    "kind": (str,),
    "start_unix": (int, float),
    "duration_ms": (int, float),
    "error": (bool,),
    "pid": (int,),
    "attributes": (dict,),
}


def validate_event(event: Any) -> Dict[str, Any]:
    """``event`` back, or :class:`ValueError` naming the schema breach."""
    if not isinstance(event, dict):
        raise ValueError(f"trace event must be an object, got {type(event).__name__}")
    for field, types in _EVENT_FIELDS.items():
        if field not in event:
            raise ValueError(f"trace event missing field {field!r}")
        if not isinstance(event[field], types):
            raise ValueError(
                f"trace event field {field!r} has type "
                f"{type(event[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if event["schema"] != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"trace event schema {event['schema']} unsupported "
            f"(reader understands {EVENT_SCHEMA_VERSION})"
        )
    if not event["kind"]:
        raise ValueError("trace event has an empty kind")
    return event


class TraceEventLog:
    """Append-mode JSON-lines sink for closed spans.

    ``rate_limit`` (events/second, per process) bounds the log's write
    amplification under traffic spikes: events beyond the budget within
    one wall-clock second are counted in ``dropped`` instead of written.
    Trace-level sampling lives on the server (whole traces in or out);
    this limit is the belt-and-braces cap behind it.
    """

    def __init__(self, path: str, *, rate_limit: Optional[float] = None) -> None:
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        self.path = path
        self.rate_limit = rate_limit
        self.written = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = None
        self._window = 0
        self._window_count = 0

    def record(self, span: Span) -> None:
        """Tracer-sink entry point: one span becomes one log line."""
        self.write_event(span.to_dict())

    def write_event(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self.rate_limit is not None:
                window = int(time.time())
                if window != self._window:
                    self._window = window
                    self._window_count = 0
                if self._window_count >= self.rate_limit:
                    self.dropped += 1
                    return
                self._window_count += 1
            try:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                self._file.write(line)
                self._file.flush()
            except OSError:
                self.dropped += 1
                return
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def iter_trace_events(path: str) -> Iterator[Dict[str, Any]]:
    """Validated events from one log file, in file order.

    Raises :class:`ValueError` on the first malformed or wrong-schema
    line (with its line number) — a trace log that fails to parse is a
    bug, not noise to skip.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {error}") from error
            try:
                yield validate_event(event)
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from error


def load_trace_events(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """All events from ``paths`` (strings or one string), validated."""
    if isinstance(paths, str):
        paths = [paths]
    events: List[Dict[str, Any]] = []
    for path in paths:
        events.extend(iter_trace_events(path))
    return events
