"""Streaming rolling-window clustering.

A fourth layer over ``datasets``/``core``/``parallel``: slide a Pearson
correlation window across a return stream with O(assets^2) incremental
updates (:mod:`repro.streaming.rolling`), rebuild the TMFG per tick with
verified warm starts from the previous tick
(:mod:`repro.streaming.warm_start`), and track cluster drift between
consecutive ticks (:mod:`repro.streaming.runner`).  Warm starts are verified per round, so
on any given similarity matrix a warm-started build is *identical* to a
cold build; the incremental correlation matrix itself matches a
from-scratch recomputation to ~1e-12, which in principle can flip an
exactly-tied TMFG decision but leaves the clustering unchanged on any
non-degenerate stream (the slow-suite equivalence tests pin this end to
end over 20+ ticks).
"""

from repro.streaming.rolling import RollingCorrelation
from repro.streaming.runner import StreamingPipeline, StreamingResult, TickResult
from repro.streaming.warm_start import TMFGWarmStarter, WarmStartStats

__all__ = [
    "RollingCorrelation",
    "StreamingPipeline",
    "StreamingResult",
    "TickResult",
    "TMFGWarmStarter",
    "WarmStartStats",
]
