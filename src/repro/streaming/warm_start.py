"""TMFG warm-start management across streaming ticks.

:class:`TMFGWarmStarter` keeps the previous tick's TMFG decisions and
serves them as :class:`~repro.core.tmfg.WarmStartHints` for the next tick's
build.  The hints are *candidates*, not commands: ``construct_tmfg``
verifies every replayed round against its gain table (see
:mod:`repro.core.tmfg`), so a warm-started build is always identical to a
cold build on the same similarity matrix.  The starter also aggregates the
replay statistics — how many builds replayed fully and what fraction of
rounds the hints carried — which the streaming runner and the benchmark
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.tmfg import TMFGResult, WarmStartHints


@dataclass
class WarmStartStats:
    """Aggregated replay statistics over a stream of TMFG builds."""

    builds: int = 0
    warm_attempts: int = 0
    full_replays: int = 0
    replayed_rounds: int = 0
    total_rounds: int = 0

    @property
    def full_replay_rate(self) -> float:
        """Fraction of warm-attempted builds that replayed every round."""
        if self.warm_attempts == 0:
            return 0.0
        return self.full_replays / self.warm_attempts

    @property
    def round_replay_rate(self) -> float:
        """Fraction of warm-attempted rounds the hints carried."""
        if self.total_rounds == 0:
            return 0.0
        return self.replayed_rounds / self.total_rounds


@dataclass
class TMFGWarmStarter:
    """Rolls TMFG warm-start hints forward from tick to tick.

    ``enabled=False`` turns the starter into a no-op (:meth:`hints` always
    ``None``), which is how the streaming pipeline implements cold mode
    without branching at every call site.
    """

    enabled: bool = True
    stats: WarmStartStats = field(default_factory=WarmStartStats)
    _hints: Optional[WarmStartHints] = field(default=None, repr=False)

    def hints(self) -> Optional[WarmStartHints]:
        """Hints for the next build (``None`` when disabled or on the first tick)."""
        return self._hints if self.enabled else None

    def update(self, result: TMFGResult) -> None:
        """Record a finished build and roll its decisions into the next hints."""
        self.stats.builds += 1
        if self.enabled and self._hints is not None:
            self.stats.warm_attempts += 1
            self.stats.replayed_rounds += result.warm_rounds
            self.stats.total_rounds += result.rounds
            if result.warm_started:
                self.stats.full_replays += 1
        if self.enabled:
            self._hints = result.warm_start_hints()

    def reset(self) -> None:
        """Drop the stored hints (the next build runs cold)."""
        self._hints = None
