"""Streaming TMFG+DBHT pipeline over a rolling correlation window.

:class:`StreamingPipeline` slides a window of ``window`` observations over
a return stream in steps of ``hop``, and per tick

1. advances the :class:`~repro.streaming.rolling.RollingCorrelation`
   accumulator by ``hop`` observations (``O(hop * n^2)`` instead of a full
   recomputation),
2. fits a :class:`~repro.api.estimators.TMFGClusterer` (driven by one
   :class:`~repro.api.config.ClusteringConfig`) on the window's similarity
   matrix through the existing kernel registry and
   :class:`~repro.parallel.scheduler.ParallelBackend`, warm-starting the
   TMFG from the previous tick's decisions
   (:class:`~repro.streaming.warm_start.TMFGWarmStarter`), and
3. cuts the dendrogram and scores cluster drift against the previous tick
   (ARI/AMI from :mod:`repro.metrics`).

Warm starts are verified per round, so every tick's flat cut is identical
to a cold ``tmfg_dbht`` run on the same similarity matrix; ``warm=False``
runs the cold path for comparison (see ``benchmarks/bench_streaming.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.api.config import ClusteringConfig
from repro.api.estimators import TMFGClusterer
from repro.api.result import ClusterResult
from repro.cache import matrix_fingerprint
from repro.datasets.similarity import correlation_matrix
from repro.metrics.ami import adjusted_mutual_information
from repro.metrics.ari import adjusted_rand_index
from repro.parallel.scheduler import ParallelBackend
from repro.streaming.rolling import RollingCorrelation
from repro.streaming.warm_start import TMFGWarmStarter, WarmStartStats


@dataclass
class TickResult:
    """One streaming tick: the window, its clustering, and its timings.

    ``step_seconds`` holds the per-phase wall-clock decomposition:
    ``"similarity"`` (rolling update + matrix emission) plus the pipeline's
    ``"tmfg"``/``"apsp"``/``"bubble-tree"``/``"hierarchy"`` phases and the
    ``"total"``.  ``drift_ari``/``drift_ami`` compare this tick's flat cut
    with the previous tick's (``None`` on the first tick).

    ``reused`` marks a short-circuited tick: the window's raw bytes
    matched the previous tick's exactly (a flat market / repeated
    window), so the previous clustering was reused without a fit — an
    exact reuse in cold mode, and within the warm path's documented
    rounding tolerance in warm mode.
    Reused ticks carry the originating fit's ``warm_started``/
    ``warm_rounds``/``rounds`` telemetry and their own wall-clock.
    """

    tick: int
    start: int
    stop: int
    labels: np.ndarray
    num_clusters: int
    warm_started: bool
    warm_rounds: int
    rounds: int
    step_seconds: Dict[str, float]
    drift_ari: Optional[float] = None
    drift_ami: Optional[float] = None
    reused: bool = False

    @property
    def seconds(self) -> float:
        return self.step_seconds["total"]

    def to_cluster_result(self, config: ClusteringConfig) -> ClusterResult:
        """This tick as a unified :class:`~repro.api.result.ClusterResult`.

        Carries the labels, timings, and warm-start telemetry; the heavy
        per-tick artefacts (graph, shortest paths) are deliberately not
        retained across ticks, so ``raw`` is ``None``.
        """
        return ClusterResult(
            method=config.method,
            config=config,
            labels=self.labels,
            step_seconds=dict(self.step_seconds),
            extras={
                "tick": self.tick,
                "start": self.start,
                "stop": self.stop,
                "warm_started": self.warm_started,
                "warm_rounds": self.warm_rounds,
                "rounds": self.rounds,
                "drift_ari": self.drift_ari,
                "drift_ami": self.drift_ami,
                "reused": self.reused,
            },
        )


@dataclass
class StreamingResult:
    """All ticks of one streaming run plus aggregate statistics."""

    ticks: List[TickResult]
    window: int
    hop: int
    num_clusters: int
    warm: bool
    warm_stats: WarmStartStats = field(default_factory=WarmStartStats)
    #: Row-reuse counters of the per-stream incremental APSP engine
    #: (``None`` unless ``config.apsp_method == "incremental"``).
    apsp_stats: Optional[Dict[str, float]] = None

    @property
    def num_ticks(self) -> int:
        return len(self.ticks)

    @property
    def reused_ticks(self) -> int:
        """Ticks short-circuited because the window's bytes were unchanged."""
        return sum(1 for tick in self.ticks if tick.reused)

    @property
    def labels(self) -> Optional[np.ndarray]:
        """The final tick's flat labels (``None`` when no tick ran)."""
        return self.ticks[-1].labels if self.ticks else None

    def mean_step_seconds(self) -> Dict[str, float]:
        """Per-phase wall-clock means over all ticks.

        Reused (short-circuited) ticks have no fit phases; they contribute
        0 to those phases' means, which keeps the means honest about the
        actual per-tick cost of the stream.
        """
        if not self.ticks:
            return {}
        keys: Dict[str, None] = {}
        for tick in self.ticks:
            for key in tick.step_seconds:
                keys.setdefault(key)
        return {
            key: float(np.mean([tick.step_seconds.get(key, 0.0) for tick in self.ticks]))
            for key in keys
        }

    def mean_tick_seconds(self) -> float:
        return self.mean_step_seconds().get("total", 0.0)

    def mean_drift_ari(self) -> Optional[float]:
        values = [tick.drift_ari for tick in self.ticks if tick.drift_ari is not None]
        return float(np.mean(values)) if values else None

    def mean_drift_ami(self) -> Optional[float]:
        values = [tick.drift_ami for tick in self.ticks if tick.drift_ami is not None]
        return float(np.mean(values)) if values else None


class StreamingPipeline:
    """Rolling-window TMFG+DBHT clustering of a return stream.

    Parameters
    ----------
    returns:
        ``(num_assets, num_steps)`` matrix, one time series per row (e.g.
        detrended log-returns).  Columns are consumed in order.
    window:
        Observations per correlation window (must fit in the stream).
    hop:
        Observations the window advances per tick.
    num_clusters:
        Flat clusters cut from each tick's dendrogram.
    prefix:
        TMFG prefix size (``1`` = exact sequential TMFG, the default).
    warm_start:
        ``True`` (default) runs warm ticks: the similarity matrix is
        updated incrementally and the TMFG replays the previous tick's
        decisions under per-round verification.  ``False`` runs the cold
        rebuild baseline: the window's correlation is recomputed from
        scratch and the TMFG builds without hints.  Cuts agree up to the
        incremental update's float rounding (~1e-12 on the correlations);
        only the wall-clock differs (see ``benchmarks/bench_streaming.py``).
    kernel / backend / apsp_method:
        Forwarded to the per-tick pipeline run.
    max_ticks:
        Optional cap on the number of ticks to run.
    refresh_every:
        Forwarded to :class:`RollingCorrelation` (drift-guard cadence).
    config:
        Optional :class:`~repro.api.config.ClusteringConfig` supplying
        ``num_clusters``/``prefix``/``warm_start``/``kernel``/
        ``apsp_method`` in one serializable object (the CLI's path).  When
        given, those individual keyword arguments are ignored; ``backend``
        (a live pool) is still passed separately.
    """

    def __init__(
        self,
        returns: np.ndarray,
        window: int,
        hop: int = 1,
        num_clusters: int = 4,
        prefix: int = 1,
        warm_start: bool = True,
        kernel: Optional[str] = None,
        backend: Optional[ParallelBackend] = None,
        apsp_method: str = "dijkstra",
        max_ticks: Optional[int] = None,
        refresh_every: Optional[int] = 256,
        config: Optional[ClusteringConfig] = None,
    ) -> None:
        returns = np.asarray(returns, dtype=float)
        if returns.ndim != 2:
            raise ValueError("returns must be a 2-D (assets x time) matrix")
        num_assets, num_steps = returns.shape
        if num_assets < 4:
            raise ValueError("streaming clustering needs at least 4 assets")
        if window < 2:
            raise ValueError("window must hold at least 2 observations")
        if window > num_steps:
            raise ValueError(
                f"window ({window}) exceeds the stream length ({num_steps})"
            )
        if hop < 1:
            raise ValueError("hop must be at least 1")
        if config is None:
            config = ClusteringConfig(
                method="tmfg-dbht",
                num_clusters=num_clusters,
                prefix=prefix,
                warm_start=warm_start,
                kernel=kernel,
                apsp_method=apsp_method,
            )
        # Ticks cluster the window's correlation matrix directly.
        self.config = config.replace(method="tmfg-dbht", precomputed=True)
        if self.config.num_clusters is None or self.config.num_clusters < 1:
            raise ValueError("num_clusters must be at least 1")
        if max_ticks is not None and max_ticks < 1:
            raise ValueError("max_ticks must be at least 1 (or None)")
        self.returns = returns
        self.window = window
        self.hop = hop
        self.backend = backend
        self.max_ticks = max_ticks
        self.refresh_every = refresh_every

    @property
    def num_clusters(self) -> int:
        return self.config.num_clusters

    @property
    def prefix(self) -> int:
        return self.config.prefix

    @property
    def warm(self) -> bool:
        return self.config.warm_start

    @property
    def kernel(self) -> Optional[str]:
        return self.config.kernel

    @property
    def apsp_method(self) -> str:
        return self.config.apsp_method

    @property
    def num_ticks(self) -> int:
        """Ticks the stream supports (before any ``max_ticks`` cap)."""
        num_steps = self.returns.shape[1]
        available = 1 + (num_steps - self.window) // self.hop
        if self.max_ticks is not None:
            return min(available, self.max_ticks)
        return available

    def iter_ticks(self) -> Iterator[TickResult]:
        """Run the stream, yielding one :class:`TickResult` per tick."""
        num_assets, num_steps = self.returns.shape
        rolling = RollingCorrelation(
            num_assets,
            self.window,
            refresh_every=self.refresh_every,
            track_moments=self.warm,
        )
        starter = TMFGWarmStarter(enabled=self.warm)
        self._warm_stats = starter.stats
        # One incremental-APSP engine per stream: each tick's DBHT repairs
        # the previous tick's distance matrix instead of recomputing it.
        # Exactness is unconditional (row repair is byte-identical to cold
        # dijkstra), so this composes with warm starts and the short-circuit.
        apsp_engine = None
        if self.config.apsp_method == "incremental":
            from repro.graph.incremental_apsp import IncrementalAPSP

            apsp_engine = IncrementalAPSP()
        self._apsp_engine = apsp_engine
        # One backend for the whole stream: an injected pool is reused as-is;
        # a config-named pool is opened here once and closed when the
        # generator finishes (estimators never open per-tick pools).
        backend = self.backend
        owns_backend = False
        if backend is None:
            backend = self.config.open_backend()
            owns_backend = backend is not None
        estimator = TMFGClusterer(self.config, backend=backend)
        previous_labels: Optional[np.ndarray] = None
        # Tick short-circuit (behind config.cache): when the window's raw
        # bytes did not change since the previous tick — a flat market, a
        # repeated window — the previous clustering is reused without a
        # fit.  The fingerprint is taken over the window *data*, not the
        # derived correlation: in warm mode the incremental correlation is
        # path-dependent (evicting and re-adding identical columns drifts
        # the running sums ~1e-12), so byte-equality of the correlation
        # essentially never holds even for identical windows.  Cold-mode
        # reuse is exact (the correlation is a pure function of the
        # window); warm-mode reuse agrees within the warm path's own
        # documented rounding tolerance versus a recompute.
        short_circuit = self.config.cache
        previous_fingerprint: Optional[str] = None
        previous_tick: Optional[TickResult] = None
        tick_index = 0
        consumed = 0
        try:
            while consumed < num_steps:
                if tick_index == 0:
                    take = self.window
                else:
                    take = self.hop
                    if consumed + take > num_steps:
                        break
                if self.max_ticks is not None and tick_index >= self.max_ticks:
                    break
                tick_start = time.perf_counter()
                rolling.push(self.returns[:, consumed : consumed + take])
                consumed += take
                fingerprint = (
                    matrix_fingerprint(rolling.window_data()) if short_circuit else None
                )
                reused = (
                    short_circuit
                    and previous_tick is not None
                    and fingerprint == previous_fingerprint
                )
                if reused:
                    similarity = None  # skipped along with the fit
                elif self.warm:
                    similarity = rolling.correlation()
                else:
                    similarity = correlation_matrix(rolling.window_data())
                similarity_seconds = time.perf_counter() - tick_start
                if reused:
                    labels = previous_tick.labels.copy()
                    warm_started = previous_tick.warm_started
                    warm_rounds = previous_tick.warm_rounds
                    rounds = previous_tick.rounds
                    step_seconds = {"similarity": similarity_seconds}
                else:
                    fit_params = {"warm_start": starter.hints()}
                    if apsp_engine is not None:
                        fit_params["apsp_state"] = apsp_engine
                    result = estimator.fit(similarity, **fit_params).result_
                    pipeline = result.raw
                    starter.update(pipeline.tmfg)
                    labels = result.labels
                    warm_started = pipeline.tmfg.warm_started
                    warm_rounds = pipeline.tmfg.warm_rounds
                    rounds = pipeline.tmfg.rounds
                    step_seconds = {"similarity": similarity_seconds}
                    step_seconds.update(
                        {k: v for k, v in result.step_seconds.items() if k != "total"}
                    )
                step_seconds["total"] = time.perf_counter() - tick_start
                drift_ari = drift_ami = None
                if previous_labels is not None:
                    drift_ari = adjusted_rand_index(previous_labels, labels)
                    drift_ami = adjusted_mutual_information(previous_labels, labels)
                tick = TickResult(
                    tick=tick_index,
                    start=consumed - self.window,
                    stop=consumed,
                    labels=labels,
                    num_clusters=int(len(np.unique(labels))),
                    warm_started=warm_started,
                    warm_rounds=warm_rounds,
                    rounds=rounds,
                    step_seconds=step_seconds,
                    drift_ari=drift_ari,
                    drift_ami=drift_ami,
                    reused=reused,
                )
                yield tick
                previous_labels = labels
                previous_fingerprint = fingerprint
                previous_tick = tick
                tick_index += 1
        finally:
            if owns_backend:
                backend.close()

    def run(self) -> StreamingResult:
        """Run every tick and return the collected :class:`StreamingResult`."""
        ticks = list(self.iter_ticks())
        engine = getattr(self, "_apsp_engine", None)
        return StreamingResult(
            ticks=ticks,
            window=self.window,
            hop=self.hop,
            num_clusters=self.num_clusters,
            warm=self.warm,
            warm_stats=self._warm_stats,
            apsp_stats=engine.stats.as_dict() if engine is not None else None,
        )
