"""Incremental rolling-window correlation.

The streaming workload slides a correlation window across a return stream
and rebuilds the filtered graph per tick.  Recomputing the Pearson matrix
from scratch costs ``O(n^2 w)`` per tick (a full ``(n, w) @ (w, n)``
matmul); :class:`RollingCorrelation` instead maintains the windowed sums
``S_i = sum_t x_i(t)`` and cross products ``Q_ij = sum_t x_i(t) x_j(t)``
under per-observation add/evict updates, so a tick advancing the window by
``hop`` columns costs ``O(hop * n^2)`` — independent of the window length.

The emitted matrix follows the same conventions as
:func:`repro.datasets.similarity.correlation_matrix` (zero-variance rows
are uncorrelated with everything, entries clipped to ``[-1, 1]``, unit
diagonal) and passes :func:`repro.graph.matrix.validate_similarity_matrix`.
Because the sums are updated incrementally, entries can drift from the
from-scratch values by floating-point rounding; the accumulator therefore
refreshes the sums from the buffered window every ``refresh_every``
evictions (an ``O(n^2 w)`` matmul, amortised away), keeping the difference
within ~1e-12 of a from-scratch recomputation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.matrix import validate_similarity_matrix


class RollingCorrelation:
    """Windowed Pearson correlation with O(n^2) per-observation updates.

    Observations (one value per asset) are pushed in time order with
    :meth:`push`; once ``window`` observations have been seen, every push
    evicts the oldest column.  :meth:`correlation` emits the Pearson matrix
    of the current window at any point where the window holds at least two
    observations.
    """

    def __init__(
        self,
        num_assets: int,
        window: int,
        refresh_every: Optional[int] = 256,
        track_moments: bool = True,
    ) -> None:
        if num_assets < 1:
            raise ValueError("num_assets must be at least 1")
        if window < 2:
            raise ValueError("window must hold at least 2 observations")
        if refresh_every is not None and refresh_every < 1:
            raise ValueError("refresh_every must be at least 1 (or None to disable)")
        self._window = window
        self._num_assets = num_assets
        self._buffer = np.zeros((num_assets, window), dtype=float)
        self._position = 0
        self._filled = 0
        self._total_pushed = 0
        # ``track_moments=False`` turns the accumulator into a plain ring
        # buffer (no O(n^2) update per observation): :meth:`window_data`
        # still works but :meth:`correlation` is unavailable.  The cold
        # streaming path uses this so its from-scratch baseline is not
        # charged for incremental bookkeeping it never reads.
        self._track_moments = track_moments
        self._sums = np.zeros(num_assets, dtype=float) if track_moments else None
        self._cross = np.zeros((num_assets, num_assets), dtype=float) if track_moments else None
        self._refresh_every = refresh_every
        self._evictions_since_refresh = 0

    # -- properties --------------------------------------------------------

    @property
    def num_assets(self) -> int:
        return self._num_assets

    @property
    def window(self) -> int:
        return self._window

    @property
    def num_observations(self) -> int:
        """Observations currently in the window (at most ``window``)."""
        return self._filled

    @property
    def total_pushed(self) -> int:
        """Observations pushed over the accumulator's lifetime."""
        return self._total_pushed

    @property
    def ready(self) -> bool:
        """Whether the window is full."""
        return self._filled == self._window

    # -- updates -----------------------------------------------------------

    def push(self, observations: np.ndarray) -> None:
        """Append one or more observations (``(num_assets,)`` or ``(num_assets, k)``).

        Each column is one time step; columns are applied oldest-first.  Once
        the window is full, every appended column evicts the current oldest.
        """
        block = np.asarray(observations, dtype=float)
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2 or block.shape[0] != self._num_assets:
            raise ValueError(
                f"expected observations shaped ({self._num_assets},) or "
                f"({self._num_assets}, k), got {np.asarray(observations).shape}"
            )
        if not np.all(np.isfinite(block)):
            raise ValueError("observations must be finite")
        for column in block.T:
            self._push_column(column)

    def _push_column(self, column: np.ndarray) -> None:
        if self._filled == self._window:
            if self._track_moments:
                oldest = self._buffer[:, self._position]
                self._sums -= oldest
                self._cross -= np.outer(oldest, oldest)
                self._evictions_since_refresh += 1
        else:
            self._filled += 1
        self._buffer[:, self._position] = column
        if self._track_moments:
            self._sums += column
            self._cross += np.outer(column, column)
        self._position = (self._position + 1) % self._window
        self._total_pushed += 1
        if (
            self._refresh_every is not None
            and self._evictions_since_refresh >= self._refresh_every
        ):
            self._refresh()

    def _refresh(self) -> None:
        """Recompute the sums from the buffered window, discarding drift."""
        window = self._buffer[:, : self._filled] if self._filled < self._window else self._buffer
        self._sums = window.sum(axis=1)
        self._cross = window @ window.T
        self._evictions_since_refresh = 0

    # -- queries -----------------------------------------------------------

    def window_data(self) -> np.ndarray:
        """The current window's observations, oldest column first."""
        if self._filled < self._window:
            return self._buffer[:, : self._filled].copy()
        return np.roll(self._buffer, -self._position, axis=1)

    def correlation(self) -> np.ndarray:
        """Pearson correlation matrix of the current window.

        Requires at least two buffered observations.  Matches
        :func:`repro.datasets.similarity.correlation_matrix` of
        :meth:`window_data` up to incremental-update rounding: rows whose
        windowed variance is numerically zero are reported as uncorrelated
        with everything (correlation 0) instead of producing NaNs.
        """
        if not self._track_moments:
            raise ValueError(
                "correlation is unavailable with track_moments=False; "
                "recompute from window_data() instead"
            )
        m = self._filled
        if m < 2:
            raise ValueError(
                f"correlation needs at least 2 observations in the window, have {m}"
            )
        mean = self._sums / m
        covariance = self._cross / m - np.outer(mean, mean)
        variance = np.diag(covariance).copy()
        # A constant series cancels to ~eps instead of exactly 0; treat a
        # variance at rounding scale of its uncentered second moment as 0.
        second_moment = np.diag(self._cross) / m
        zero_variance = variance <= 1e-12 * np.maximum(second_moment, 1e-300)
        std = np.sqrt(np.clip(variance, 0.0, None))
        safe_std = np.where(zero_variance, 1.0, std)
        correlation = covariance / np.outer(safe_std, safe_std)
        correlation[zero_variance, :] = 0.0
        correlation[:, zero_variance] = 0.0
        np.fill_diagonal(correlation, 1.0)
        correlation = np.clip(correlation, -1.0, 1.0)
        if self._num_assets >= 4:
            return validate_similarity_matrix(correlation)
        return correlation
