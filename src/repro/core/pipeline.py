"""One-call functional entry point: filtered-graph hierarchical clustering.

``tmfg_dbht`` runs the whole pipeline of the paper — build the (prefix-
batched) TMFG from a similarity matrix, then the DBHT on top of it — and
returns the dendrogram together with all intermediate artefacts.

.. note::
   New code should prefer the estimator layer in :mod:`repro.api`
   (``TMFGClusterer`` / ``make_estimator`` driven by a
   :class:`~repro.api.ClusteringConfig`), which wraps this function without
   changing its output; ``tmfg_dbht`` is kept as a thin, byte-identical
   shim for existing callers and may eventually be folded into the
   estimator layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dbht import DBHTResult, dbht
from repro.core.tmfg import TMFGResult, WarmStartHints, construct_tmfg
from repro.datasets.similarity import default_dissimilarity
from repro.dendrogram.node import Dendrogram
from repro.graph.matrix import validate_similarity_matrix
from repro.parallel.cost_model import WorkSpanTracker
from repro.parallel.scheduler import ParallelBackend


@dataclass
class PipelineResult:
    """Result of the full TMFG + DBHT pipeline."""

    tmfg: TMFGResult
    dbht: DBHTResult
    step_seconds: Dict[str, float]

    @property
    def dendrogram(self) -> Dendrogram:
        return self.dbht.dendrogram

    @property
    def tracker(self) -> WorkSpanTracker:
        return self.dbht.tracker

    def cut(self, num_clusters: int) -> np.ndarray:
        """Flat clustering with ``num_clusters`` clusters."""
        return self.dbht.cut(num_clusters)


def tmfg_dbht(
    similarity: np.ndarray,
    dissimilarity: Optional[np.ndarray] = None,
    prefix: int = 1,
    backend: Optional[ParallelBackend] = None,
    tracker: Optional[WorkSpanTracker] = None,
    apsp_method: str = "dijkstra",
    kernel: Optional[str] = None,
    warm_start: Optional[WarmStartHints] = None,
    apsp_state=None,
    landmarks: Optional[int] = None,
) -> PipelineResult:
    """Hierarchical clustering with a TMFG filtered graph and the DBHT.

    Parameters
    ----------
    similarity:
        Symmetric ``n x n`` similarity matrix (e.g. Pearson correlations).
    dissimilarity:
        Optional dissimilarity matrix.  If omitted and ``similarity`` looks
        like a correlation matrix, the paper's transform
        ``sqrt(2 (1 - p))`` is used; otherwise a rank-preserving transform
        ``max(S) - S`` is applied.
    prefix:
        Batch size of the parallel TMFG (``1`` = exact sequential TMFG).
    backend:
        Optional :class:`ParallelBackend` for the parallelisable phases.
    tracker:
        Optional :class:`WorkSpanTracker` collecting work/span per phase.
    apsp_method:
        APSP implementation used by the DBHT: any registered method id
        (``"dijkstra"`` default, ``"floyd"``, ``"scipy"``,
        ``"incremental"``, ``"landmark"``); see
        :func:`repro.graph.shortest_paths.all_pairs_shortest_paths`.
    kernel:
        ``"python"`` or ``"numpy"`` hot-loop kernels for the gain updates
        and the APSP (see :mod:`repro.parallel.kernels`); ``None`` uses the
        process-wide default.  All kernels produce identical results.
    warm_start:
        Optional :class:`~repro.core.tmfg.WarmStartHints` from a previous
        build on a similar matrix (the streaming workload's previous tick).
        Every replayed insertion is verified, so the result is identical to
        a cold run; rejected hints fall back to a cold build.
    apsp_state:
        Carried :class:`~repro.graph.incremental_apsp.IncrementalAPSP`
        engine for ``apsp_method="incremental"`` (the streaming runner owns
        one per stream).
    landmarks:
        Landmark count for ``apsp_method="landmark"``.

    Returns
    -------
    PipelineResult
        The dendrogram plus the TMFG, assignments, shortest paths, and the
        per-step wall-clock times (keys ``"tmfg"``, ``"apsp"``,
        ``"bubble-tree"``, ``"hierarchy"``) used by the Fig. 5 reproduction.
    """
    similarity = validate_similarity_matrix(similarity)
    if dissimilarity is None:
        dissimilarity = default_dissimilarity(similarity)
    tracker = tracker if tracker is not None else WorkSpanTracker()

    start = time.perf_counter()
    tmfg_result = construct_tmfg(
        similarity,
        prefix=prefix,
        build_bubble_tree=True,
        tracker=tracker,
        backend=backend,
        kernel=kernel,
        warm_start=warm_start,
    )
    tmfg_seconds = time.perf_counter() - start

    dbht_result = dbht(
        tmfg_result,
        similarity=similarity,
        dissimilarity=dissimilarity,
        tracker=tracker,
        backend=backend,
        apsp_method=apsp_method,
        kernel=kernel,
        apsp_state=apsp_state,
        landmarks=landmarks,
    )
    step_seconds = {"tmfg": tmfg_seconds}
    step_seconds.update(dbht_result.step_seconds)
    return PipelineResult(tmfg=tmfg_result, dbht=dbht_result, step_seconds=step_seconds)
