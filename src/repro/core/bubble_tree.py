"""Bubble tree construction (Algorithm 2).

A *bubble* is a maximal planar subgraph whose 3-cliques are non-separating;
in a graph built by the TMFG process every bubble is a 4-clique, and each
vertex insertion creates exactly one new bubble and one new bubble-tree edge
whose separating triangle is the face the vertex was inserted into.  The
tree is therefore built on the fly during TMFG construction instead of by
the original DBHT's quadratic-work triangle enumeration.

Invariant maintained (Section V-A): every bubble has a parent and at most
three children, except the root which has no parent, and all descendants of
a tree edge lie in the interior of the edge's separating triangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.faces import Triangle, triangle_key


@dataclass
class Bubble:
    """One node of the bubble tree: a 4-clique of the TMFG."""

    id: int
    vertices: FrozenSet[int]
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)

    def separating_triangle_with_parent(self, parent_vertices: FrozenSet[int]) -> Triangle:
        """The three vertices shared with the parent bubble."""
        shared = self.vertices & parent_vertices
        if len(shared) != 3:
            raise ValueError(
                f"bubble {self.id} shares {len(shared)} vertices with its parent, expected 3"
            )
        return frozenset(shared)


class BubbleTree:
    """Rooted bubble tree built incrementally during TMFG construction."""

    def __init__(self, initial_clique: Iterable[int], initial_faces: Iterable[Triangle]) -> None:
        clique = frozenset(initial_clique)
        if len(clique) != 4:
            raise ValueError(f"initial clique must have 4 vertices, got {len(clique)}")
        root = Bubble(id=0, vertices=clique)
        self._bubbles: List[Bubble] = [root]
        self._root_id = 0
        # Which bubble each face was created in (Line 3 of Algorithm 2).
        self._face_owner: Dict[Triangle, int] = {}
        for face in initial_faces:
            face = frozenset(face)
            if not face <= clique or len(face) != 3:
                raise ValueError("initial faces must be triangles of the initial clique")
            self._face_owner[face] = 0
        # Which bubbles each graph vertex belongs to.
        self._vertex_bubbles: Dict[int, List[int]] = {v: [0] for v in clique}

    # -- construction ------------------------------------------------------

    def insert(self, vertex: int, face: Triangle, is_outer_face: bool) -> int:
        """Record the insertion of ``vertex`` into ``face`` (Algorithm 2).

        Returns the id of the new bubble.  ``is_outer_face`` indicates that
        ``face`` was the current outer face, in which case the new bubble
        becomes the parent of the bubble owning ``face`` (and thus the new
        root of the tree).
        """
        face = frozenset(face)
        if face not in self._face_owner:
            raise KeyError(f"face {set(face)} is not a known face of the bubble tree")
        owner_id = self._face_owner[face]
        new_id = len(self._bubbles)
        new_bubble = Bubble(id=new_id, vertices=frozenset(face | {vertex}))
        self._bubbles.append(new_bubble)
        owner = self._bubbles[owner_id]
        if is_outer_face:
            if owner_id != self._root_id:
                raise ValueError("the outer face must belong to the current root bubble")
            owner.parent = new_id
            new_bubble.children.append(owner_id)
            self._root_id = new_id
        else:
            new_bubble.parent = owner_id
            owner.children.append(new_id)
        # The three new faces of the 4-clique belong to the new bubble.
        a, b, c = sorted(face)
        for new_face in (
            triangle_key(vertex, a, b),
            triangle_key(vertex, b, c),
            triangle_key(vertex, a, c),
        ):
            self._face_owner[new_face] = new_id
        for member in new_bubble.vertices:
            self._vertex_bubbles.setdefault(member, []).append(new_id)
        return new_id

    # -- queries -----------------------------------------------------------

    @property
    def root_id(self) -> int:
        return self._root_id

    @property
    def num_bubbles(self) -> int:
        return len(self._bubbles)

    def bubble(self, bubble_id: int) -> Bubble:
        return self._bubbles[bubble_id]

    @property
    def bubbles(self) -> Tuple[Bubble, ...]:
        return tuple(self._bubbles)

    def bubbles_of_vertex(self, vertex: int) -> List[int]:
        """Ids of the bubbles containing a graph vertex."""
        return list(self._vertex_bubbles.get(vertex, []))

    def face_owner(self, face: Triangle) -> int:
        """Id of the bubble in which ``face`` was created."""
        return self._face_owner[frozenset(face)]

    def separating_triangle(self, bubble_id: int) -> Triangle:
        """Separating triangle of the tree edge between a bubble and its parent."""
        bubble = self._bubbles[bubble_id]
        if bubble.parent is None:
            raise ValueError(f"bubble {bubble_id} is the root and has no parent edge")
        parent = self._bubbles[bubble.parent]
        return bubble.separating_triangle_with_parent(parent.vertices)

    def interior_vertex(self, bubble_id: int) -> int:
        """The vertex of a non-root bubble not shared with its parent."""
        bubble = self._bubbles[bubble_id]
        triangle = self.separating_triangle(bubble_id)
        remainder = bubble.vertices - triangle
        if len(remainder) != 1:
            raise ValueError("bubble does not differ from its parent by exactly one vertex")
        return next(iter(remainder))

    def edges(self) -> List[Tuple[int, int]]:
        """Tree edges as ``(parent_id, child_id)`` pairs."""
        result = []
        for bubble in self._bubbles:
            if bubble.parent is not None:
                result.append((bubble.parent, bubble.id))
        return result

    def topological_order(self) -> List[int]:
        """Bubble ids from the root downwards (parents before children)."""
        order: List[int] = []
        stack = [self._root_id]
        while stack:
            bubble_id = stack.pop()
            order.append(bubble_id)
            stack.extend(self._bubbles[bubble_id].children)
        return order

    def descendants_vertices(self, bubble_id: int) -> Set[int]:
        """All graph vertices in the subtree rooted at ``bubble_id``."""
        vertices: Set[int] = set()
        stack = [bubble_id]
        while stack:
            current = self._bubbles[stack.pop()]
            vertices.update(current.vertices)
            stack.extend(current.children)
        return vertices

    def height(self) -> int:
        """Height (number of edges on the longest root-to-leaf path)."""
        depths = {self._root_id: 0}
        best = 0
        for bubble_id in self.topological_order():
            depth = depths[bubble_id]
            best = max(best, depth)
            for child in self._bubbles[bubble_id].children:
                depths[child] = depth + 1
        return best

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if the structural invariants are violated."""
        roots = [b.id for b in self._bubbles if b.parent is None]
        assert roots == [self._root_id], f"expected a single root, found {roots}"
        for bubble in self._bubbles:
            assert len(bubble.vertices) == 4, "every bubble must be a 4-clique"
            assert len(bubble.children) <= 3, "a bubble has at most three children"
            for child_id in bubble.children:
                child = self._bubbles[child_id]
                assert child.parent == bubble.id
                assert len(child.vertices & bubble.vertices) == 3, (
                    "a bubble shares exactly 3 vertices with its parent"
                )
