"""Parallel (prefix-batched) TMFG construction — Algorithm 1.

The Triangulated Maximally Filtered Graph is built by starting from the
4-clique of the four vertices with the largest similarity row sums and then
repeatedly inserting an uninserted vertex into a triangular face, adding the
three edges from the vertex to the face's corners.  The sequential algorithm
inserts the single vertex-face pair with the largest gain per round; the
paper's parallel algorithm inserts up to ``prefix`` pairs per round, resolving
conflicts by keeping, for each vertex, only its highest-gain face.

``prefix=1`` reproduces the sequential TMFG exactly (up to tie-breaking),
which is what the tests check; larger prefixes trade a small amount of kept
edge weight for many fewer rounds (more parallelism), which is what Figs. 4,
6, and 7 evaluate.

Warm starts
-----------
The streaming workload (:mod:`repro.streaming`) rebuilds a TMFG per rolling
window, and consecutive windows share most of their data, so consecutive
TMFGs usually make the same insertion decisions.  ``construct_tmfg`` accepts
:class:`WarmStartHints` — the previous build's initial tetrahedron and
per-round insertion batches — and *replays* them, verifying each round
against the gain table (the replayed batch must be exactly what cold
selection would pick).  A verified replay skips the expensive candidate
sort, which dominates cold construction; any rejected check falls back to a
cold build, so the output is always identical to a cold run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bubble_tree import BubbleTree
from repro.core.gains import GainTable
from repro.graph.faces import Triangle, VertexFacePair, child_faces, triangle_corners, triangle_key
from repro.graph.matrix import validate_similarity_matrix
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker
from repro.parallel.scheduler import ParallelBackend


@dataclass
class TMFGResult:
    """Output of TMFG construction.

    ``graph`` is the filtered graph with similarity weights; ``edges`` is the
    edge list in insertion order (the initial clique's six edges first);
    ``bubble_tree`` is the tree built on the fly (Algorithm 2) when
    ``build_bubble_tree=True``; ``insertion_order`` records, per inserted
    vertex, the face it went into; ``rounds`` is the number of batched rounds
    (the quantity ``rho`` in the paper's analysis); ``round_sizes`` the
    number of vertices each round inserted (used to rebuild warm-start
    hints); ``warm_rounds`` how many leading rounds were verified replays of
    :class:`WarmStartHints` and ``warm_started`` whether *every* round was
    (a full replay; partial replays hand over to cold selection at the
    first diverging round).
    """

    graph: WeightedGraph
    edges: List[Tuple[int, int]]
    initial_clique: Tuple[int, int, int, int]
    bubble_tree: Optional[BubbleTree]
    insertion_order: List[Tuple[int, Triangle]]
    prefix: int
    rounds: int
    tracker: WorkSpanTracker = field(default_factory=WorkSpanTracker)
    round_sizes: List[int] = field(default_factory=list)
    warm_started: bool = False
    warm_rounds: int = 0

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def edge_weight_sum(self) -> float:
        return self.graph.edge_weight_sum()

    def warm_start_hints(self) -> "WarmStartHints":
        """Hints that let the next build replay this one (see ``construct_tmfg``)."""
        return WarmStartHints(
            initial_clique=self.initial_clique,
            insertion_order=tuple(self.insertion_order),
            round_sizes=tuple(self.round_sizes),
        )

    def csr(self):
        """The filtered graph frozen to CSR form, built once and memoized.

        DBHT reweights this topology with dissimilarities for the APSP; the
        incremental engine diffs consecutive ticks' reweighted CSRs, so
        freezing here keeps the per-tick cost at one fancy index instead of
        a full rebuild.
        """
        cached = getattr(self, "_csr_cache", None)
        if cached is None:
            cached = self.graph.to_csr()
            self._csr_cache = cached
        return cached


@dataclass(frozen=True)
class WarmStartHints:
    """A previous TMFG build's decisions, offered as candidates for replay.

    ``insertion_order`` holds the (vertex, face) insertions in order and
    ``round_sizes`` partitions them into the original rounds, so the replay
    can verify each round's batch against what cold selection would pick on
    the *new* similarity matrix.
    """

    initial_clique: Tuple[int, int, int, int]
    insertion_order: Tuple[Tuple[int, Triangle], ...]
    round_sizes: Tuple[int, ...]

    @property
    def num_vertices(self) -> int:
        return len(self.insertion_order) + 4


def _initial_clique(similarity: np.ndarray) -> List[int]:
    """The four vertices with the highest total similarity to all others."""
    row_sums = similarity.sum(axis=1) - np.diag(similarity)
    # argsort ascending; take the four largest, then order them by vertex id
    # for deterministic output.
    top_four = np.argsort(row_sums, kind="stable")[-4:]
    return sorted(int(v) for v in top_four)


class _TMFGBuilder:
    """Shared construction state for the cold and warm-replay paths."""

    def __init__(
        self,
        similarity: np.ndarray,
        clique: Sequence[int],
        build_bubble_tree: bool,
        kernel: Optional[str],
        tracker: WorkSpanTracker,
    ) -> None:
        n = similarity.shape[0]
        self.similarity = similarity
        self.tracker = tracker
        self.clique = tuple(int(v) for v in clique)
        v1, v2, v3, v4 = self.clique
        self.graph = WeightedGraph(n)
        self.edges: List[Tuple[int, int]] = []
        for i in range(4):
            for j in range(i + 1, 4):
                u, v = self.clique[i], self.clique[j]
                self.graph.add_edge(u, v, similarity[u, v])
                self.edges.append((u, v))
        self.faces: Set[Triangle] = {
            triangle_key(v1, v2, v3),
            triangle_key(v1, v2, v4),
            triangle_key(v1, v3, v4),
            triangle_key(v2, v3, v4),
        }
        self.outer_face: Triangle = triangle_key(v1, v2, v3)
        remaining = [v for v in range(n) if v not in set(self.clique)]
        self.gain_table = GainTable(similarity, remaining, kernel=kernel)
        self.gain_table.add_faces(list(self.faces))
        # Initialisation: O(n^2) work for the row sums, O(n) for the gains.
        tracker.add(
            "tmfg", work=float(n * n + 4 * n), span=math.log2(n) + 1 if n > 1 else 1.0
        )
        self.bubble_tree = BubbleTree(self.clique, self.faces) if build_bubble_tree else None
        self.insertion_order: List[Tuple[int, Triangle]] = []
        self.round_sizes: List[int] = []

    def insert_round(self, batch: Sequence[Tuple[int, Triangle]]) -> None:
        """Insert one round's (vertex, face) batch and refresh the gain table."""
        num_faces = self.gain_table.num_faces
        num_remaining = self.gain_table.num_remaining
        self.gain_table.remove_vertices([vertex for vertex, _ in batch])
        # The batch's faces are distinct (one best vertex per face), so the
        # structural updates can run per pair while the gain recomputation
        # for all newly created faces is deferred into one bulk call — the
        # round then costs one masked argmax over the stacked gain matrix
        # instead of per-face Python work.
        round_new_faces: List[Triangle] = []
        for vertex, face in batch:
            a, b, c = triangle_corners(face)
            for corner in (a, b, c):
                self.graph.add_edge(vertex, corner, self.similarity[vertex, corner])
                self.edges.append((vertex, corner))
            is_outer = face == self.outer_face
            if self.bubble_tree is not None:
                self.bubble_tree.insert(vertex, face, is_outer_face=is_outer)
            new_faces = child_faces(face, vertex)
            if is_outer:
                self.outer_face = new_faces[0]
            self.faces.discard(face)
            self.gain_table.remove_face(face)
            for new_face in new_faces:
                self.faces.add(new_face)
                round_new_faces.append(new_face)
            self.insertion_order.append((vertex, face))
        self.gain_table.add_faces(round_new_faces)
        self.round_sizes.append(len(batch))
        # Work: sorting the per-face gains plus recomputing gains for the
        # affected and newly-created faces (each a vectorised O(|V|) scan).
        affected = 3 * len(batch)
        round_work = float(
            num_faces * max(1.0, math.log2(max(num_faces, 2)))
            + affected * max(1, num_remaining)
        )
        round_span = math.log2(max(num_faces, 2)) + math.log2(max(len(batch), 2)) + 1.0
        self.tracker.add("tmfg", work=round_work, span=round_span)

    def result(self, prefix: int, warm_rounds: int = 0) -> TMFGResult:
        return TMFGResult(
            graph=self.graph,
            edges=self.edges,
            initial_clique=self.clique,
            bubble_tree=self.bubble_tree,
            insertion_order=self.insertion_order,
            prefix=prefix,
            rounds=len(self.round_sizes),
            tracker=self.tracker,
            round_sizes=self.round_sizes,
            warm_started=warm_rounds > 0 and warm_rounds == len(self.round_sizes),
            warm_rounds=warm_rounds,
        )


def construct_tmfg(
    similarity: np.ndarray,
    prefix: int = 1,
    build_bubble_tree: bool = True,
    tracker: Optional[WorkSpanTracker] = None,
    backend: Optional[ParallelBackend] = None,
    kernel: Optional[str] = None,
    warm_start: Optional[WarmStartHints] = None,
) -> TMFGResult:
    """Build a TMFG (or its prefix-batched variant) from a similarity matrix.

    Parameters
    ----------
    similarity:
        Symmetric ``n x n`` similarity matrix (``n >= 4``).  Larger values
        mean "keep this edge"; typically a Pearson correlation matrix.
    prefix:
        Maximum number of vertices inserted per round (``PREFIX`` in
        Algorithm 1).  ``1`` gives the exact sequential TMFG.
    build_bubble_tree:
        Also build the DBHT bubble tree during construction (Algorithm 2).
    tracker:
        Optional :class:`WorkSpanTracker`; work/span counters for the
        construction are recorded under the phase name ``"tmfg"``.
    backend:
        Reserved for the thread-pool backend; per-round insertions are
        independent and can be dispatched through it.
    kernel:
        Gain-update kernel (``"python"`` per-face loop or ``"numpy"`` bulk
        matrix argmax; see :mod:`repro.parallel.kernels`).  ``None`` uses
        the process-wide default.  Both produce identical graphs.
    warm_start:
        Optional :class:`WarmStartHints` from a previous build on a similar
        matrix.  Every replayed round is verified against the gain table —
        the batch must equal what cold selection would choose — so the
        result is always identical to a cold build.  For ``prefix=1`` (the
        streaming default) the gain check computes the round's true argmax,
        so a diverging hint costs nothing: the verified argmax is inserted
        directly, and the whole warm build runs on single-scan selection
        instead of the reference sort.  Larger prefixes verify each round
        by running the reference batched selection and comparing, which
        keeps the output guarantee but adds no speedup — the warm-start
        win is the ``prefix=1`` path.  The result's
        ``warm_started``/``warm_rounds`` fields record how far the replay
        carried.
    """
    if prefix < 1:
        raise ValueError("prefix must be at least 1")
    similarity = validate_similarity_matrix(similarity)
    n = similarity.shape[0]
    tracker = tracker if tracker is not None else WorkSpanTracker()
    clique = _initial_clique(similarity)

    fast_select = warm_start is not None and prefix == 1
    hint_batches = _usable_hint_batches(warm_start, clique, n, prefix)
    builder = _TMFGBuilder(similarity, clique, build_bubble_tree, kernel, tracker)
    warm_rounds = 0
    while builder.gain_table.num_remaining > 0:
        expected: Optional[Tuple[Tuple[int, Triangle], ...]] = None
        if hint_batches is not None and warm_rounds < len(hint_batches):
            expected = hint_batches[warm_rounds]
        batch: Optional[Sequence[Tuple[int, Triangle]]] = None
        if fast_select:
            # Single-scan exact selection: ``argmax_pair`` is the pair
            # ``_select_batch`` would return for prefix 1 (same tie-break),
            # so verification and selection are the same scan.
            best = builder.gain_table.argmax_pair()
            if best is None:
                raise RuntimeError(
                    "no insertable vertex-face pair found; inconsistent gain table"
                )
            batch = ((best.vertex, best.face),)
            if expected is not None:
                if len(expected) == 1 and expected[0] == batch[0]:
                    warm_rounds += 1
                else:
                    hint_batches = None
        else:
            if expected is not None:
                cold_batch = _select_batch(builder.gain_table, prefix)
                if [(pair.vertex, pair.face) for pair in cold_batch] == list(expected):
                    warm_rounds += 1
                    batch = expected
                else:
                    # Diverged: the remaining hints describe a different
                    # construction, so stop consulting them.
                    hint_batches = None
                    batch = [(pair.vertex, pair.face) for pair in cold_batch]
            if batch is None:
                pairs = _select_batch(builder.gain_table, prefix)
                if not pairs:
                    raise RuntimeError(
                        "no insertable vertex-face pair found; inconsistent gain table"
                    )
                batch = [(pair.vertex, pair.face) for pair in pairs]
        builder.insert_round(batch)
    return builder.result(prefix, warm_rounds=warm_rounds)


def _usable_hint_batches(
    hints: Optional[WarmStartHints],
    clique: Sequence[int],
    num_vertices: int,
    prefix: int,
) -> Optional[List[Tuple[Tuple[int, Triangle], ...]]]:
    """Hints split into per-round batches, or ``None`` when unusable.

    Hints are unusable when they describe a different vertex count, a
    different initial tetrahedron (every later decision would differ), an
    inconsistent round partition, or rounds larger than this build's
    ``prefix``.
    """
    if hints is None:
        return None
    if hints.num_vertices != num_vertices:
        return None
    if tuple(clique) != tuple(hints.initial_clique):
        return None
    if sum(hints.round_sizes) != len(hints.insertion_order):
        return None
    batches: List[Tuple[Tuple[int, Triangle], ...]] = []
    position = 0
    for size in hints.round_sizes:
        if size < 1 or size > prefix:
            return None
        batches.append(hints.insertion_order[position : position + size])
        position += size
    return batches


def _select_batch(gain_table: GainTable, prefix: int) -> List[VertexFacePair]:
    """Choose up to ``prefix`` vertex-face pairs to insert this round.

    Implements Lines 9–10 of Algorithm 1: take the ``prefix`` largest-gain
    pairs over all faces, then, for any vertex that appears with several
    faces, keep only its highest-gain pair so each vertex is inserted into a
    single face.
    """
    pairs = gain_table.best_pairs()
    if not pairs:
        return []
    pairs.sort(key=lambda pair: pair.sort_key(), reverse=True)
    top = pairs[:prefix]
    chosen: Dict[int, VertexFacePair] = {}
    for pair in top:
        current = chosen.get(pair.vertex)
        if current is None or pair.gain > current.gain:
            chosen[pair.vertex] = pair
    # Preserve the descending-gain order for deterministic insertion.
    return sorted(chosen.values(), key=lambda pair: pair.sort_key(), reverse=True)
