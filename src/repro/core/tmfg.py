"""Parallel (prefix-batched) TMFG construction — Algorithm 1.

The Triangulated Maximally Filtered Graph is built by starting from the
4-clique of the four vertices with the largest similarity row sums and then
repeatedly inserting an uninserted vertex into a triangular face, adding the
three edges from the vertex to the face's corners.  The sequential algorithm
inserts the single vertex-face pair with the largest gain per round; the
paper's parallel algorithm inserts up to ``prefix`` pairs per round, resolving
conflicts by keeping, for each vertex, only its highest-gain face.

``prefix=1`` reproduces the sequential TMFG exactly (up to tie-breaking),
which is what the tests check; larger prefixes trade a small amount of kept
edge weight for many fewer rounds (more parallelism), which is what Figs. 4,
6, and 7 evaluate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.bubble_tree import BubbleTree
from repro.core.gains import GainTable
from repro.graph.faces import Triangle, VertexFacePair, child_faces, triangle_corners, triangle_key
from repro.graph.matrix import validate_similarity_matrix
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker
from repro.parallel.scheduler import ParallelBackend


@dataclass
class TMFGResult:
    """Output of TMFG construction.

    ``graph`` is the filtered graph with similarity weights; ``edges`` is the
    edge list in insertion order (the initial clique's six edges first);
    ``bubble_tree`` is the tree built on the fly (Algorithm 2) when
    ``build_bubble_tree=True``; ``insertion_order`` records, per inserted
    vertex, the face it went into; ``rounds`` is the number of batched rounds
    (the quantity ``rho`` in the paper's analysis).
    """

    graph: WeightedGraph
    edges: List[Tuple[int, int]]
    initial_clique: Tuple[int, int, int, int]
    bubble_tree: Optional[BubbleTree]
    insertion_order: List[Tuple[int, Triangle]]
    prefix: int
    rounds: int
    tracker: WorkSpanTracker = field(default_factory=WorkSpanTracker)

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def edge_weight_sum(self) -> float:
        return self.graph.edge_weight_sum()


def _initial_clique(similarity: np.ndarray) -> List[int]:
    """The four vertices with the highest total similarity to all others."""
    row_sums = similarity.sum(axis=1) - np.diag(similarity)
    # argsort ascending; take the four largest, then order them by vertex id
    # for deterministic output.
    top_four = np.argsort(row_sums, kind="stable")[-4:]
    return sorted(int(v) for v in top_four)


def construct_tmfg(
    similarity: np.ndarray,
    prefix: int = 1,
    build_bubble_tree: bool = True,
    tracker: Optional[WorkSpanTracker] = None,
    backend: Optional[ParallelBackend] = None,
    kernel: Optional[str] = None,
) -> TMFGResult:
    """Build a TMFG (or its prefix-batched variant) from a similarity matrix.

    Parameters
    ----------
    similarity:
        Symmetric ``n x n`` similarity matrix (``n >= 4``).  Larger values
        mean "keep this edge"; typically a Pearson correlation matrix.
    prefix:
        Maximum number of vertices inserted per round (``PREFIX`` in
        Algorithm 1).  ``1`` gives the exact sequential TMFG.
    build_bubble_tree:
        Also build the DBHT bubble tree during construction (Algorithm 2).
    tracker:
        Optional :class:`WorkSpanTracker`; work/span counters for the
        construction are recorded under the phase name ``"tmfg"``.
    backend:
        Reserved for the thread-pool backend; per-round insertions are
        independent and can be dispatched through it.
    kernel:
        Gain-update kernel (``"python"`` per-face loop or ``"numpy"`` bulk
        matrix argmax; see :mod:`repro.parallel.kernels`).  ``None`` uses
        the process-wide default.  Both produce identical graphs.
    """
    if prefix < 1:
        raise ValueError("prefix must be at least 1")
    similarity = validate_similarity_matrix(similarity)
    n = similarity.shape[0]
    tracker = tracker if tracker is not None else WorkSpanTracker()

    clique = _initial_clique(similarity)
    v1, v2, v3, v4 = clique
    graph = WeightedGraph(n)
    edges: List[Tuple[int, int]] = []
    for i in range(4):
        for j in range(i + 1, 4):
            u, v = clique[i], clique[j]
            graph.add_edge(u, v, similarity[u, v])
            edges.append((u, v))

    faces: Set[Triangle] = {
        triangle_key(v1, v2, v3),
        triangle_key(v1, v2, v4),
        triangle_key(v1, v3, v4),
        triangle_key(v2, v3, v4),
    }
    outer_face: Triangle = triangle_key(v1, v2, v3)

    remaining = [v for v in range(n) if v not in set(clique)]
    gain_table = GainTable(similarity, remaining, kernel=kernel)
    gain_table.add_faces(list(faces))
    # Initialisation: O(n^2) work for the row sums, O(n) for the gains.
    tracker.add("tmfg", work=float(n * n + 4 * n), span=math.log2(n) + 1 if n > 1 else 1.0)

    bubble_tree = BubbleTree(clique, faces) if build_bubble_tree else None
    insertion_order: List[Tuple[int, Triangle]] = []

    rounds = 0
    while gain_table.num_remaining > 0:
        rounds += 1
        batch = _select_batch(gain_table, prefix)
        if not batch:
            raise RuntimeError("no insertable vertex-face pair found; inconsistent gain table")
        num_faces = gain_table.num_faces
        num_remaining = gain_table.num_remaining
        inserted_vertices = [pair.vertex for pair in batch]
        gain_table.remove_vertices(inserted_vertices)
        # The batch's faces are distinct (one best vertex per face), so the
        # structural updates can run per pair while the gain recomputation
        # for all newly created faces is deferred into one bulk call — the
        # round then costs one masked argmax over the stacked gain matrix
        # instead of per-face Python work.
        round_new_faces: List[Triangle] = []
        for pair in batch:
            vertex, face = pair.vertex, pair.face
            a, b, c = triangle_corners(face)
            for corner in (a, b, c):
                graph.add_edge(vertex, corner, similarity[vertex, corner])
                edges.append((vertex, corner))
            is_outer = face == outer_face
            if bubble_tree is not None:
                bubble_tree.insert(vertex, face, is_outer_face=is_outer)
            new_faces = child_faces(face, vertex)
            if is_outer:
                outer_face = new_faces[0]
            faces.discard(face)
            gain_table.remove_face(face)
            for new_face in new_faces:
                faces.add(new_face)
                round_new_faces.append(new_face)
            insertion_order.append((vertex, face))
        gain_table.add_faces(round_new_faces)
        # Work: sorting the per-face gains plus recomputing gains for the
        # affected and newly-created faces (each a vectorised O(|V|) scan).
        affected = 3 * len(batch)
        round_work = float(
            num_faces * max(1.0, math.log2(max(num_faces, 2)))
            + affected * max(1, num_remaining)
        )
        round_span = math.log2(max(num_faces, 2)) + math.log2(max(len(batch), 2)) + 1.0
        tracker.add("tmfg", work=round_work, span=round_span)

    return TMFGResult(
        graph=graph,
        edges=edges,
        initial_clique=(v1, v2, v3, v4),
        bubble_tree=bubble_tree,
        insertion_order=insertion_order,
        prefix=prefix,
        rounds=rounds,
        tracker=tracker,
    )


def _select_batch(gain_table: GainTable, prefix: int) -> List[VertexFacePair]:
    """Choose up to ``prefix`` vertex-face pairs to insert this round.

    Implements Lines 9–10 of Algorithm 1: take the ``prefix`` largest-gain
    pairs over all faces, then, for any vertex that appears with several
    faces, keep only its highest-gain pair so each vertex is inserted into a
    single face.
    """
    pairs = gain_table.best_pairs()
    if not pairs:
        return []
    pairs.sort(key=lambda pair: pair.sort_key(), reverse=True)
    top = pairs[:prefix]
    chosen: Dict[int, VertexFacePair] = {}
    for pair in top:
        current = chosen.get(pair.vertex)
        if current is None or pair.gain > current.gain:
            chosen[pair.vertex] = pair
    # Preserve the descending-gain order for deterministic insertion.
    return sorted(chosen.values(), key=lambda pair: pair.sort_key(), reverse=True)
