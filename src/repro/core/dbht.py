"""Parallel DBHT for TMFG — Algorithm 4 end to end.

Takes the output of TMFG construction (the filtered graph and its bubble
tree), the similarity matrix, and a dissimilarity matrix, and produces the
DBHT dendrogram.  The phases match Fig. 5's runtime decomposition:

* ``"apsp"`` — all-pairs shortest paths on the filtered graph with the
  dissimilarity weights;
* ``"bubble-tree"`` — directing the bubble-tree edges and assigning vertices
  to bubbles;
* ``"hierarchy"`` — the three-level complete-linkage construction.

(The ``"tmfg"`` phase is recorded by :func:`repro.core.tmfg.construct_tmfg`.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.assignment import AssignmentResult, assign_vertices
from repro.core.bubble_tree import BubbleTree
from repro.core.direction import DirectionResult, compute_directions
from repro.core.hierarchy import build_hierarchy
from repro.core.tmfg import TMFGResult
from repro.dendrogram.node import Dendrogram
from repro.graph.matrix import validate_dissimilarity_matrix
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker
from repro.parallel.scheduler import ParallelBackend


@dataclass
class DBHTResult:
    """Full output of the DBHT pipeline."""

    dendrogram: Dendrogram
    assignment: AssignmentResult
    directions: DirectionResult
    shortest_paths: np.ndarray
    tracker: WorkSpanTracker
    step_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        return self.dendrogram.num_leaves

    def cut(self, num_clusters: int) -> np.ndarray:
        """Flat clustering with ``num_clusters`` clusters."""
        from repro.dendrogram.cut import cut_k

        return cut_k(self.dendrogram, num_clusters)


def dbht(
    tmfg: TMFGResult,
    similarity: np.ndarray,
    dissimilarity: np.ndarray,
    tracker: Optional[WorkSpanTracker] = None,
    backend: Optional[ParallelBackend] = None,
    apsp_method: str = "dijkstra",
    kernel: Optional[str] = None,
    apsp_state=None,
    landmarks: Optional[int] = None,
) -> DBHTResult:
    """Run the parallel DBHT on a TMFG (Algorithm 4).

    Parameters
    ----------
    tmfg:
        Result of :func:`repro.core.tmfg.construct_tmfg` with
        ``build_bubble_tree=True``.
    similarity:
        The similarity matrix the TMFG was built from (used by the
        attachment scores ``chi`` and ``chi'``).
    dissimilarity:
        Dissimilarity matrix supplying the edge lengths for shortest paths
        and linkage distances (e.g. ``sqrt(2 (1 - p))`` for correlations).
    apsp_method:
        Any id from the APSP method registry
        (:func:`repro.graph.shortest_paths.available_apsp_methods`):
        ``"dijkstra"`` (the paper's per-source algorithm run as batched CSR
        kernels, optionally over a thread/process backend), ``"floyd"``
        (vectorised Floyd-Warshall), ``"scipy"`` (SciPy's C
        implementation), ``"incremental"`` (exact, repaired from
        ``apsp_state`` across streaming ticks), or ``"landmark"`` (opt-in
        approximation).  APSP is the remaining bottleneck of the pipeline
        (Fig. 5), so the faster implementations are exposed here; all but
        ``"landmark"`` give identical distances (Floyd-Warshall up to the
        last float ulp).
    kernel:
        APSP kernel for the ``"dijkstra"`` method: ``"python"`` (array-heap
        Dijkstra per source) or ``"numpy"`` (batched relaxation), both with
        byte-identical distances.  ``None`` uses the process-wide default.
    apsp_state:
        Carried :class:`~repro.graph.incremental_apsp.IncrementalAPSP`
        engine; only meaningful (and only forwarded) with
        ``apsp_method="incremental"``.
    landmarks:
        Landmark count; only meaningful with ``apsp_method="landmark"``.
    """
    if tmfg.bubble_tree is None:
        raise ValueError("TMFG result has no bubble tree; pass build_bubble_tree=True")
    similarity = np.asarray(similarity, dtype=float)
    dissimilarity = validate_dissimilarity_matrix(
        dissimilarity, size=similarity.shape[0]
    )
    tracker = tracker if tracker is not None else tmfg.tracker
    tree: BubbleTree = tmfg.bubble_tree
    graph: WeightedGraph = tmfg.graph
    step_seconds: Dict[str, float] = {}

    # Shortest paths use the dissimilarity weights on the TMFG topology:
    # freeze the TMFG into CSR form once and swap in the dissimilarity
    # weights with a single fancy index (no per-edge rebuild).
    if apsp_state is not None and apsp_method != "incremental":
        raise ValueError(
            f"apsp_state only applies to apsp_method='incremental', got {apsp_method!r}"
        )
    if landmarks is not None and apsp_method != "landmark":
        raise ValueError(
            f"landmarks only applies to apsp_method='landmark', got {apsp_method!r}"
        )
    apsp_options = {}
    if apsp_state is not None:
        apsp_options["state"] = apsp_state
    if landmarks is not None:
        apsp_options["landmarks"] = landmarks

    start = time.perf_counter()
    distance_graph = tmfg.csr().reweighted(dissimilarity)
    shortest_paths = all_pairs_shortest_paths(
        distance_graph, backend=backend, method=apsp_method, kernel=kernel, **apsp_options
    )
    step_seconds["apsp"] = time.perf_counter() - start
    n = graph.num_vertices
    tracker.add(
        "apsp",
        work=float(n * n * np.log2(max(n, 2))),
        span=float(np.log2(max(n, 2)) ** 2),
    )

    start = time.perf_counter()
    directions = compute_directions(tree, graph, tracker=tracker)
    assignment = assign_vertices(
        tree, directions, similarity, shortest_paths, tracker=tracker
    )
    step_seconds["bubble-tree"] = time.perf_counter() - start

    start = time.perf_counter()
    dendrogram = build_hierarchy(assignment, shortest_paths, tracker=tracker)
    step_seconds["hierarchy"] = time.perf_counter() - start

    return DBHTResult(
        dendrogram=dendrogram,
        assignment=assignment,
        directions=directions,
        shortest_paths=shortest_paths,
        tracker=tracker,
        step_seconds=step_seconds,
    )
