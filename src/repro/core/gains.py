"""Gain table for TMFG construction.

For each triangular face ``t`` of the graph under construction, the TMFG
algorithm needs the *best vertex*: the not-yet-inserted vertex ``v`` that
maximises the gain ``sum_{u in t} S[u, v]`` of inserting ``v`` into ``t``
(Line 5 and Lines 15–16 of Algorithm 1).

The paper maintains, for each face, a sorted list of candidate vertices so
that the best vertex never has to be recomputed by scanning every face.
Here we keep, per face, only the current best ``(gain, vertex)`` pair plus a
reverse index ``vertex -> faces where it is currently best``; when a batch of
vertices is inserted, exactly the faces that pointed at them are refreshed.
The refresh itself goes through the ``"gain_update"`` kernel registry
(:mod:`repro.parallel.kernels`): the ``python`` kernel recomputes the
affected faces one at a time, while the ``numpy`` kernel stacks them into a
single ``(faces, remaining)`` gain matrix and takes one masked argmax per
row — the per-round cost becomes a handful of numpy calls regardless of how
many faces a batch touched.  Both kernels produce bit-identical tables.
This preserves the paper's key property — the update work is proportional
to the number of affected faces, not to all faces — while vectorising the
per-face scans away.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.faces import Triangle, VertexFacePair, triangle_corners
from repro.parallel.kernels import get_kernel, register_kernel


class GainTable:
    """Tracks the best remaining vertex for every active face."""

    def __init__(
        self,
        similarity: np.ndarray,
        remaining: Iterable[int],
        kernel: Optional[str] = None,
    ) -> None:
        self._similarity = np.asarray(similarity, dtype=float)
        n = self._similarity.shape[0]
        self._remaining_mask = np.zeros(n, dtype=bool)
        for vertex in remaining:
            self._remaining_mask[vertex] = True
        # face -> (gain, vertex); vertex is None when no remaining vertex exists
        self._best: Dict[Triangle, Tuple[float, Optional[int]]] = {}
        # vertex -> set of faces whose current best vertex is that vertex
        self._best_of: Dict[int, Set[Triangle]] = {}
        # Number of gain recomputations performed (used by the ablation bench).
        self.recompute_count = 0
        # "python" / "numpy" bulk-update kernel; None = process-wide default.
        self._kernel = kernel

    # -- queries -----------------------------------------------------------

    @property
    def num_remaining(self) -> int:
        return int(self._remaining_mask.sum())

    def remaining_vertices(self) -> np.ndarray:
        return np.flatnonzero(self._remaining_mask)

    def is_remaining(self, vertex: int) -> bool:
        return bool(self._remaining_mask[vertex])

    @property
    def num_faces(self) -> int:
        return len(self._best)

    def faces(self) -> List[Triangle]:
        return list(self._best.keys())

    def best_for_face(self, face: Triangle) -> Tuple[float, Optional[int]]:
        """Current ``(gain, vertex)`` for ``face`` (vertex None if exhausted)."""
        return self._best[face]

    def best_pairs(self) -> List[VertexFacePair]:
        """All active faces' best vertex-face pairs (faces with no candidate skipped)."""
        pairs = []
        for face, (gain, vertex) in self._best.items():
            if vertex is not None:
                pairs.append(VertexFacePair(vertex=vertex, face=face, gain=gain))
        return pairs

    def argmax_pair(self) -> Optional[VertexFacePair]:
        """The single best pair under the ``VertexFacePair.sort_key`` order.

        Equivalent to ``max(self.best_pairs(), key=sort_key)`` but runs as
        one scan over the per-face bests with plain float comparisons — the
        tie-break keys are only evaluated on exact gain ties, which are rare
        with real-valued similarities.  This is the per-round gain check of
        the TMFG warm-start replay, where it replaces building and sorting
        the full candidate list.  Returns ``None`` when no face has a
        remaining candidate.
        """
        best_gain = float("-inf")
        best_vertex: Optional[int] = None
        best_face: Optional[Triangle] = None
        for face, (gain, vertex) in self._best.items():
            if vertex is None:
                continue
            if best_vertex is None or gain > best_gain:
                best_gain, best_vertex, best_face = gain, vertex, face
            elif gain == best_gain:
                # sort_key orders by (gain, -vertex, descending corner
                # tuple); replicate it exactly on ties.
                if vertex < best_vertex or (
                    vertex == best_vertex
                    and tuple(-c for c in triangle_corners(face))
                    > tuple(-c for c in triangle_corners(best_face))
                ):
                    best_gain, best_vertex, best_face = gain, vertex, face
        if best_vertex is None:
            return None
        return VertexFacePair(vertex=best_vertex, face=best_face, gain=best_gain)

    # -- updates -----------------------------------------------------------

    def add_face(self, face: Triangle) -> None:
        """Register a new face and compute its best vertex."""
        self.add_faces([face])

    def add_faces(self, faces: Sequence[Triangle]) -> None:
        """Register a batch of new faces with one bulk gain computation."""
        for face in faces:
            if face in self._best:
                raise ValueError(f"face {set(face)} already registered")
        self._recompute_faces(list(faces))

    def remove_face(self, face: Triangle) -> None:
        """Remove a face (it has been split by a vertex insertion)."""
        gain, vertex = self._best.pop(face)
        if vertex is not None:
            faces_of_vertex = self._best_of.get(vertex)
            if faces_of_vertex is not None:
                faces_of_vertex.discard(face)

    def remove_vertices(self, vertices: Sequence[int]) -> List[Triangle]:
        """Mark vertices as inserted and refresh the faces that pointed at them.

        Returns the list of faces whose best vertex was recomputed, which is
        what the paper's Line 15 iterates over.
        """
        affected: Set[Triangle] = set()
        for vertex in vertices:
            if not self._remaining_mask[vertex]:
                raise ValueError(f"vertex {vertex} is not in the remaining set")
            self._remaining_mask[vertex] = False
            affected.update(self._best_of.pop(vertex, set()))
        # Only faces that still exist need a refresh.
        refreshed = [face for face in affected if face in self._best]
        self._recompute_faces(refreshed)
        return refreshed

    # -- internals ---------------------------------------------------------

    def _recompute_faces(self, faces: List[Triangle]) -> None:
        """Refresh a batch of faces through the selected gain-update kernel."""
        if not faces:
            return
        get_kernel("gain_update", self._kernel)(self, faces)

    def _recompute(self, face: Triangle) -> None:
        """Recompute the best remaining vertex for ``face`` with a numpy argmax."""
        self.recompute_count += 1
        previous = self._best.get(face)
        if previous is not None and previous[1] is not None:
            self._best_of.get(previous[1], set()).discard(face)
        remaining = np.flatnonzero(self._remaining_mask)
        if remaining.size == 0:
            self._best[face] = (float("-inf"), None)
            return
        a, b, c = triangle_corners(face)
        gains = (
            self._similarity[a, remaining]
            + self._similarity[b, remaining]
            + self._similarity[c, remaining]
        )
        index = int(np.argmax(gains))
        vertex = int(remaining[index])
        gain = float(gains[index])
        self._best[face] = (gain, vertex)
        self._best_of.setdefault(vertex, set()).add(face)


class RescanGainTable(GainTable):
    """Gain table that rescans *every* face after each insertion.

    This reproduces the behaviour of the original TMFG implementation, which
    "loops over all of the faces to find the faces that previously had v as
    their best vertex" (Section IV).  It is used only by the ablation
    benchmark comparing the two update strategies; results are identical,
    only the amount of recomputation differs.
    """

    def remove_vertices(self, vertices: Sequence[int]) -> List[Triangle]:
        removed = set()
        for vertex in vertices:
            if not self._remaining_mask[vertex]:
                raise ValueError(f"vertex {vertex} is not in the remaining set")
            self._remaining_mask[vertex] = False
            self._best_of.pop(vertex, None)
            removed.add(vertex)
        refreshed = [
            face
            for face, (_, vertex) in list(self._best.items())
            if vertex in removed or vertex is None
        ]
        self._recompute_faces(refreshed)
        return refreshed


# ---------------------------------------------------------------------------
# Gain-update kernels
# ---------------------------------------------------------------------------


def _gain_update_python(table: GainTable, faces: List[Triangle]) -> None:
    """Reference kernel: recompute each affected face on its own."""
    for face in faces:
        table._recompute(face)


def _gain_update_numpy(table: GainTable, faces: List[Triangle]) -> None:
    """Bulk kernel: one gain matrix, one argmax per affected face.

    Builds the ``(len(faces), len(remaining))`` gain matrix with three fancy
    gathers and reduces it row-wise; the additions associate exactly like the
    per-face kernel's (``(S[a] + S[b]) + S[c]``), so the resulting table is
    bit-identical.
    """
    table.recompute_count += len(faces)
    for face in faces:
        previous = table._best.get(face)
        if previous is not None and previous[1] is not None:
            table._best_of.get(previous[1], set()).discard(face)
    remaining = np.flatnonzero(table._remaining_mask)
    if remaining.size == 0:
        for face in faces:
            table._best[face] = (float("-inf"), None)
        return
    corners = np.array([triangle_corners(face) for face in faces], dtype=np.int64)
    similarity = table._similarity
    gains = (
        similarity[np.ix_(corners[:, 0], remaining)]
        + similarity[np.ix_(corners[:, 1], remaining)]
        + similarity[np.ix_(corners[:, 2], remaining)]
    )
    best_columns = np.argmax(gains, axis=1)
    best_vertices = remaining[best_columns]
    best_gains = gains[np.arange(len(faces)), best_columns]
    for face, vertex, gain in zip(faces, best_vertices.tolist(), best_gains.tolist()):
        table._best[face] = (float(gain), int(vertex))
        table._best_of.setdefault(int(vertex), set()).add(face)


register_kernel("gain_update", "python", _gain_update_python)
register_kernel("gain_update", "numpy", _gain_update_numpy)
