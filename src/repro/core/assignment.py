"""Vertex-to-bubble assignment — Lines 1–23 of Algorithm 4.

The DBHT clusters vertices in two levels.  First, every vertex is assigned
to a *converging bubble* (a bubble with only incoming edges in the directed
bubble tree): vertices that belong to at least one converging bubble go to
the one with the strongest attachment ``chi``, and the remaining vertices go
to the reachable converging bubble with the smallest mean shortest-path
distance to the vertices already assigned there.  Second, every vertex is
assigned to a (not necessarily converging) bubble maximising the normalised
attachment ``chi'``.  The pair (converging bubble, bubble) defines the
subgroups used by the three-level hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.bubble_tree import BubbleTree
from repro.core.direction import DirectionResult
from repro.parallel.atomics import WriteMax, WriteMin
from repro.parallel.cost_model import WorkSpanTracker


@dataclass
class AssignmentResult:
    """Group (converging bubble) and bubble assignment of every vertex.

    ``group[v]`` is the id of the converging bubble that vertex ``v`` is
    assigned to; ``bubble[v]`` is the id of the bubble maximising ``chi'``.
    ``converging_bubbles`` lists the converging bubble ids;
    ``assigned_directly[v]`` is True when ``v`` was assigned by the
    ``chi``-attachment rule (it belongs to at least one converging bubble).
    """

    group: np.ndarray
    bubble: np.ndarray
    converging_bubbles: List[int]
    assigned_directly: np.ndarray

    def subgroups(self) -> Dict[Tuple[int, int], List[int]]:
        """Vertices keyed by (converging bubble, bubble) — the DBHT subgroups."""
        result: Dict[Tuple[int, int], List[int]] = {}
        for vertex in range(len(self.group)):
            key = (int(self.group[vertex]), int(self.bubble[vertex]))
            result.setdefault(key, []).append(vertex)
        return result

    def groups(self) -> Dict[int, List[int]]:
        """Vertices keyed by converging bubble."""
        result: Dict[int, List[int]] = {}
        for vertex in range(len(self.group)):
            result.setdefault(int(self.group[vertex]), []).append(vertex)
        return result


def _chi(similarity: np.ndarray, vertex: int, members: Set[int]) -> float:
    """Attachment of ``vertex`` to a bubble: sum of similarities to its members.

    The paper's normalisation ``3 (|b| - 2)`` is constant (= 6) for TMFG
    bubbles, so it cancels in the argmax and is omitted, exactly as noted in
    Section V-C.
    """
    return float(sum(similarity[vertex, u] for u in members if u != vertex))


def _bubble_internal_weight(similarity: np.ndarray, members: Tuple[int, ...]) -> float:
    """Total similarity over the six edges of a 4-clique bubble."""
    total = 0.0
    member_list = list(members)
    for i in range(len(member_list)):
        for j in range(i + 1, len(member_list)):
            total += float(similarity[member_list[i], member_list[j]])
    return total


def assign_vertices(
    tree: BubbleTree,
    directions: DirectionResult,
    similarity: np.ndarray,
    shortest_paths: np.ndarray,
    tracker: Optional[WorkSpanTracker] = None,
) -> AssignmentResult:
    """Assign every vertex to a converging bubble and to a bubble.

    ``shortest_paths`` is the all-pairs shortest path matrix of the TMFG
    under the dissimilarity weights (Line 7 of Algorithm 4).
    """
    num_vertices = similarity.shape[0]
    converging = directions.converging_bubbles(tree)
    converging_set = set(converging)
    reach = directions.reachable_converging_bubbles(tree)

    # -- first level: assignment to converging bubbles (groups) ------------
    group_cells: List[WriteMax] = [
        WriteMax((float("-inf"), -1)) for _ in range(num_vertices)
    ]
    work = 0.0
    for bubble_id in converging:
        members = set(tree.bubble(bubble_id).vertices)
        for vertex in members:
            score = _chi(similarity, vertex, members)
            group_cells[vertex].write((score, bubble_id))
            work += 1.0

    group = np.full(num_vertices, -1, dtype=int)
    assigned_directly = np.zeros(num_vertices, dtype=bool)
    for vertex in range(num_vertices):
        score, bubble_id = group_cells[vertex].value
        if bubble_id >= 0:
            group[vertex] = bubble_id
            assigned_directly[vertex] = True

    # V^0_b: vertices already attached to each converging bubble.
    attached: Dict[int, List[int]] = {bubble_id: [] for bubble_id in converging}
    for vertex in range(num_vertices):
        if assigned_directly[vertex]:
            attached[int(group[vertex])].append(vertex)

    # Remaining vertices: closest reachable converging bubble by mean
    # shortest-path distance to its attached vertices.
    min_cells: List[WriteMin] = [
        WriteMin((float("inf"), -1)) for _ in range(num_vertices)
    ]
    vertex_reachable: Dict[int, Set[int]] = {}
    for vertex in range(num_vertices):
        if assigned_directly[vertex]:
            continue
        reachable: Set[int] = set()
        for bubble_id in tree.bubbles_of_vertex(vertex):
            reachable |= reach[bubble_id]
        vertex_reachable[vertex] = reachable

    for bubble_id in converging:
        members = attached[bubble_id]
        if not members:
            continue
        member_array = np.asarray(members, dtype=int)
        for vertex, reachable in vertex_reachable.items():
            if bubble_id not in reachable:
                continue
            mean_distance = float(np.mean(shortest_paths[member_array, vertex]))
            min_cells[vertex].write((mean_distance, bubble_id))
            work += len(members)

    for vertex, reachable in vertex_reachable.items():
        distance, bubble_id = min_cells[vertex].value
        if bubble_id >= 0:
            group[vertex] = bubble_id
        else:
            # Fallback (degenerate case: no reachable converging bubble has
            # attached vertices yet): use the globally closest converging
            # bubble by mean distance to its member vertices.
            best = (float("inf"), -1)
            for candidate in converging:
                members = list(tree.bubble(candidate).vertices)
                mean_distance = float(
                    np.mean(shortest_paths[np.asarray(members, dtype=int), vertex])
                )
                best = min(best, (mean_distance, candidate))
            group[vertex] = best[1]

    # -- second level: assignment to bubbles --------------------------------
    bubble_cells: List[WriteMax] = [
        WriteMax((float("-inf"), -1)) for _ in range(num_vertices)
    ]
    for bubble in tree.bubbles:
        members = tuple(sorted(bubble.vertices))
        total_weight = _bubble_internal_weight(similarity, members)
        if total_weight <= 0:
            # Guard against degenerate bubbles with non-positive internal
            # weight; fall back to the unnormalised attachment.
            total_weight = 1.0
        member_set = set(members)
        for vertex in members:
            score = _chi(similarity, vertex, member_set) / total_weight
            bubble_cells[vertex].write((score, bubble.id))
            work += 1.0

    bubble_assignment = np.full(num_vertices, -1, dtype=int)
    for vertex in range(num_vertices):
        _, bubble_id = bubble_cells[vertex].value
        bubble_assignment[vertex] = bubble_id

    if tracker is not None:
        tracker.add("bubble-tree", work=work, span=float(np.log2(max(num_vertices, 2))))
    return AssignmentResult(
        group=group,
        bubble=bubble_assignment,
        converging_bubbles=list(converging),
        assigned_directly=assigned_directly,
    )
