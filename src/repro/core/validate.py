"""Structural validation of pipeline outputs.

These checks encode the invariants the paper's algorithms guarantee; they
are cheap relative to the pipeline itself and are useful both in tests and
as a safety net for downstream users who modify the inputs or the
configuration (``validate_pipeline_result(result)`` raises
:class:`ValidationError` with a precise message if anything is off).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.dbht import DBHTResult
from repro.core.pipeline import PipelineResult
from repro.core.tmfg import TMFGResult


class ValidationError(AssertionError):
    """Raised when a pipeline artefact violates a documented invariant."""


def validate_tmfg_result(tmfg: TMFGResult) -> List[str]:
    """Check the TMFG structural invariants; returns the list of checks run."""
    checks = []
    n = tmfg.graph.num_vertices
    expected_edges = 3 * n - 6
    if tmfg.graph.num_edges != expected_edges:
        raise ValidationError(
            f"TMFG has {tmfg.graph.num_edges} edges, expected {expected_edges}"
        )
    checks.append("edge count is 3n-6")

    inserted = [vertex for vertex, _ in tmfg.insertion_order]
    covered = sorted(inserted + list(tmfg.initial_clique))
    if covered != list(range(n)):
        raise ValidationError("insertion order plus initial clique does not cover all vertices")
    checks.append("every vertex inserted exactly once")

    if tmfg.bubble_tree is not None:
        if tmfg.bubble_tree.num_bubbles != n - 3:
            raise ValidationError(
                f"bubble tree has {tmfg.bubble_tree.num_bubbles} bubbles, expected {n - 3}"
            )
        try:
            tmfg.bubble_tree.check_invariants()
        except AssertionError as error:
            raise ValidationError(f"bubble tree invariant violated: {error}") from error
        checks.append("bubble tree invariants hold")
    return checks


def validate_dbht_result(result: DBHTResult, num_vertices: Optional[int] = None) -> List[str]:
    """Check the DBHT output invariants; returns the list of checks run."""
    checks = []
    dendrogram = result.dendrogram
    if num_vertices is not None and dendrogram.num_leaves != num_vertices:
        raise ValidationError(
            f"dendrogram has {dendrogram.num_leaves} leaves, expected {num_vertices}"
        )
    if not dendrogram.is_complete:
        raise ValidationError("dendrogram is not complete")
    checks.append("dendrogram is complete")
    if not dendrogram.heights_monotone():
        raise ValidationError("dendrogram heights are not monotone")
    checks.append("dendrogram heights are monotone")

    group = result.assignment.group
    bubble = result.assignment.bubble
    if np.any(group < 0) or np.any(bubble < 0):
        raise ValidationError("some vertices have no group or bubble assignment")
    checks.append("every vertex assigned to a group and a bubble")
    if not set(np.unique(group)) <= set(result.assignment.converging_bubbles):
        raise ValidationError("a group assignment refers to a non-converging bubble")
    checks.append("groups are converging bubbles")

    distances = result.shortest_paths
    if distances.shape[0] != dendrogram.num_leaves:
        raise ValidationError("shortest-path matrix size does not match the dendrogram")
    if np.any(np.diag(distances) != 0.0):
        raise ValidationError("shortest-path matrix has a non-zero diagonal")
    if not np.all(np.isfinite(distances)):
        raise ValidationError("shortest-path matrix has unreachable pairs (TMFG must be connected)")
    checks.append("shortest paths are finite with a zero diagonal")
    return checks


def validate_pipeline_result(result: PipelineResult) -> List[str]:
    """Validate a full TMFG + DBHT pipeline result; returns the checks run."""
    checks = validate_tmfg_result(result.tmfg)
    checks += validate_dbht_result(result.dbht, num_vertices=result.tmfg.graph.num_vertices)
    expected_steps = {"tmfg", "apsp", "bubble-tree", "hierarchy"}
    if set(result.step_seconds) != expected_steps:
        raise ValidationError(
            f"step timings {set(result.step_seconds)} do not match {expected_steps}"
        )
    checks.append("step timings cover all phases")
    return checks
