"""Directing bubble-tree edges — Algorithm 3.

Every bubble-tree edge corresponds to a separating triangle of the TMFG; the
DBHT directs the edge towards the side (interior or exterior) to which the
triangle is more strongly connected.  The original algorithm runs a BFS per
separating triangle, Theta(n^2) work in total; the paper's algorithm
exploits the bubble-tree invariant (all descendants of an edge lie in the
interior of its separating triangle) to compute every direction in a single
post-order traversal, Theta(n) work.

Both algorithms are implemented here: :func:`compute_directions` is the
linear-work recursive/post-order version, and :func:`compute_directions_bfs`
is the original baseline, used for cross-validation in the tests and for the
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.bubble_tree import BubbleTree
from repro.graph.traversal import reachable_set
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker


@dataclass
class DirectionResult:
    """Directions of the bubble-tree edges.

    ``towards_child[b]`` is ``True`` when the edge between bubble ``b`` and
    its parent is directed parent -> ``b`` (i.e. ``INVAL > OUTVAL`` for the
    separating triangle), ``False`` when it is directed ``b`` -> parent.
    The root has no entry.  ``in_values``/``out_values`` record the two sums
    for inspection and testing.
    """

    towards_child: Dict[int, bool]
    in_values: Dict[int, float]
    out_values: Dict[int, float]

    def out_degree(self, tree: BubbleTree, bubble_id: int) -> int:
        """Out-degree of a bubble in the directed bubble tree."""
        degree = 0
        bubble = tree.bubble(bubble_id)
        if bubble.parent is not None and not self.towards_child[bubble_id]:
            degree += 1
        for child in bubble.children:
            if self.towards_child[child]:
                degree += 1
        return degree

    def converging_bubbles(self, tree: BubbleTree) -> List[int]:
        """Bubbles with no outgoing edges (the local cluster centres)."""
        return [
            bubble.id
            for bubble in tree.bubbles
            if self.out_degree(tree, bubble.id) == 0
        ]

    def directed_neighbors(self, tree: BubbleTree, bubble_id: int) -> List[int]:
        """Bubbles reachable from ``bubble_id`` by following one directed edge."""
        result = []
        bubble = tree.bubble(bubble_id)
        if bubble.parent is not None and not self.towards_child[bubble_id]:
            result.append(bubble.parent)
        for child in bubble.children:
            if self.towards_child[child]:
                result.append(child)
        return result

    def reachable_converging_bubbles(self, tree: BubbleTree) -> Dict[int, Set[int]]:
        """For every bubble, the set of converging bubbles it can reach.

        Mirrors the per-bubble BFS on Lines 5–6 of Algorithm 4.
        """
        converging = set(self.converging_bubbles(tree))
        reach: Dict[int, Set[int]] = {}
        for bubble in tree.bubbles:
            visited = {bubble.id}
            stack = [bubble.id]
            found: Set[int] = set()
            while stack:
                current = stack.pop()
                if current in converging:
                    found.add(current)
                for neighbor in self.directed_neighbors(tree, current):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        stack.append(neighbor)
            reach[bubble.id] = found
        return reach


def compute_directions(
    tree: BubbleTree,
    graph: WeightedGraph,
    tracker: Optional[WorkSpanTracker] = None,
) -> DirectionResult:
    """Direct all bubble-tree edges in linear work (Algorithm 3).

    The traversal is post-order: each bubble returns to its parent the sum of
    edge weights from the corners of its separating triangle into its
    interior; the parent folds those sums into its own corner sums via
    ``WRITE_ADD`` semantics.  ``OUTVAL`` is derived from the weighted degrees
    as in the paper:  ``OUTVAL = deg(vx)+deg(vy)+deg(vz) - INVAL
    - 2 (w(vx,vy)+w(vx,vz)+w(vy,vz))``.
    """
    towards_child: Dict[int, bool] = {}
    in_values: Dict[int, float] = {}
    out_values: Dict[int, float] = {}
    # r[b] maps each corner of b's separating triangle to the accumulated
    # weight from that corner into b's interior.
    corner_sums: Dict[int, Dict[int, float]] = {}

    order = tree.topological_order()
    work = 0.0
    # Post-order: process children before parents.
    for bubble_id in reversed(order):
        bubble = tree.bubble(bubble_id)
        if bubble.parent is None:
            continue
        triangle = tree.separating_triangle(bubble_id)
        interior_vertex = tree.interior_vertex(bubble_id)
        sums = {corner: graph.weight(corner, interior_vertex) for corner in triangle}
        # Fold in the contributions of the children's interiors (they are
        # also in this bubble's interior).
        for child_id in bubble.children:
            child_sums = corner_sums.get(child_id, {})
            for corner, value in child_sums.items():
                if corner in sums:
                    sums[corner] += value
        corner_sums[bubble_id] = sums
        vx, vy, vz = sorted(triangle)
        in_value = sum(sums.values())
        triangle_weight = (
            graph.weight(vx, vy) + graph.weight(vx, vz) + graph.weight(vy, vz)
        )
        degree_sum = (
            graph.weighted_degree(vx)
            + graph.weighted_degree(vy)
            + graph.weighted_degree(vz)
        )
        out_value = degree_sum - in_value - 2.0 * triangle_weight
        in_values[bubble_id] = in_value
        out_values[bubble_id] = out_value
        towards_child[bubble_id] = in_value > out_value
        work += 1.0

    if tracker is not None:
        tracker.add("bubble-tree", work=work, span=float(tree.height() + 1))
    return DirectionResult(
        towards_child=towards_child, in_values=in_values, out_values=out_values
    )


def compute_directions_bfs(
    tree: BubbleTree,
    graph: WeightedGraph,
    tracker: Optional[WorkSpanTracker] = None,
) -> DirectionResult:
    """Original quadratic-work direction computation (baseline).

    For every separating triangle, remove its three vertices from the graph,
    find the side containing the child bubble's interior vertex with a BFS,
    and sum the edge weights from the triangle's corners to each side.
    Produces the same directions as :func:`compute_directions`.
    """
    towards_child: Dict[int, bool] = {}
    in_values: Dict[int, float] = {}
    out_values: Dict[int, float] = {}
    work = 0.0
    for bubble in tree.bubbles:
        if bubble.parent is None:
            continue
        triangle = tree.separating_triangle(bubble.id)
        interior_seed = tree.interior_vertex(bubble.id)
        interior = reachable_set(graph, interior_seed, blocked=set(triangle))
        in_value = 0.0
        out_value = 0.0
        for corner in triangle:
            for neighbor, weight in graph.neighbors(corner):
                if neighbor in triangle:
                    continue
                if neighbor in interior:
                    in_value += weight
                else:
                    out_value += weight
        in_values[bubble.id] = in_value
        out_values[bubble.id] = out_value
        towards_child[bubble.id] = in_value > out_value
        work += float(graph.num_vertices)
    if tracker is not None:
        tracker.add("bubble-tree-bfs", work=work, span=float(len(in_values)))
    return DirectionResult(
        towards_child=towards_child, in_values=in_values, out_values=out_values
    )
