"""Three-level complete-linkage hierarchy and height assignment — Lines 24–33
of Algorithm 4 and the "Dendrogram Heights" paragraph of Section V-D.

The final dendrogram is assembled from three nested complete-linkage runs:

1. *intra-bubble* — within every subgroup (vertices sharing both their
   converging-bubble assignment and their bubble assignment);
2. *inter-bubble* — the subgroup dendrogram roots of each group;
3. *inter-group* — the group dendrogram roots.

Because the three levels use incompatible distance scales, the heights are
re-assigned afterwards: inter-group nodes get the number of converging
bubbles among their descendants, and the ``n_b - 1`` nodes inside a group of
``n_b`` vertices get the heights ``1/(n_b-1), ..., 1/2, 1`` in a specific
sorted order (intra-bubble nodes first, ordered by bubble and merge
distance, then inter-bubble nodes ordered by merge distance), which keeps
the hierarchy monotone and places every group root at height 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.hac import linkage
from repro.core.assignment import AssignmentResult
from repro.dendrogram.node import Dendrogram
from repro.parallel.cost_model import WorkSpanTracker


@dataclass
class _Cluster:
    """A partially built cluster: its dendrogram node id and its leaves."""

    node_id: int
    vertices: List[int]
    group_count: int = 1


def _max_linkage_matrix(
    clusters: Sequence[_Cluster], shortest_paths: np.ndarray
) -> np.ndarray:
    """Complete-linkage distances between clusters (max pairwise distance)."""
    k = len(clusters)
    matrix = np.zeros((k, k), dtype=float)
    for i in range(k):
        for j in range(i + 1, k):
            block = shortest_paths[np.ix_(clusters[i].vertices, clusters[j].vertices)]
            value = float(block.max())
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


def _run_level(
    dendrogram: Dendrogram,
    clusters: List[_Cluster],
    shortest_paths: np.ndarray,
    level: str,
    **metadata: object,
) -> Tuple[_Cluster, List[Tuple[float, int]]]:
    """Complete-linkage over ``clusters``; returns the root cluster and the
    ``(merge distance, node id)`` pairs of the internal nodes created."""
    if len(clusters) == 1:
        return clusters[0], []
    distance_matrix = _max_linkage_matrix(clusters, shortest_paths)
    merges = linkage(distance_matrix, method="complete")
    # Local cluster ids: 0..k-1 are the input clusters, k+i is the i-th merge.
    local: Dict[int, _Cluster] = {i: cluster for i, cluster in enumerate(clusters)}
    created: List[Tuple[float, int]] = []
    k = len(clusters)
    for index, (a, b, distance, _) in enumerate(merges):
        left = local[int(a)]
        right = local[int(b)]
        node_id = dendrogram.merge(
            left.node_id,
            right.node_id,
            height=float(distance),
            distance=float(distance),
            level=level,
            **metadata,
        )
        merged = _Cluster(
            node_id=node_id,
            vertices=left.vertices + right.vertices,
            group_count=left.group_count + right.group_count,
        )
        local[k + index] = merged
        created.append((float(distance), node_id))
    root = local[k + len(merges) - 1]
    return root, created


def build_hierarchy(
    assignment: AssignmentResult,
    shortest_paths: np.ndarray,
    tracker: Optional[WorkSpanTracker] = None,
) -> Dendrogram:
    """Build the DBHT dendrogram from the vertex assignments.

    ``shortest_paths`` is the all-pairs shortest-path matrix of the filtered
    graph under the dissimilarity weights; it provides both the linkage
    distances and (indirectly, through the assignment) the structure.
    """
    num_vertices = len(assignment.group)
    dendrogram = Dendrogram(num_vertices)
    work = 0.0

    groups = assignment.groups()
    subgroups = assignment.subgroups()

    group_clusters: List[_Cluster] = []
    # Height bookkeeping: per group, the internal nodes created at each level.
    per_group_intra: Dict[int, List[Tuple[int, float, int]]] = {}
    per_group_inter: Dict[int, List[Tuple[float, int]]] = {}

    for group_id in sorted(groups):
        subgroup_clusters: List[_Cluster] = []
        intra_records: List[Tuple[int, float, int]] = []
        bubbles_in_group = sorted(
            {bubble for (g, bubble) in subgroups if g == group_id}
        )
        for bubble_id in bubbles_in_group:
            vertices = subgroups[(group_id, bubble_id)]
            leaf_clusters = [_Cluster(node_id=v, vertices=[v]) for v in vertices]
            root, created = _run_level(
                dendrogram,
                leaf_clusters,
                shortest_paths,
                level="intra",
                group=group_id,
                bubble=bubble_id,
            )
            work += float(len(vertices) ** 2)
            for distance, node_id in created:
                intra_records.append((bubble_id, distance, node_id))
            subgroup_clusters.append(
                _Cluster(node_id=root.node_id, vertices=list(root.vertices))
            )
        group_root, inter_created = _run_level(
            dendrogram,
            subgroup_clusters,
            shortest_paths,
            level="inter_bubble",
            group=group_id,
        )
        work += float(len(subgroup_clusters) ** 2)
        per_group_intra[group_id] = intra_records
        per_group_inter[group_id] = inter_created
        group_clusters.append(
            _Cluster(node_id=group_root.node_id, vertices=list(group_root.vertices))
        )

    final_root, inter_group_created = _run_level(
        dendrogram,
        group_clusters,
        shortest_paths,
        level="inter_group",
    )
    work += float(len(group_clusters) ** 2)

    _assign_heights(
        dendrogram,
        groups,
        per_group_intra,
        per_group_inter,
        inter_group_created,
    )

    if tracker is not None:
        tracker.add("hierarchy", work=work, span=float(np.log2(max(num_vertices, 2)) ** 2))
    if not dendrogram.is_complete:
        raise RuntimeError("hierarchy construction did not produce a complete dendrogram")
    return dendrogram


def _assign_heights(
    dendrogram: Dendrogram,
    groups: Dict[int, List[int]],
    per_group_intra: Dict[int, List[Tuple[int, float, int]]],
    per_group_inter: Dict[int, List[Tuple[float, int]]],
    inter_group_created: List[Tuple[float, int]],
) -> None:
    """Re-assign dendrogram heights as described in Section V-D."""
    # Nodes inside each group: intra nodes first (by bubble, then merge
    # distance, then creation order), followed by inter-bubble nodes (by
    # merge distance, then creation order).  They receive the heights
    # 1/(n_b-1), 1/(n_b-2), ..., 1/2, 1 in that order.
    for group_id, vertices in groups.items():
        n_b = len(vertices)
        if n_b <= 1:
            continue
        ordered: List[int] = []
        intra = sorted(
            per_group_intra.get(group_id, []),
            key=lambda record: (record[0], record[1], record[2]),
        )
        ordered.extend(node_id for _, _, node_id in intra)
        inter = sorted(
            per_group_inter.get(group_id, []), key=lambda record: (record[0], record[1])
        )
        ordered.extend(node_id for _, node_id in inter)
        if len(ordered) != n_b - 1:
            raise RuntimeError(
                f"group {group_id} has {len(ordered)} internal nodes, expected {n_b - 1}"
            )
        heights = [1.0 / (n_b - 1 - index) for index in range(n_b - 1)]
        for node_id, height in zip(ordered, heights):
            dendrogram.set_height(node_id, height)

    # Inter-group nodes: height = number of converging bubbles (groups) in
    # the node's descendants.
    for _, node_id in inter_group_created:
        node = dendrogram.node(node_id)
        group_count = _count_group_roots(dendrogram, node_id, per_group_inter, groups)
        dendrogram.set_height(node_id, float(group_count))


def _count_group_roots(
    dendrogram: Dendrogram,
    node_id: int,
    per_group_inter: Dict[int, List[Tuple[float, int]]],
    groups: Dict[int, List[int]],
) -> int:
    """Number of groups whose vertices appear under ``node_id``."""
    leaves = set(dendrogram.leaves_under(node_id))
    count = 0
    for group_id, vertices in groups.items():
        if leaves & set(vertices):
            count += 1
    return count
