"""Core algorithms from the paper.

* :mod:`repro.core.tmfg` — Algorithm 1: prefix-batched parallel TMFG
  construction (``prefix=1`` reproduces the sequential TMFG exactly).
* :mod:`repro.core.bubble_tree` — Algorithm 2: bubble tree built on the fly
  during TMFG construction.
* :mod:`repro.core.direction` — Algorithm 3: linear-work recursive direction
  of bubble-tree edges, plus the original BFS-based baseline.
* :mod:`repro.core.assignment` — Lines 1–23 of Algorithm 4: converging
  bubbles, group and bubble assignment of vertices.
* :mod:`repro.core.hierarchy` — Lines 24–33 of Algorithm 4: three-level
  complete linkage and dendrogram-height reassignment.
* :mod:`repro.core.dbht` — the full parallel DBHT for TMFG.
* :mod:`repro.core.pipeline` — one-call public API (``tmfg_dbht``).
"""

from repro.core.assignment import AssignmentResult, assign_vertices
from repro.core.bubble_tree import Bubble, BubbleTree
from repro.core.dbht import DBHTResult, dbht
from repro.core.direction import compute_directions, compute_directions_bfs
from repro.core.gains import GainTable
from repro.core.hierarchy import build_hierarchy
from repro.core.pipeline import tmfg_dbht
from repro.core.tmfg import TMFGResult, construct_tmfg
from repro.core.validate import (
    ValidationError,
    validate_dbht_result,
    validate_pipeline_result,
    validate_tmfg_result,
)

__all__ = [
    "AssignmentResult",
    "assign_vertices",
    "Bubble",
    "BubbleTree",
    "DBHTResult",
    "dbht",
    "compute_directions",
    "compute_directions_bfs",
    "GainTable",
    "build_hierarchy",
    "tmfg_dbht",
    "TMFGResult",
    "construct_tmfg",
    "ValidationError",
    "validate_dbht_result",
    "validate_pipeline_result",
    "validate_tmfg_result",
]
