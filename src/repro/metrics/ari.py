"""Adjusted Rand Index (Hubert & Arabie, 1985).

This is the primary quality metric of the paper's evaluation (Figs. 1, 6, 8,
9 and the stock-clustering ARI in Section VII-B).  The score is 1 for a
perfect match and has expected value 0 for a random assignment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.contingency import contingency_table


def _comb2(x: np.ndarray) -> np.ndarray:
    """Vectorised ``x choose 2``."""
    x = np.asarray(x, dtype=np.float64)
    return x * (x - 1.0) / 2.0


def rand_index(labels_true: Sequence, labels_pred: Sequence) -> float:
    """Unadjusted Rand Index: fraction of agreeing pairs."""
    table, row_sums, col_sums = contingency_table(labels_true, labels_pred)
    n = float(row_sums.sum())
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1.0) / 2.0
    same_both = _comb2(table).sum()
    same_true = _comb2(row_sums).sum()
    same_pred = _comb2(col_sums).sum()
    agreements = total_pairs + 2.0 * same_both - same_true - same_pred
    return float(agreements / total_pairs)


def adjusted_rand_index(labels_true: Sequence, labels_pred: Sequence) -> float:
    """Adjusted Rand Index between two labelings.

    Uses the formula from Section VII of the paper:

        ARI = (sum_ij C(n_ij,2) - [sum_i C(a_i,2) sum_j C(b_j,2)] / C(n,2))
              / (0.5 [sum_i C(a_i,2) + sum_j C(b_j,2)]
                 - [sum_i C(a_i,2) sum_j C(b_j,2)] / C(n,2))
    """
    table, row_sums, col_sums = contingency_table(labels_true, labels_pred)
    n = float(row_sums.sum())
    if n < 2:
        return 1.0
    sum_comb = _comb2(table).sum()
    sum_comb_rows = _comb2(row_sums).sum()
    sum_comb_cols = _comb2(col_sums).sum()
    total_pairs = n * (n - 1.0) / 2.0
    expected = sum_comb_rows * sum_comb_cols / total_pairs
    max_index = 0.5 * (sum_comb_rows + sum_comb_cols)
    denominator = max_index - expected
    if denominator == 0.0:
        # Both labelings are trivial (all singletons or a single cluster).
        return 1.0 if sum_comb == expected else 0.0
    return float((sum_comb - expected) / denominator)
