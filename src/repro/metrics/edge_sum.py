"""Filtered-graph quality: total kept edge weight.

TMFG/PMFG approximate the NP-hard Weighted Maximum Planar Graph problem, so
the natural quality measure of a filtered graph is the sum of the edge
weights it keeps.  Figure 7 of the paper reports, for each prefix size, the
ratio of this sum relative to the sequential TMFG (and to the PMFG).
"""

from __future__ import annotations


import numpy as np

from repro.graph.weighted_graph import WeightedGraph


def edge_weight_sum(graph_or_edges, weights: np.ndarray = None) -> float:
    """Sum of edge weights of a filtered graph.

    Accepts either a :class:`WeightedGraph` or an iterable of ``(u, v)``
    edges plus a dense weight matrix.
    """
    if isinstance(graph_or_edges, WeightedGraph):
        return graph_or_edges.edge_weight_sum()
    if weights is None:
        raise ValueError("a dense weight matrix is required with an edge list")
    weights = np.asarray(weights, dtype=float)
    return float(sum(weights[u, v] for u, v in graph_or_edges))


def edge_weight_sum_ratio(candidate, reference, weights: np.ndarray = None) -> float:
    """Ratio of kept edge weight: candidate graph / reference graph.

    This is the quantity plotted in Fig. 7 (with the sequential TMFG as the
    reference).  A ratio above 1 means the candidate kept more total weight
    than the reference.
    """
    reference_sum = edge_weight_sum(reference, weights)
    if reference_sum == 0:
        raise ValueError("reference graph has zero total edge weight")
    return edge_weight_sum(candidate, weights) / reference_sum
