"""Adjusted Mutual Information (Vinh, Epps & Bailey, 2010).

The paper reports that AMI showed the same trends as ARI; the metric is
implemented here so both can be computed by the experiment harness.  The
expected mutual information under the permutation model uses the
hypergeometric formula evaluated in log space for numerical stability.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import gammaln

from repro.metrics.contingency import contingency_table


def entropy(labels: Sequence) -> float:
    """Shannon entropy (natural log) of a labeling."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-np.sum(probabilities * np.log(probabilities)))


def mutual_information(labels_true: Sequence, labels_pred: Sequence) -> float:
    """Mutual information (natural log) between two labelings."""
    table, row_sums, col_sums = contingency_table(labels_true, labels_pred)
    n = float(row_sums.sum())
    if n == 0:
        return 0.0
    mi = 0.0
    for i in range(table.shape[0]):
        for j in range(table.shape[1]):
            nij = table[i, j]
            if nij == 0:
                continue
            mi += (nij / n) * np.log(n * nij / (row_sums[i] * col_sums[j]))
    return float(max(mi, 0.0))


def expected_mutual_information(row_sums: np.ndarray, col_sums: np.ndarray) -> float:
    """Expected MI of two random labelings with the given marginals."""
    n = float(row_sums.sum())
    if n == 0:
        return 0.0
    emi = 0.0
    log_n = np.log(n)
    gln_n = gammaln(n + 1)
    for a in row_sums:
        a = float(a)
        for b in col_sums:
            b = float(b)
            lower = max(1.0, a + b - n)
            upper = min(a, b)
            nij = lower
            while nij <= upper + 1e-9:
                term1 = (nij / n) * (np.log(nij) + log_n - np.log(a) - np.log(b))
                log_term2 = (
                    gammaln(a + 1)
                    + gammaln(b + 1)
                    + gammaln(n - a + 1)
                    + gammaln(n - b + 1)
                    - gln_n
                    - gammaln(nij + 1)
                    - gammaln(a - nij + 1)
                    - gammaln(b - nij + 1)
                    - gammaln(n - a - b + nij + 1)
                )
                emi += term1 * np.exp(log_term2)
                nij += 1.0
    return float(emi)


def adjusted_mutual_information(
    labels_true: Sequence, labels_pred: Sequence, average_method: str = "arithmetic"
) -> float:
    """Adjusted Mutual Information between two labelings.

    ``average_method`` chooses the normalisation of the denominator:
    ``"arithmetic"`` (the scikit-learn default used by the paper's scripts),
    ``"max"``, or ``"min"``.
    """
    table, row_sums, col_sums = contingency_table(labels_true, labels_pred)
    n = float(row_sums.sum())
    if n == 0:
        return 1.0
    # Degenerate cases: a single cluster on both sides is a perfect match.
    if table.shape[0] == 1 and table.shape[1] == 1:
        return 1.0
    mi = mutual_information(labels_true, labels_pred)
    emi = expected_mutual_information(row_sums, col_sums)
    h_true = entropy(labels_true)
    h_pred = entropy(labels_pred)
    if average_method == "arithmetic":
        normalizer = 0.5 * (h_true + h_pred)
    elif average_method == "max":
        normalizer = max(h_true, h_pred)
    elif average_method == "min":
        normalizer = min(h_true, h_pred)
    else:
        raise ValueError(f"unknown average_method: {average_method!r}")
    denominator = normalizer - emi
    if abs(denominator) < 1e-15:
        return 1.0 if abs(mi - emi) < 1e-15 else 0.0
    return float((mi - emi) / denominator)
