"""Clustering-quality and filtered-graph-quality metrics.

The paper evaluates clustering quality with the Adjusted Rand Index (ARI)
and Adjusted Mutual Information (AMI), and filtered-graph quality with the
ratio of kept edge weight relative to the sequential TMFG / PMFG (Fig. 7).
All metrics are implemented from scratch here.
"""

from repro.metrics.ami import adjusted_mutual_information, mutual_information, entropy
from repro.metrics.ari import adjusted_rand_index, rand_index
from repro.metrics.contingency import contingency_table
from repro.metrics.edge_sum import edge_weight_sum, edge_weight_sum_ratio

__all__ = [
    "adjusted_mutual_information",
    "mutual_information",
    "entropy",
    "adjusted_rand_index",
    "rand_index",
    "contingency_table",
    "edge_weight_sum",
    "edge_weight_sum_ratio",
]
