"""Contingency tables between two labelings.

Both the ARI and AMI are computed from the contingency table ``n_ij``: the
number of objects that are in ground-truth cluster ``i`` and predicted
cluster ``j``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _encode(labels: Sequence) -> np.ndarray:
    """Map arbitrary hashable labels to consecutive integers 0..k-1."""
    labels = np.asarray(labels)
    _, encoded = np.unique(labels, return_inverse=True)
    return encoded


def contingency_table(
    labels_true: Sequence, labels_pred: Sequence
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Contingency table and its marginals.

    Returns ``(table, row_sums, col_sums)`` where ``table[i, j]`` counts
    objects with true label ``i`` and predicted label ``j``.
    """
    true = _encode(labels_true)
    pred = _encode(labels_pred)
    if true.shape != pred.shape:
        raise ValueError(
            f"label arrays must have the same length, got {true.shape} and {pred.shape}"
        )
    if true.ndim != 1:
        raise ValueError("labels must be one-dimensional")
    n_true = int(true.max()) + 1 if true.size else 0
    n_pred = int(pred.max()) + 1 if pred.size else 0
    table = np.zeros((n_true, n_pred), dtype=np.int64)
    np.add.at(table, (true, pred), 1)
    return table, table.sum(axis=1), table.sum(axis=0)
