"""The analysis engine: walk a tree, parse, run rules, apply pragmas.

:func:`run_lint` is the one entry point: given paths (files or
directories), it parses every ``*.py`` file with :mod:`ast`, collects the
``# repro: allow[...]`` pragma map per file, runs the selected rules
(module-scoped per file, project-scoped once over the whole
:class:`Project`), marks findings suppressed/baselined, and returns a
:class:`LintResult`.

Everything here is stdlib-only on purpose: the CI lint job runs on a
bare interpreter (no numpy/scipy), which also guarantees the checker
itself can never import the code it is judging.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.pragmas import allowed_rules_by_line, is_allowed
from repro.analysis.rules import resolve_rules

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  # absolute
    relpath: str  # as reported in findings (cwd-relative when possible)
    source: str
    tree: ast.Module
    allows: Dict[int, FrozenSet[str]]


@dataclass
class Project:
    """Every module one lint run parsed, for project-scoped rules."""

    roots: Tuple[str, ...]
    modules: List[ModuleInfo] = field(default_factory=list)

    def module_for(self, relpath: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


@dataclass
class LintResult:
    """The outcome of one :func:`run_lint` call."""

    findings: List[Finding]
    files_checked: int
    rule_ids: Tuple[str, ...]

    @property
    def reported(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.reported]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.reported


def _display_path(path: str) -> str:
    """Report paths relative to the working directory when they are under
    it (stable for CI logs and baselines), absolute otherwise."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    try:
        relative = os.path.relpath(absolute, cwd)
    except ValueError:  # different drive on Windows
        return absolute.replace(os.sep, "/")
    if relative.startswith(".."):
        return absolute.replace(os.sep, "/")
    return relative.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``*.py`` file under ``paths`` (files pass through), sorted."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIPPED_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(dirpath, filename)
                    if full not in seen:
                        seen.add(full)
                        collected.append(full)
    return collected


def load_module(path: str) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    """Parse one file; on a syntax/decoding error return a finding instead."""
    relpath = _display_path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as error:
        return None, Finding(
            path=relpath, line=1, col=0, rule="parse-error",
            message=f"cannot read file: {error}",
            hint="fix the file encoding or permissions",
        )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, Finding(
            path=relpath, line=error.lineno or 1, col=(error.offset or 1) - 1,
            rule="parse-error", message=f"syntax error: {error.msg}",
            hint="the file does not parse; every other rule was skipped for it",
        )
    return (
        ModuleInfo(
            path=os.path.abspath(path),
            relpath=relpath,
            source=source,
            tree=tree,
            allows=allowed_rules_by_line(source),
        ),
        None,
    )


def run_lint(
    paths: Sequence[str],
    *,
    rule_ids: Optional[Sequence[str]] = None,
    baseline: Optional[FrozenSet[str]] = None,
) -> LintResult:
    """Lint ``paths`` with the selected rules (default: the full pack)."""
    rules = resolve_rules(rule_ids)
    if not paths:
        raise ValueError("no paths to lint")
    for path in paths:
        if not os.path.exists(path):
            raise ValueError(f"no such file or directory: {path}")
    project = Project(roots=tuple(os.path.abspath(path) for path in paths))
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        module, parse_finding = load_module(file_path)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert module is not None
        project.modules.append(module)
    module_rules = [rule for rule in rules if rule.scope == "module"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    for module in project.modules:
        for rule in module_rules:
            findings.extend(rule.check_module(module))
    for rule in project_rules:
        findings.extend(rule.check_project(project))
    findings = [_apply_pragmas(project, finding) for finding in findings]
    if baseline:
        findings = [
            finding.from_dict({**finding.to_dict(), "baselined": True})
            if finding.reported and finding.key() in baseline
            else finding
            for finding in findings
        ]
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.rule))
    return LintResult(
        findings=findings,
        files_checked=len(project.modules),
        rule_ids=tuple(rule.id for rule in rules),
    )


def _apply_pragmas(project: Project, finding: Finding) -> Finding:
    module = project.module_for(finding.path)
    if module is None:
        return finding
    if is_allowed(module.allows, finding.line, finding.rule):
        return Finding.from_dict({**finding.to_dict(), "suppressed": True})
    return finding
