"""Text and JSON reporters for lint results.

The text form is one finding per line (``path:line:col: [rule] message``
plus an indented hint) with a one-line summary — the shape CI logs and
editors parse.  The JSON form is a versioned document embedding every
finding's :meth:`~repro.analysis.findings.Finding.to_dict`, the rule
catalogue, and the counts; it round-trips losslessly back through
:meth:`Finding.from_dict`, which the self-tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.engine import LintResult
from repro.analysis.pragmas import PRAGMA_SYNTAX
from repro.analysis.rules import rule_catalogue

REPORT_VERSION = 1


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    """The human-readable report, reported findings first."""
    lines: List[str] = []
    for finding in result.reported:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: [{finding.rule}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if show_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: [{finding.rule}] "
                f"suppressed by pragma: {finding.message}"
            )
        for finding in result.baselined:
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: [{finding.rule}] "
                f"baselined: {finding.message}"
            )
    summary = (
        f"{len(result.reported)} finding(s) "
        f"({len(result.suppressed)} suppressed by pragma, "
        f"{len(result.baselined)} baselined) "
        f"across {result.files_checked} file(s); "
        f"rules: {', '.join(result.rule_ids)}"
    )
    if result.reported:
        summary += f"\nsuppress deliberate violations inline with `{PRAGMA_SYNTAX}`"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, Any]:
    """The JSON-safe report document (versioned, lossless findings)."""
    return {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules": [row for row in rule_catalogue() if row["id"] in result.rule_ids],
        "counts": {
            "reported": len(result.reported),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "total": len(result.findings),
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
