"""Entry point for ``python -m repro.analysis`` (same as ``repro lint``)."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
