"""The :class:`Finding` record every rule emits.

A finding is one concrete, located violation: rule id, file:line(:col),
a one-line message, and a fix hint.  Findings are plain frozen
dataclasses that round-trip losslessly through :meth:`Finding.to_dict` /
:meth:`Finding.from_dict`, which is what the ``--json`` reporter and the
baseline file rely on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One located rule violation.

    Attributes
    ----------
    path:
        File the finding points at, as reported by the engine (relative
        to the working directory when possible).
    line / col:
        1-based line and 0-based column of the offending node.
    rule:
        The rule id (``available_rules()`` lists them).
    message:
        What is wrong, concretely, at this site.
    hint:
        How to fix it (or how to legitimately suppress it).
    suppressed:
        An inline ``# repro: allow[rule-id]`` pragma covers this line.
    baselined:
        The finding's :meth:`key` appears in the ``--baseline`` file.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def reported(self) -> bool:
        """Whether this finding fails the lint run."""
        return not (self.suppressed or self.baselined)

    def key(self) -> str:
        """Line-number-free identity used by baseline files.

        Leaving the line out means unrelated edits above a baselined
        finding do not resurrect it.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        unknown = sorted(set(payload) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ValueError(f"unknown Finding keys {unknown}")
        return cls(**payload)
