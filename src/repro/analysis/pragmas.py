"""Inline suppression pragmas: ``# repro: allow[rule-id]``.

A pragma on the *same physical line* as a finding suppresses it — the
engine reports it as suppressed instead of failing the run.  Several ids
may be listed (``# repro: allow[hot-path-copy, async-blocking]``) and
``allow[*]`` suppresses every rule on that line.  Suppressions are meant
to be rare and carry a justification in the surrounding comment or
docstring; the meta-test that keeps HEAD clean also keeps the pragma
inventory reviewable.

Comments are located with :mod:`tokenize` so a ``# repro: allow[...]``
inside a string literal is never honoured; files tokenize breaks on fall
back to a per-line regex scan (the engine already reported their syntax
errors separately).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Human-readable pragma syntax, for reporters and docs.
PRAGMA_SYNTAX = "# repro: allow[rule-id]"

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def _parse_ids(spec: str) -> FrozenSet[str]:
    return frozenset(token.strip() for token in spec.split(",") if token.strip())


def allowed_rules_by_line(source: str) -> Dict[int, FrozenSet[str]]:
    """Map each pragma-carrying line number to the rule ids it allows."""
    allows: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match:
                ids = _parse_ids(match.group(1))
                if ids:
                    allows[token.start[0]] = ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unterminated strings etc.: fall back to a plain line scan so a
        # broken file still reports its pragmas predictably.
        allows = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if match:
                ids = _parse_ids(match.group(1))
                if ids:
                    allows[lineno] = ids
    return allows


def is_allowed(allows: Dict[int, FrozenSet[str]], line: int, rule_id: str) -> bool:
    """Whether a pragma on ``line`` suppresses ``rule_id``."""
    ids = allows.get(line)
    return ids is not None and (rule_id in ids or "*" in ids)
