"""Config/fingerprint/CLI coherence — the cross-module cache-key rule.

The content-addressed result cache (PR 4) keys on
``ClusteringConfig.to_dict()`` minus the explicit cache knobs.  That
makes correctness a *bookkeeping* property spread over three files:

* ``api/config.py`` — the ``ClusteringConfig`` dataclass fields;
* ``cache/fingerprint.py`` — ``FINGERPRINT_FIELDS`` (the fields the key
  consumes) and ``CACHE_KNOB_FIELDS`` (the explicit exclusion list);
* ``cli.py`` — ``_config_from_args``'s flag wiring, ``_FLAG_SPELLINGS``
  (error-message flag spellings) and ``_CONFIG_FILE_ONLY_FIELDS`` (knobs
  deliberately reachable only through ``--config`` files).

PR 6 showed how easy the bookkeeping is to miss: ``apsp_method`` and
``landmarks`` each had to be threaded through the fingerprint and the
CLI by hand.  This rule re-derives the three inventories from the ASTs
and flags every mismatch:

* a config field neither in ``FINGERPRINT_FIELDS`` nor in
  ``CACHE_KNOB_FIELDS`` (a knob that could silently share cache entries
  across different results — the worst failure mode);
* a stale name in either fingerprint tuple (or a field in both);
* a config field with no CLI wiring (not assigned in
  ``_config_from_args`` and not listed config-file-only);
* a stale field name in the CLI's spellings/exclusions.

The rule is project-scoped and anchors on content, not paths: any module
defining ``class ClusteringConfig`` is the config, any module assigning
``CACHE_KNOB_FIELDS`` is the fingerprint, any module assigning
``_FLAG_SPELLINGS`` is the CLI — so fixture copies under ``tests/`` are
checked by the same code that checks the real tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule, string_tuple


def _module_assign(tree: ast.AST, name: str) -> Optional[ast.AST]:
    """The value node of a module-level ``name = ...`` assignment."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def _config_fields(class_node: ast.ClassDef) -> Dict[str, int]:
    """Dataclass field name -> lineno from the class body's AnnAssigns."""
    fields: Dict[str, int] = {}
    for node in class_node.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields[node.target.id] = node.lineno
    return fields


def _find_config_class(project) -> Optional[Tuple[object, ast.ClassDef]]:
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "ClusteringConfig":
                return module, node
    return None


def _find_module_with(project, name: str):
    for module in project.modules:
        value = _module_assign(module.tree, name)
        if value is not None:
            return module, value
    return None, None


def _changes_keys(cli_tree: ast.AST) -> Dict[str, int]:
    """Field names assigned as ``changes["field"] = ...`` in the CLI."""
    keys: Dict[str, int] = {}
    for node in ast.walk(cli_tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "changes"
            ):
                index = target.slice
                if isinstance(index, ast.Constant) and isinstance(index.value, str):
                    keys.setdefault(index.value, node.lineno)
    return keys


def _flag_spellings(value_node: ast.AST) -> List[Tuple[str, int]]:
    """The field names (with linenos) from the ``_FLAG_SPELLINGS`` pairs."""
    spellings: List[Tuple[str, int]] = []
    if not isinstance(value_node, (ast.Tuple, ast.List)):
        return spellings
    for pair in value_node.elts:
        if (
            isinstance(pair, (ast.Tuple, ast.List))
            and pair.elts
            and isinstance(pair.elts[0], ast.Constant)
            and isinstance(pair.elts[0].value, str)
        ):
            spellings.append((pair.elts[0].value, pair.elts[0].lineno))
    return spellings


@register_rule
class ConfigFingerprintCoherence(Rule):
    """Cross-check ClusteringConfig fields vs fingerprint and CLI wiring."""

    id = "config-fingerprint"
    description = (
        "every ClusteringConfig field must be consumed by the cache "
        "fingerprint (FINGERPRINT_FIELDS) or explicitly excluded "
        "(CACHE_KNOB_FIELDS), and must be reachable from the CLI "
        "(_config_from_args or _CONFIG_FILE_ONLY_FIELDS) — otherwise a new "
        "knob can silently alias cache entries or become unreachable"
    )
    scope = "project"
    hint = (
        "add the field to FINGERPRINT_FIELDS in cache/fingerprint.py (or to "
        "CACHE_KNOB_FIELDS if it never changes results), and wire its CLI "
        "flag in _config_from_args (or list it in _CONFIG_FILE_ONLY_FIELDS)"
    )

    def check_project(self, project) -> Iterable[Finding]:
        anchor = _find_config_class(project)
        if anchor is None:
            return  # no config in this tree: rule not applicable
        config_module, class_node = anchor
        fields = _config_fields(class_node)
        yield from self._check_fingerprint(project, config_module, class_node, fields)
        yield from self._check_cli(project, config_module, fields)

    # -- fingerprint side --------------------------------------------------

    def _check_fingerprint(self, project, config_module, class_node, fields):
        knobs_module, knobs_value = _find_module_with(project, "CACHE_KNOB_FIELDS")
        if knobs_module is None:
            # Config without any fingerprint module in the scanned tree
            # (e.g. linting a subpackage): nothing to cross-check.
            return
        fingerprint_module, fingerprint_value = _find_module_with(
            project, "FINGERPRINT_FIELDS"
        )
        knob_entries = string_tuple(knobs_value) or []
        if fingerprint_module is None or fingerprint_value is None:
            yield Finding(
                path=knobs_module.relpath,
                line=1,
                col=0,
                rule=self.id,
                message=(
                    "CACHE_KNOB_FIELDS exists but FINGERPRINT_FIELDS is missing: "
                    "the fingerprint's field coverage is unaccounted"
                ),
                hint=self.hint,
            )
            return
        fingerprint_entries = string_tuple(fingerprint_value) or []
        consumed = {name for name, _ in fingerprint_entries}
        excluded = {name for name, _ in knob_entries}
        for name, line in sorted(fields.items(), key=lambda item: item[1]):
            if name not in consumed and name not in excluded:
                yield Finding(
                    path=config_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"ClusteringConfig field {name!r} is neither consumed by the "
                        "cache fingerprint (FINGERPRINT_FIELDS) nor explicitly "
                        "excluded (CACHE_KNOB_FIELDS)"
                    ),
                    hint=self.hint,
                )
        for name, line in fingerprint_entries + knob_entries:
            if name not in fields:
                yield Finding(
                    path=fingerprint_module.relpath if name in consumed else knobs_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"fingerprint accounting names {name!r}, which is not a "
                        "ClusteringConfig field (stale entry?)"
                    ),
                    hint=self.hint,
                )
        for name in sorted(consumed & excluded):
            yield Finding(
                path=fingerprint_module.relpath,
                line=1,
                col=0,
                rule=self.id,
                message=(
                    f"{name!r} appears in both FINGERPRINT_FIELDS and "
                    "CACHE_KNOB_FIELDS; a field is consumed or excluded, never both"
                ),
                hint=self.hint,
            )

    # -- CLI side ----------------------------------------------------------

    def _check_cli(self, project, config_module, fields):
        cli_module, spellings_value = _find_module_with(project, "_FLAG_SPELLINGS")
        if cli_module is None:
            return  # no CLI in the scanned tree
        changes = _changes_keys(cli_module.tree)
        _only_module, only_value = _find_module_with(project, "_CONFIG_FILE_ONLY_FIELDS")
        config_file_only = dict(string_tuple(only_value) or []) if only_value is not None else {}
        for name, line in _flag_spellings(spellings_value):
            if name not in fields:
                yield Finding(
                    path=cli_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"_FLAG_SPELLINGS names {name!r}, which is not a "
                        "ClusteringConfig field (stale flag spelling)"
                    ),
                    hint=self.hint,
                )
        for name, line in sorted(changes.items(), key=lambda item: item[1]):
            if name not in fields:
                yield Finding(
                    path=cli_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"_config_from_args assigns changes[{name!r}], which is not "
                        "a ClusteringConfig field"
                    ),
                    hint=self.hint,
                )
        for name, line in config_file_only.items():
            if name not in fields:
                yield Finding(
                    path=cli_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"_CONFIG_FILE_ONLY_FIELDS names {name!r}, which is not a "
                        "ClusteringConfig field (stale exclusion)"
                    ),
                    hint=self.hint,
                )
            elif name in changes:
                yield Finding(
                    path=cli_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"{name!r} is listed config-file-only but _config_from_args "
                        "wires a flag for it; drop the exclusion"
                    ),
                    hint=self.hint,
                )
        for name, line in sorted(fields.items(), key=lambda item: item[1]):
            if name not in changes and name not in config_file_only:
                yield Finding(
                    path=config_module.relpath,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=(
                        f"ClusteringConfig field {name!r} has no CLI wiring: it is "
                        "not assigned in _config_from_args and not listed in "
                        "_CONFIG_FILE_ONLY_FIELDS"
                    ),
                    hint=self.hint,
                )
