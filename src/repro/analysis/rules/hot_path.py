"""Hidden-copy rule for the zero-copy wire -> cache -> shm data path.

PR 7 collapsed the serve data path onto the buffer protocol: a binary
request body is decoded as a read-only ``np.frombuffer`` view
(`serve/wire.py`), fingerprinted straight through ``memoryview``
(`cache/fingerprint.py`), routed by content key (`serve/fleet/ring.py`),
and written once into the shared-memory segment (`parallel/shm.py`).
One stray ``.tobytes()`` or ``np.ascontiguousarray`` on that path
silently doubles the per-request memory traffic at large n — exactly the
kind of regression a refactor introduces without failing any test.

This rule flags byte-copying calls inside the hot-path modules.  Copies
that are *inherent* (an encoder must materialise a C-order buffer; a
non-contiguous array cannot be hashed through ``memoryview``) stay, with
a ``# repro: allow[hot-path-copy]`` pragma and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

#: Modules on the zero-copy path, matched by relpath suffix so fixture
#: trees (and alternate checkouts) are covered too.
HOT_PATH_SUFFIXES = (
    "serve/wire.py",
    "cache/fingerprint.py",
    "parallel/shm.py",
    "serve/fleet/ring.py",
)

#: numpy constructors that materialise a copy.  ``np.asarray`` and
#: ``np.frombuffer`` are the non-copying spellings and stay legal.
_COPYING_CONSTRUCTORS = frozenset(
    {
        "np.ascontiguousarray",
        "numpy.ascontiguousarray",
        "np.array",
        "numpy.array",
        "np.copy",
        "numpy.copy",
    }
)

#: Method calls that duplicate an array's bytes.
_COPYING_METHODS = frozenset({"tobytes", "copy"})


def is_hot_path(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in HOT_PATH_SUFFIXES)


@register_rule
class HiddenCopyOnHotPath(Rule):
    """Flag byte-copying calls in the zero-copy serve/cache/shm modules."""

    id = "hot-path-copy"
    description = (
        "a byte-copying call (.tobytes(), .copy(), np.array/ascontiguousarray) "
        "inside a zero-copy hot-path module (serve/wire.py, cache/fingerprint.py, "
        "parallel/shm.py, serve/fleet/ring.py) doubles per-request memory traffic"
    )
    hint = (
        "stay on the buffer protocol (memoryview / np.asarray / np.frombuffer); "
        "if the copy is inherent to the operation, pragma it with a one-line "
        "justification: # repro: allow[hot-path-copy]"
    )

    def check_module(self, module) -> Iterable[Finding]:
        if not is_hot_path(module.relpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _COPYING_CONSTRUCTORS:
                if dotted.endswith(".array") and self._copy_disabled(node):
                    continue
                yield self.finding(
                    module, node, f"{dotted}() materialises a copy on the zero-copy path"
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _COPYING_METHODS
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}() duplicates the buffer on the zero-copy path",
                )

    @staticmethod
    def _copy_disabled(call: ast.Call) -> bool:
        """``np.array(x, copy=False)`` is explicitly non-copying."""
        for keyword in call.keywords:
            if keyword.arg == "copy" and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is False
        return False
