"""Span-lifecycle rule for the observability layer.

A :meth:`Tracer.start_span` call hands back a live span that must be
closed — every closed span is what reaches the event log, the metrics
histograms, and a request's echoed trace block.  A span that is started
but never ended silently drops its subtree from every waterfall and
leaks the ambient-context token that parents subsequent spans.

The safe spellings are structural and cheap to verify per function:

* ``with tracer.start_span(...):`` (or ``async with``) — the context
  manager ends the span on every exit path, error flag included;
* ``span = tracer.start_span(...)`` where the *same function* later does
  ``with span:``, calls ``span.end()``, or returns the span (handing the
  lifecycle to the caller, as ``trace_span`` and the serve helpers do);
* ``return tracer.start_span(...)`` directly.

Anything else — a bare expression statement, a span passed straight into
another call, an assigned span that is never entered, ended, or returned
— is flagged.  Intentional hand-offs through other channels carry a
``# repro: allow[span-unclosed]`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule, walk_same_function


def _is_start_span(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "start_span"
    )


@register_rule
class SpanUnclosed(Rule):
    """Flag ``.start_span()`` calls whose span is never closed."""

    id = "span-unclosed"
    description = (
        "a .start_span() call that is not used as a context manager, .end()ed "
        "in the same function, or returned to the caller leaks an open span: "
        "its subtree never reaches the event log or the /metrics histograms"
    )
    hint = (
        "enter the span (`with tracer.start_span(...):`), call .end() on it "
        "before the function exits, or return it so the caller owns the "
        "lifecycle; deliberate hand-offs can pragma with "
        "# repro: allow[span-unclosed]"
    )

    def check_module(self, module) -> Iterable[Finding]:
        # Module top level (incl. class bodies) is one scope; every def —
        # nested or method — is its own.  walk_same_function keeps the
        # name-based tracking honest: a span assigned in one function and
        # ended in another is a hand-off this rule cannot see, and should
        # be spelled as a return or pragma'd.
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, scope)

    def _check_scope(self, module, scope: ast.AST) -> Iterable[Finding]:
        span_calls: List[ast.Call] = []
        safe_calls: Set[int] = set()  # used directly in an allowed position
        call_name: Dict[int, str] = {}  # call id -> name it was assigned to
        closed_names: Set[str] = set()  # entered via with / .end()ed / returned
        for node in walk_same_function(scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_start_span(item.context_expr):
                        safe_calls.add(id(item.context_expr))
                    elif isinstance(item.context_expr, ast.Name):
                        closed_names.add(item.context_expr.id)
            elif isinstance(node, ast.Return) and node.value is not None:
                if _is_start_span(node.value):
                    safe_calls.add(id(node.value))
                elif isinstance(node.value, ast.Name):
                    closed_names.add(node.value.id)
            elif isinstance(node, ast.Assign):
                if (
                    _is_start_span(node.value)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    call_name[id(node.value)] = node.targets[0].id
            elif isinstance(node, ast.AnnAssign):
                if _is_start_span(node.value) and isinstance(node.target, ast.Name):
                    call_name[id(node.value)] = node.target.id
            elif isinstance(node, ast.Call):
                if _is_start_span(node):
                    span_calls.append(node)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "end"
                    and isinstance(node.func.value, ast.Name)
                ):
                    closed_names.add(node.func.value.id)
        for call in span_calls:
            if id(call) in safe_calls:
                continue
            name = call_name.get(id(call))
            if name is not None and name in closed_names:
                continue
            where = f"assigned to {name!r} but" if name is not None else "started and"
            yield self.finding(
                module,
                call,
                f"span {where} never entered as a context manager, .end()ed, "
                f"or returned in this function",
            )
