"""The rule pack: base class, registry, and shared AST helpers.

A rule is a small object with an ``id``, a ``description`` (what
invariant it protects), a ``hint`` (how to fix a finding), and one of two
scopes:

* ``scope = "module"`` — :meth:`Rule.check_module` is called once per
  parsed file and yields findings local to it;
* ``scope = "project"`` — :meth:`Rule.check_project` sees every parsed
  module at once, for cross-module invariants like config/fingerprint
  coherence.

Rules register themselves with :func:`register_rule` (usable as a class
decorator); the engine runs :func:`default_rules` unless ``--rules``
narrows the set.  Adding a rule is: subclass, decorate, ship fixture
tests — see ``tests/test_analysis.py`` for the shape.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.analysis.findings import Finding


class Rule:
    """Base class for one invariant check."""

    id: str = ""
    description: str = ""
    hint: str = ""
    scope: str = "module"  # "module" | "project"

    def check_module(self, module) -> Iterable[Finding]:
        """Findings in one parsed module (module-scope rules)."""
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        """Findings across the whole parsed tree (project-scope rules)."""
        return ()

    def finding(self, module, node: ast.AST, message: str, *, hint: Optional[str] = None) -> Finding:
        """A :class:`Finding` at ``node`` in ``module`` (pragma flags are
        applied later by the engine)."""
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Register a rule class (instantiated once); class-decorator friendly."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def available_rules() -> Tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def default_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rule_id] for rule_id in available_rules()]


def resolve_rules(rule_ids: Optional[Iterable[str]]) -> List[Rule]:
    """The rules selected by ``rule_ids`` (``None`` = all), validated."""
    if rule_ids is None:
        return default_rules()
    selected = []
    for rule_id in rule_ids:
        if rule_id not in _REGISTRY:
            raise ValueError(
                f"unknown rule id {rule_id!r}; available: {list(available_rules())}"
            )
        selected.append(_REGISTRY[rule_id])
    return selected


def rule_catalogue() -> List[Dict[str, str]]:
    """Id/description/hint rows for ``--list-rules`` and the JSON report."""
    return [
        {"id": rule.id, "description": rule.description, "hint": rule.hint}
        for rule in default_rules()
    ]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` when not a plain chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def walk_same_function(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested function scopes.

    Used by the async rules: code inside a nested ``def``/``lambda`` does
    not run in the enclosing coroutine's frame (it is typically shipped to
    an executor), so its calls must not be attributed to the ``async def``.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def string_tuple(node: ast.AST) -> Optional[List[Tuple[str, int]]]:
    """``[(value, lineno), ...]`` for a tuple/list of string constants."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[Tuple[str, int]] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append((element.value, element.lineno))
    return values


# Import the rule modules for their registration side effects.  Order
# fixes the id ordering shown by --list-rules ties (ids sort anyway).
from repro.analysis.rules import async_rules as _async_rules  # noqa: F401
from repro.analysis.rules import coherence as _coherence  # noqa: F401
from repro.analysis.rules import exceptions as _exceptions  # noqa: F401
from repro.analysis.rules import hot_path as _hot_path  # noqa: F401
from repro.analysis.rules import tracing as _tracing  # noqa: F401
