"""Swallowed-exception rule for the supervision and restart paths.

The fleet supervisor, router failover, and cache degradation paths all
legitimately catch broad exception classes — but each one either
re-raises, logs a diagnostic, or counts the event in a metric, so a
production incident leaves a trace.  A broad handler that does none of
those turns crashes into silence: a replica that never restarts, a cache
that quietly stops persisting, a router that eats errors.

The rule flags ``except:``, ``except Exception:`` and ``except
BaseException:`` handlers whose body performs no observable action — no
``raise``, no call statement (logging, counting, cleanup), no counter
update.  Handlers that only ``pass``/``continue`` or return a constant
fallback are exactly the silent-swallow shape.  Deliberate best-effort
probes (e.g. the shared-memory availability check) carry a
``# repro: allow[swallowed-exception]`` pragma with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [element for element in handler.type.elts]
    else:
        names = [handler.type]
    for node in names:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _walk_handler(body) -> Iterable[ast.AST]:
    """Walk handler statements without entering nested function scopes."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _handles_the_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises, logs, counts, or otherwise acts."""
    for node in _walk_handler(handler.body):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign):
            return True  # counter update (stats.errors += 1)
        if isinstance(node, ast.Expr) and isinstance(node.value, (ast.Call, ast.Await)):
            return True  # a statement-level call: logging, cleanup, metric
        if isinstance(node, ast.Assert):
            return True
        # Reading the bound exception (`except ... as e:` then str(e),
        # returning an error payload, stashing it on self) surfaces the
        # error to a caller rather than discarding it.
        if (
            handler.name is not None
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


@register_rule
class SwallowedException(Rule):
    """Flag broad except handlers that silently discard the error."""

    id = "swallowed-exception"
    description = (
        "a bare/over-broad except (Exception/BaseException) that neither "
        "re-raises, logs, nor counts turns crashes into silence on the "
        "supervisor/router restart and cache degradation paths"
    )
    hint = (
        "narrow the exception types, or record the failure (log tail, stats "
        "counter, re-raise); deliberate best-effort probes get "
        "# repro: allow[swallowed-exception] plus a justification"
    )

    def check_module(self, module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handles_the_error(node):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield self.finding(
                module,
                node,
                f"{caught} swallows the error: the handler neither re-raises, "
                "logs, nor counts it",
            )
