"""Async-serving rules: never block the event loop, never hold a
threading lock across an ``await``.

The serving tier (PR 5's :class:`~repro.serve.server.ClusteringServer`,
PR 8's fleet router/supervisor) is a single asyncio loop; one blocking
call in a coroutine stalls every connection, batch flush, health probe,
and drain in the process.  The discipline the code follows — numerical
fits go through ``loop.run_in_executor`` (see
``ClusteringServer._run_batch``), subprocess work uses
``asyncio.subprocess``, sleeps use ``asyncio.sleep`` — is what these two
rules enforce mechanically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule, walk_same_function

#: Fully-dotted calls that block the calling thread.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.socket",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "shutil.copyfile",
        "shutil.copy",
        "os.system",
    }
)

#: Any call rooted in these modules blocks (subprocess.run, requests.get,
#: ...).  ``asyncio.subprocess`` and ``asyncio.create_subprocess_*`` have
#: the root ``asyncio`` and never match.
_BLOCKING_ROOTS = frozenset({"subprocess", "requests"})

#: Bare-name calls that block (builtin file I/O and console input).
_BLOCKING_NAMES = frozenset({"open", "input"})

#: Method tails that run a clustering fit synchronously; on the serving
#: loop they must go through the executor instead.
_FIT_TAILS = frozenset({"fit", "fit_predict"})
_FIT_FRONT_DOORS = frozenset({"cluster_many", "tmfg_dbht"})


def _async_functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@register_rule
class BlockingCallInAsync(Rule):
    """Flag synchronous blocking calls made directly inside ``async def``."""

    id = "async-blocking"
    description = (
        "a blocking call (time.sleep, file/socket I/O, subprocess.*, or a "
        "direct estimator fit / cluster_many) inside an async def stalls "
        "the whole serving event loop"
    )
    hint = (
        "await the asyncio equivalent (asyncio.sleep, asyncio.subprocess, "
        "asyncio.open_connection) or run it via loop.run_in_executor as "
        "ClusteringServer._run_batch does"
    )

    def check_module(self, module) -> Iterable[Finding]:
        for function in _async_functions(module.tree):
            for node in walk_same_function(function):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_message(node)
                if message:
                    yield self.finding(
                        module,
                        node,
                        f"async def {function.name!r} {message}",
                    )

    @staticmethod
    def _blocking_message(call: ast.Call) -> str:
        dotted = dotted_name(call.func)
        if dotted in _BLOCKING_CALLS:
            return f"calls blocking {dotted}()"
        root = dotted.split(".", 1)[0] if dotted else ""
        if root in _BLOCKING_ROOTS:
            return f"calls blocking {dotted}() (module {root!r} is synchronous)"
        if isinstance(call.func, ast.Name) and call.func.id in _BLOCKING_NAMES:
            return f"calls blocking builtin {call.func.id}()"
        if dotted in _FIT_FRONT_DOORS or dotted.split(".")[-1] in _FIT_FRONT_DOORS:
            return f"runs the batch front door {dotted}() on the event loop"
        if isinstance(call.func, ast.Attribute) and call.func.attr in _FIT_TAILS:
            return f"runs a synchronous estimator .{call.func.attr}() on the event loop"
        return ""


def _looks_like_lock(node: ast.AST) -> bool:
    """Whether an expression plausibly evaluates to a threading lock."""
    dotted = dotted_name(node)
    if dotted:
        tail = dotted.rsplit(".", 1)[-1].lower()
        if "lock" in tail or "mutex" in tail:
            return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("threading.Lock", "threading.RLock", "threading.Semaphore",
                      "threading.BoundedSemaphore", "threading.Condition"):
            return True
        return _looks_like_lock(node.func)
    return False


@register_rule
class LockHeldAcrossAwait(Rule):
    """Flag a threading lock held while the coroutine suspends."""

    id = "lock-across-await"
    description = (
        "a threading.Lock/RLock acquired in a coroutine and held across an "
        "await: the loop suspends with the lock taken, and any executor "
        "thread contending for it deadlocks the service"
    )
    hint = (
        "release the lock before awaiting (copy what you need out of the "
        "critical section), or use asyncio.Lock with `async with`"
    )

    def check_module(self, module) -> Iterable[Finding]:
        for function in _async_functions(module.tree):
            yield from self._check_with_blocks(module, function)
            yield from self._check_acquire_release(module, function)

    def _check_with_blocks(self, module, function: ast.AsyncFunctionDef):
        # `with lock:` (synchronous With) whose body awaits.  `async with
        # asyncio.Lock()` is an AsyncWith node and never matches.
        for node in walk_same_function(function):
            if not isinstance(node, ast.With):
                continue
            lockish = [
                item.context_expr
                for item in node.items
                if _looks_like_lock(item.context_expr)
            ]
            if not lockish:
                continue
            awaits = [
                inner
                for stmt in node.body
                for inner in ast.walk(stmt)
                if isinstance(inner, (ast.Await, ast.AsyncFor, ast.AsyncWith))
            ]
            if awaits:
                held = dotted_name(lockish[0]) or "a lock"
                yield self.finding(
                    module,
                    node,
                    f"async def {function.name!r} holds {held} across an await "
                    f"(line {awaits[0].lineno})",
                )

    def _check_acquire_release(self, module, function: ast.AsyncFunctionDef):
        # Manual acquire()/release() pairs: flag an acquire on a lock-ish
        # receiver when an await happens before the matching release (a
        # line-ordered approximation — good enough to catch the pattern,
        # and suppressible where control flow proves otherwise).
        acquires: List[Tuple[str, ast.Call]] = []
        releases: Dict[str, List[int]] = {}
        await_lines: List[int] = []
        for node in walk_same_function(function):
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                await_lines.append(node.lineno)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = dotted_name(node.func.value)
                if not receiver or not _looks_like_lock(node.func.value):
                    continue
                if node.func.attr == "acquire":
                    acquires.append((receiver, node))
                elif node.func.attr == "release":
                    releases.setdefault(receiver, []).append(node.lineno)
        for receiver, call in acquires:
            released_after = [line for line in releases.get(receiver, []) if line > call.lineno]
            horizon = min(released_after) if released_after else None
            for await_line in sorted(await_lines):
                if await_line > call.lineno and (horizon is None or await_line < horizon):
                    yield self.finding(
                        module,
                        call,
                        f"async def {function.name!r} acquires {receiver} and awaits "
                        f"(line {await_line}) before releasing it",
                    )
                    break
