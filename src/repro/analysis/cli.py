"""The ``repro lint`` command.

Exposed two ways:

* as a subcommand of the main CLI (``repro lint ...`` /
  ``python -m repro lint ...``) — ``repro/__main__.py`` dispatches the
  ``lint`` verb *before* importing the numerical CLI, so linting works on
  interpreters without numpy/scipy (the CI lint job runs exactly that);
* standalone, ``python -m repro.analysis ...`` — same flags, same exit
  codes.

Exit codes: ``0`` clean, ``1`` reported findings, ``2`` usage error
(bad path, unknown rule id, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import run_lint
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import available_rules, rule_catalogue


def default_lint_paths() -> List[str]:
    """With no path arguments, lint the repro package this CLI came from."""
    return [os.path.dirname(os.path.dirname(os.path.abspath(__file__)))]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro lint`` flags (shared by the subcommand and -m entry)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all; see --list-rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (id, invariant, fix hint) and exit",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="emit the JSON report (to PATH, or stdout with no value)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of known findings to tolerate (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="snapshot the current reported findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list pragma-suppressed and baselined findings",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` from parsed arguments."""
    if args.list_rules:
        for row in rule_catalogue():
            print(f"{row['id']}: {row['description']}")
            print(f"    fix: {row['hint']}")
        return 0
    rule_ids: Optional[List[str]] = None
    if args.rules is not None:
        rule_ids = [token.strip() for token in args.rules.split(",") if token.strip()]
        if not rule_ids:
            print(
                f"--rules selected nothing; available: {list(available_rules())}",
                file=sys.stderr,
            )
            return 2
    baseline = None
    try:
        if args.baseline is not None:
            baseline = load_baseline(args.baseline)
        result = run_lint(
            args.paths or default_lint_paths(), rule_ids=rule_ids, baseline=baseline
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline, result.findings)
        print(f"wrote {count} finding key(s) to {args.write_baseline}")
        return 0
    if args.json is not None:
        document = json.dumps(render_json(result), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"wrote JSON report to {args.json}")
    if args.json != "-":
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
