"""Baseline files: land a rule before its last fixes do.

A baseline is a JSON document of known-finding keys
(:meth:`~repro.analysis.findings.Finding.key` — rule::path::message,
deliberately line-number-free so surrounding edits do not resurrect an
entry).  ``repro lint --baseline lint-baseline.json`` marks matching
findings as baselined (reported in the summary, not failing the run);
``--write-baseline`` snapshots the current reported findings.

The repo itself carries **no** baseline — HEAD lints clean and a
meta-test enforces that — but the mechanism is what makes adding rule
six tractable on a tree with pre-existing findings.
"""

from __future__ import annotations

import json
from typing import FrozenSet, Iterable, List

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: str) -> FrozenSet[str]:
    """The finding keys a baseline file suppresses."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"bad baseline file {path}: {error}") from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("suppressed"), list)
        or not all(isinstance(key, str) for key in payload["suppressed"])
    ):
        raise ValueError(
            f"bad baseline file {path}: expected "
            f'{{"version": {BASELINE_VERSION}, "suppressed": ["rule::path::message", ...]}}'
        )
    return frozenset(payload["suppressed"])


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Snapshot the reported findings' keys; returns how many were written."""
    keys: List[str] = sorted({finding.key() for finding in findings if finding.reported})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": BASELINE_VERSION, "suppressed": keys}, handle, indent=2)
        handle.write("\n")
    return len(keys)
