"""Static analysis: the repo's correctness discipline as executable rules.

The codebase's value rests on invariants that code review alone cannot
keep enforcing across refactors:

* **byte-identity** across kernels, cache hits, and transports;
* **cache-key coherence** — every :class:`~repro.api.config.ClusteringConfig`
  knob participates in the result-cache fingerprint or is explicitly
  excluded (and every knob is reachable from the CLI);
* **zero-copy** on the wire -> cache -> shared-memory hot path;
* a **never-block** asyncio serving loop (fits go through the executor);
* **no silently swallowed exceptions** on the supervisor/router restart
  paths.

This package is a small stdlib-``ast`` analysis engine
(:mod:`repro.analysis.engine`) plus a rule pack
(:mod:`repro.analysis.rules`) that mechanically checks those invariants.
It is wired into the CLI as ``repro lint`` (:mod:`repro.analysis.cli`)
and gated in CI, so a refactor that breaks an invariant fails the build
instead of waiting for a reviewer to notice.

Design constraints:

* **stdlib-only** — importing :mod:`repro.analysis` (and running
  ``python -m repro lint``) must never import numpy/scipy, so the CI
  lint job runs on a bare interpreter;
* **suppressable** — a deliberate violation carries an inline
  ``# repro: allow[rule-id]`` pragma with a justification next to it;
* **baselinable** — ``--baseline`` accepts a JSON file of known
  findings so a new rule can land before its last fixes do.

Quickstart::

    python -m repro lint                 # lint the installed package
    python -m repro lint src/repro --json report.json
    python -m repro lint --list-rules
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import LintResult, ModuleInfo, Project, run_lint
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_SYNTAX, allowed_rules_by_line
from repro.analysis.report import REPORT_VERSION, render_json, render_text
from repro.analysis.rules import Rule, available_rules, default_rules, register_rule

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "PRAGMA_SYNTAX",
    "Project",
    "REPORT_VERSION",
    "Rule",
    "allowed_rules_by_line",
    "available_rules",
    "default_rules",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
