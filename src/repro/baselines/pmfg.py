"""Planar Maximally Filtered Graph (PMFG) construction.

The PMFG (Tumminello et al., 2005) is the paper's quality reference: edges
are considered in decreasing weight order and an edge is kept iff adding it
keeps the graph planar.  The resulting maximal planar graph has exactly
``3n - 6`` edges.  Planarity is checked with the from-scratch Left-Right
test in :mod:`repro.graph.planarity`; this makes PMFG construction orders of
magnitude slower than the TMFG, exactly as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.matrix import validate_similarity_matrix
from repro.graph.planarity import is_planar
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker


@dataclass
class PMFGResult:
    """Output of PMFG construction."""

    graph: WeightedGraph
    edges: List[Tuple[int, int]]
    candidates_tested: int

    def edge_weight_sum(self) -> float:
        return self.graph.edge_weight_sum()


def construct_pmfg(
    similarity: np.ndarray,
    tracker: Optional[WorkSpanTracker] = None,
) -> PMFGResult:
    """Build the PMFG of a similarity matrix.

    Notes
    -----
    The construction sorts all Theta(n^2) candidate edges and runs a
    planarity test for each candidate that is not trivially acceptable,
    stopping early once the maximal planar size of ``3n - 6`` edges is
    reached.  This is the (intentionally slow) baseline of Figs. 1, 3 and 8.
    """
    similarity = validate_similarity_matrix(similarity)
    n = similarity.shape[0]
    tracker = tracker if tracker is not None else WorkSpanTracker()

    upper_i, upper_j = np.triu_indices(n, k=1)
    weights = similarity[upper_i, upper_j]
    order = np.argsort(-weights, kind="stable")

    graph = WeightedGraph(n)
    edges: List[Tuple[int, int]] = []
    max_edges = 3 * n - 6
    candidates_tested = 0

    for index in order:
        if len(edges) >= max_edges:
            break
        u = int(upper_i[index])
        v = int(upper_j[index])
        candidate_edges = edges + [(u, v)]
        candidates_tested += 1
        # Small graphs are always planar; skip the test while m <= 8 because
        # planarity can only fail once a K5 or K3,3 subdivision is possible.
        if len(candidate_edges) <= 8 or is_planar(candidate_edges, num_vertices=n):
            graph.add_edge(u, v, float(similarity[u, v]))
            edges.append((u, v))

    tracker.add(
        "pmfg",
        work=float(candidates_tested * (n + len(edges))),
        span=float(candidates_tested),
    )
    return PMFGResult(graph=graph, edges=edges, candidates_tested=candidates_tested)
