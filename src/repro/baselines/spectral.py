"""Spectral embedding + k-means (the paper's K-MEANS-S baseline).

The K-MEANS-S baseline first computes a spectral embedding whose affinity
matrix is a k-nearest-neighbour graph, projects the data onto the first
``c`` eigenvectors of the normalised graph Laplacian (``c`` = number of
ground-truth clusters), and then runs k-means in that space.  Fig. 9 of the
paper shows the method's sensitivity to the number of neighbours ``beta``,
which the corresponding benchmark sweeps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.kmeans import KMeansResult, kmeans
from repro.datasets.similarity import euclidean_distance_matrix


def knn_affinity(data: np.ndarray, num_neighbors: int) -> np.ndarray:
    """Symmetric k-nearest-neighbour affinity matrix (connectivity weights)."""
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if not 1 <= num_neighbors < n:
        raise ValueError("num_neighbors must be in [1, n)")
    distances = euclidean_distance_matrix(data)
    np.fill_diagonal(distances, np.inf)
    affinity = np.zeros((n, n), dtype=float)
    neighbor_indices = np.argsort(distances, axis=1)[:, :num_neighbors]
    rows = np.repeat(np.arange(n), num_neighbors)
    affinity[rows, neighbor_indices.ravel()] = 1.0
    # Symmetrise: i and j are connected if either lists the other.
    return np.maximum(affinity, affinity.T)


def spectral_embedding(
    data: np.ndarray,
    num_components: int,
    num_neighbors: int = 10,
) -> np.ndarray:
    """Embed the data with the first eigenvectors of the normalised Laplacian.

    Uses the symmetric normalised Laplacian ``L = I - D^-1/2 A D^-1/2`` and
    returns the eigenvectors of the ``num_components`` smallest eigenvalues
    (skipping nothing; the constant eigenvector carries the connected-
    component structure, which is informative when the kNN graph is
    disconnected).
    """
    affinity = knn_affinity(data, num_neighbors)
    degrees = affinity.sum(axis=1)
    inverse_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.where(degrees > 0, degrees, 1.0)), 0.0)
    normalized = affinity * inverse_sqrt[:, None] * inverse_sqrt[None, :]
    laplacian = np.eye(affinity.shape[0]) - normalized
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    selected = eigenvectors[:, order[:num_components]]
    # Row-normalise (standard for spectral clustering embeddings).
    norms = np.linalg.norm(selected, axis=1, keepdims=True)
    return selected / np.where(norms > 0, norms, 1.0)


def spectral_kmeans(
    data: np.ndarray,
    num_clusters: int,
    num_neighbors: int = 10,
    seed: Optional[int] = None,
    num_restarts: int = 3,
) -> KMeansResult:
    """K-MEANS-S: spectral embedding followed by k-means."""
    embedding = spectral_embedding(data, num_components=num_clusters, num_neighbors=num_neighbors)
    return kmeans(
        embedding,
        num_clusters=num_clusters,
        init="k-means++",
        seed=seed,
        num_restarts=num_restarts,
    )
