"""Original DBHT construction for general maximal planar graphs (PMFG-DBHT).

The paper's PMFG-DBHT baseline runs the original DBHT algorithm of Song et
al. on the PMFG.  Unlike the TMFG-specialised algorithm in
:mod:`repro.core`, the original construction

* enumerates all 3-cliques of the planar graph and tests, for every one of
  them, whether removing its vertices disconnects the graph (quadratic
  work), in order to find the separating triangles and the bubbles;
* directs each bubble-tree edge by summing, with a BFS per separating
  triangle, the edge weights from the triangle to each of its two sides.

The vertex-assignment rules and the three-level complete-linkage hierarchy
are the same as in the TMFG-specialised algorithm, so those steps are shared
with :mod:`repro.core.assignment` / :mod:`repro.core.hierarchy` where the
formulas coincide, and re-implemented here where general bubbles (which need
not be 4-cliques) require the graph-edge-based attachment scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dendrogram.node import Dendrogram
from repro.graph.matrix import validate_dissimilarity_matrix
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.traversal import reachable_set
from repro.graph.weighted_graph import WeightedGraph

Triangle = FrozenSet[int]


@dataclass
class GenericBubbleTree:
    """Bubble decomposition of a maximal planar graph.

    ``bubbles[i]`` is the vertex set of bubble ``i``; ``edges`` are
    unordered bubble-tree edges, each carrying its separating triangle.
    """

    bubbles: List[FrozenSet[int]]
    edges: List[Tuple[int, int, Triangle]] = field(default_factory=list)

    @property
    def num_bubbles(self) -> int:
        return len(self.bubbles)

    def bubbles_of_vertex(self, vertex: int) -> List[int]:
        return [index for index, bubble in enumerate(self.bubbles) if vertex in bubble]

    def neighbors(self, bubble_id: int) -> List[Tuple[int, Triangle]]:
        result = []
        for a, b, triangle in self.edges:
            if a == bubble_id:
                result.append((b, triangle))
            elif b == bubble_id:
                result.append((a, triangle))
        return result


# ---------------------------------------------------------------------------
# Bubble decomposition
# ---------------------------------------------------------------------------


def _enumerate_triangles(graph: WeightedGraph, vertices: Set[int]) -> List[Triangle]:
    """All 3-cliques of the induced subgraph on ``vertices``."""
    triangles: Set[Triangle] = set()
    vertex_list = sorted(vertices)
    neighbor_sets = {
        v: {u for u in graph.neighbor_ids(v) if u in vertices} for v in vertex_list
    }
    for u in vertex_list:
        for v in neighbor_sets[u]:
            if v <= u:
                continue
            common = neighbor_sets[u] & neighbor_sets[v]
            for w in common:
                if w > v:
                    triangles.add(frozenset((u, v, w)))
    return sorted(triangles, key=lambda t: tuple(sorted(t)))


def _components_without(
    graph: WeightedGraph, vertices: Set[int], removed: Triangle
) -> List[Set[int]]:
    """Connected components of the induced subgraph on ``vertices`` minus ``removed``."""
    keep = vertices - set(removed)
    components: List[Set[int]] = []
    seen: Set[int] = set()
    for start in sorted(keep):
        if start in seen:
            continue
        stack = [start]
        component = {start}
        while stack:
            current = stack.pop()
            for neighbor in graph.neighbor_ids(current):
                if neighbor in keep and neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        seen |= component
        components.append(component)
    return components


def build_bubble_tree_from_graph(graph: WeightedGraph) -> GenericBubbleTree:
    """Bubble decomposition of a connected maximal planar graph.

    Implements the original strategy: find a separating triangle, split the
    graph into the two sides (each keeping a copy of the triangle), and
    recurse; subgraphs without separating triangles are bubbles.  Adjacent
    bubbles are connected by an edge labelled with the separating triangle.
    """
    all_vertices = set(range(graph.num_vertices))
    # Drop isolated vertices (a disconnected input would be invalid anyway).
    all_vertices = {v for v in all_vertices if graph.degree(v) > 0}
    if not all_vertices:
        raise ValueError("graph has no edges; cannot build a bubble tree")

    tree = GenericBubbleTree(bubbles=[])

    def decompose(vertices: Set[int]) -> List[int]:
        """Decompose the induced subgraph; returns the ids of bubbles created."""
        triangles = _enumerate_triangles(graph, vertices)
        separating: Optional[Triangle] = None
        sides: List[Set[int]] = []
        for triangle in triangles:
            components = _components_without(graph, vertices, triangle)
            if len(components) > 1:
                separating = triangle
                sides = components
                break
        if separating is None:
            bubble_id = len(tree.bubbles)
            tree.bubbles.append(frozenset(vertices))
            return [bubble_id]
        created: List[int] = []
        owners: List[int] = []
        for side in sides:
            side_bubbles = decompose(side | set(separating))
            created.extend(side_bubbles)
            owner = _bubble_containing(tree, side_bubbles, separating)
            owners.append(owner)
        # Connect the owners pairwise through the separating triangle; with
        # the expected two sides this is a single tree edge.
        for index in range(1, len(owners)):
            tree.edges.append((owners[0], owners[index], separating))
        return created

    decompose(all_vertices)
    return tree


def _bubble_containing(
    tree: GenericBubbleTree, candidate_ids: Sequence[int], triangle: Triangle
) -> int:
    """The unique bubble among ``candidate_ids`` containing the whole triangle."""
    matches = [index for index in candidate_ids if triangle <= tree.bubbles[index]]
    if len(matches) != 1:
        raise RuntimeError(
            f"expected exactly one bubble containing {set(triangle)}, found {len(matches)}"
        )
    return matches[0]


# ---------------------------------------------------------------------------
# Edge direction (BFS per separating triangle, as in the original algorithm)
# ---------------------------------------------------------------------------


@dataclass
class GenericDirections:
    """Direction of each bubble-tree edge: maps edge index to the head bubble."""

    head: Dict[int, int]

    def out_degree(self, tree: GenericBubbleTree, bubble_id: int) -> int:
        degree = 0
        for index, (a, b, _) in enumerate(tree.edges):
            if bubble_id in (a, b) and self.head[index] != bubble_id:
                degree += 1
        return degree

    def converging_bubbles(self, tree: GenericBubbleTree) -> List[int]:
        return [
            bubble_id
            for bubble_id in range(tree.num_bubbles)
            if self.out_degree(tree, bubble_id) == 0
        ]

    def directed_neighbors(self, tree: GenericBubbleTree, bubble_id: int) -> List[int]:
        result = []
        for index, (a, b, _) in enumerate(tree.edges):
            if a == bubble_id and self.head[index] == b:
                result.append(b)
            elif b == bubble_id and self.head[index] == a:
                result.append(a)
        return result

    def reachable_converging_bubbles(self, tree: GenericBubbleTree) -> Dict[int, Set[int]]:
        converging = set(self.converging_bubbles(tree))
        reach: Dict[int, Set[int]] = {}
        for bubble_id in range(tree.num_bubbles):
            visited = {bubble_id}
            stack = [bubble_id]
            found: Set[int] = set()
            while stack:
                current = stack.pop()
                if current in converging:
                    found.add(current)
                for neighbor in self.directed_neighbors(tree, current):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        stack.append(neighbor)
            reach[bubble_id] = found
        return reach


def direct_edges_bfs(tree: GenericBubbleTree, graph: WeightedGraph) -> GenericDirections:
    """Direct every bubble-tree edge towards its more strongly connected side."""
    head: Dict[int, int] = {}
    for index, (bubble_a, bubble_b, triangle) in enumerate(tree.edges):
        seed_a = next(iter(tree.bubbles[bubble_a] - triangle), None)
        seed_b = next(iter(tree.bubbles[bubble_b] - triangle), None)
        side_a: Set[int] = (
            reachable_set(graph, seed_a, blocked=set(triangle)) if seed_a is not None else set()
        )
        sum_a = 0.0
        sum_b = 0.0
        for corner in triangle:
            for neighbor, weight in graph.neighbors(corner):
                if neighbor in triangle:
                    continue
                if neighbor in side_a:
                    sum_a += weight
                else:
                    sum_b += weight
        # The edge points towards the side with the stronger connection.
        head[index] = bubble_a if sum_a > sum_b else bubble_b
    return GenericDirections(head=head)


# ---------------------------------------------------------------------------
# Vertex assignment for general bubbles
# ---------------------------------------------------------------------------


def _graph_attachment(graph: WeightedGraph, vertex: int, bubble: FrozenSet[int]) -> float:
    """Sum of graph edge weights from ``vertex`` to the bubble's members."""
    total = 0.0
    for neighbor, weight in graph.neighbors(vertex):
        if neighbor in bubble and neighbor != vertex:
            total += weight
    return total


def _bubble_edge_weight(graph: WeightedGraph, bubble: FrozenSet[int]) -> float:
    total = 0.0
    members = sorted(bubble)
    member_set = set(members)
    for u in members:
        for neighbor, weight in graph.neighbors(u):
            if neighbor in member_set and neighbor > u:
                total += weight
    return total


def assign_vertices_generic(
    tree: GenericBubbleTree,
    directions: GenericDirections,
    graph: WeightedGraph,
    shortest_paths: np.ndarray,
) -> "AssignmentResult":
    """Group and bubble assignment with the original (general-bubble) scores."""
    # Imported here (not at module level) to avoid a circular import with
    # repro.core.hierarchy, which uses repro.baselines.hac as its linkage
    # subroutine.
    from repro.core.assignment import AssignmentResult

    num_vertices = graph.num_vertices
    converging = directions.converging_bubbles(tree)
    reach = directions.reachable_converging_bubbles(tree)

    group = np.full(num_vertices, -1, dtype=int)
    assigned_directly = np.zeros(num_vertices, dtype=bool)

    best_chi: Dict[int, Tuple[float, int]] = {}
    for bubble_id in converging:
        bubble = tree.bubbles[bubble_id]
        normalizer = max(3 * (len(bubble) - 2), 1)
        for vertex in bubble:
            chi = _graph_attachment(graph, vertex, bubble) / normalizer
            candidate = (chi, bubble_id)
            if vertex not in best_chi or candidate > best_chi[vertex]:
                best_chi[vertex] = candidate
    for vertex, (_, bubble_id) in best_chi.items():
        group[vertex] = bubble_id
        assigned_directly[vertex] = True

    attached: Dict[int, List[int]] = {bubble_id: [] for bubble_id in converging}
    for vertex in range(num_vertices):
        if assigned_directly[vertex]:
            attached[int(group[vertex])].append(vertex)

    for vertex in range(num_vertices):
        if assigned_directly[vertex]:
            continue
        reachable: Set[int] = set()
        for bubble_id in tree.bubbles_of_vertex(vertex):
            reachable |= reach[bubble_id]
        best: Tuple[float, int] = (float("inf"), -1)
        candidates = [b for b in reachable if attached.get(b)] or [
            b for b in converging if attached.get(b)
        ] or converging
        for bubble_id in candidates:
            members = attached.get(bubble_id) or list(tree.bubbles[bubble_id])
            mean_distance = float(
                np.mean(shortest_paths[np.asarray(members, dtype=int), vertex])
            )
            best = min(best, (mean_distance, bubble_id))
        group[vertex] = best[1]

    bubble_assignment = np.full(num_vertices, -1, dtype=int)
    best_chi_prime: Dict[int, Tuple[float, int]] = {}
    for bubble_id, bubble in enumerate(tree.bubbles):
        total_weight = _bubble_edge_weight(graph, bubble)
        if total_weight <= 0:
            total_weight = 1.0
        for vertex in bubble:
            score = _graph_attachment(graph, vertex, bubble) / total_weight
            candidate = (score, bubble_id)
            if vertex not in best_chi_prime or candidate > best_chi_prime[vertex]:
                best_chi_prime[vertex] = candidate
    for vertex, (_, bubble_id) in best_chi_prime.items():
        bubble_assignment[vertex] = bubble_id

    return AssignmentResult(
        group=group,
        bubble=bubble_assignment,
        converging_bubbles=list(converging),
        assigned_directly=assigned_directly,
    )


# ---------------------------------------------------------------------------
# End-to-end PMFG + DBHT
# ---------------------------------------------------------------------------


@dataclass
class ClassicDBHTResult:
    """Output of the original DBHT pipeline on a planar graph."""

    dendrogram: Dendrogram
    bubble_tree: GenericBubbleTree
    directions: GenericDirections
    assignment: AssignmentResult
    shortest_paths: np.ndarray

    def cut(self, num_clusters: int) -> np.ndarray:
        from repro.dendrogram.cut import cut_k

        return cut_k(self.dendrogram, num_clusters)


def classic_dbht(
    graph: WeightedGraph,
    dissimilarity: np.ndarray,
    kernel: Optional[str] = None,
    backend: Optional[object] = None,
) -> ClassicDBHTResult:
    """Original DBHT on an arbitrary maximal planar graph.

    ``kernel`` selects the APSP implementation (``"python"``/``"numpy"``;
    see :mod:`repro.parallel.kernels`); the distances are identical.
    ``backend`` distributes the APSP source chunks (an instance or a
    ``"serial"``/``"thread"``/``"process"`` name).
    """
    from repro.core.hierarchy import build_hierarchy

    dissimilarity = validate_dissimilarity_matrix(dissimilarity, size=graph.num_vertices)
    tree = build_bubble_tree_from_graph(graph)
    directions = direct_edges_bfs(tree, graph)
    # Freeze the planar graph into CSR form with the dissimilarity weights
    # swapped in; the APSP kernels run on the flat arrays.
    distance_graph = graph.to_csr().reweighted(dissimilarity)
    shortest_paths = all_pairs_shortest_paths(
        distance_graph, backend=backend, kernel=kernel
    )
    assignment = assign_vertices_generic(tree, directions, graph, shortest_paths)
    dendrogram = build_hierarchy(assignment, shortest_paths)
    return ClassicDBHTResult(
        dendrogram=dendrogram,
        bubble_tree=tree,
        directions=directions,
        assignment=assignment,
        shortest_paths=shortest_paths,
    )


def pmfg_dbht(
    similarity: np.ndarray,
    dissimilarity: Optional[np.ndarray] = None,
    kernel: Optional[str] = None,
    backend: Optional[object] = None,
) -> ClassicDBHTResult:
    """The paper's PMFG-DBHT baseline: build the PMFG, then the original DBHT."""
    from repro.baselines.pmfg import construct_pmfg
    from repro.datasets.similarity import default_dissimilarity

    similarity = np.asarray(similarity, dtype=float)
    if dissimilarity is None:
        dissimilarity = default_dissimilarity(similarity)
    pmfg = construct_pmfg(similarity)
    return classic_dbht(pmfg.graph, dissimilarity, kernel=kernel, backend=backend)
