"""Baseline algorithms the paper compares against.

* :mod:`repro.baselines.hac` — hierarchical agglomerative clustering with
  complete / average / single linkage (nearest-neighbour-chain algorithm).
  The complete-linkage routine is also the subroutine DBHT uses for its
  three-level hierarchy.
* :mod:`repro.baselines.pmfg` — the Planar Maximally Filtered Graph, built
  edge-by-edge with a planarity test.
* :mod:`repro.baselines.classic_dbht` — the original DBHT steps (triangle
  enumeration bubble tree, BFS-based edge direction) for arbitrary maximal
  planar graphs such as the PMFG.
* :mod:`repro.baselines.kmeans` — k-means with k-means++ and scalable
  k-means|| initialisation.
* :mod:`repro.baselines.spectral` — k-nearest-neighbour-graph spectral
  embedding followed by k-means (the paper's K-MEANS-S).
"""

from repro.baselines.hac import hac_dendrogram, linkage
from repro.baselines.kmeans import kmeans, kmeans_plus_plus, scalable_kmeans_init
from repro.baselines.pmfg import construct_pmfg
from repro.baselines.spectral import spectral_embedding, spectral_kmeans
from repro.baselines.classic_dbht import build_bubble_tree_from_graph, pmfg_dbht

__all__ = [
    "hac_dendrogram",
    "linkage",
    "kmeans",
    "kmeans_plus_plus",
    "scalable_kmeans_init",
    "construct_pmfg",
    "spectral_embedding",
    "spectral_kmeans",
    "build_bubble_tree_from_graph",
    "pmfg_dbht",
]
