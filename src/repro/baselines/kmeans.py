"""k-means with k-means++ and scalable k-means|| initialisation.

The paper uses a scalable k-means++ implementation as its non-hierarchical
baseline (K-MEANS) and a spectral-embedding variant (K-MEANS-S, see
:mod:`repro.baselines.spectral`).  Both initialisation schemes from the
literature are implemented here: the classic k-means++ D^2 sampling and the
k-means|| oversampling scheme of Bahmani et al.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Result of Lloyd's algorithm."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int
    converged: bool


def _squared_distances_to_centers(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance from each point to each center."""
    data_norms = (data ** 2).sum(axis=1)[:, None]
    center_norms = (centers ** 2).sum(axis=1)[None, :]
    distances = data_norms + center_norms - 2.0 * (data @ centers.T)
    return np.clip(distances, 0.0, None)


def kmeans_plus_plus(
    data: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D^2-weighted sampling of initial centers."""
    n = data.shape[0]
    if num_clusters > n:
        raise ValueError("more clusters requested than data points")
    centers = np.empty((num_clusters, data.shape[1]))
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest = _squared_distances_to_centers(data, centers[:1]).ravel()
    for index in range(1, num_clusters):
        total = closest.sum()
        if total <= 0:
            # All points coincide with existing centers; pick uniformly.
            choice = int(rng.integers(n))
        else:
            probabilities = closest / total
            choice = int(rng.choice(n, p=probabilities))
        centers[index] = data[choice]
        new_distances = _squared_distances_to_centers(data, centers[index : index + 1]).ravel()
        closest = np.minimum(closest, new_distances)
    return centers


def scalable_kmeans_init(
    data: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
    oversampling: float = 2.0,
    rounds: int = 5,
) -> np.ndarray:
    """k-means|| seeding (Bahmani et al.): oversample, then reduce with k-means++.

    Each round samples points with probability proportional to their current
    squared distance, oversampling by ``oversampling * num_clusters``; the
    resulting candidate set is weighted by how many points it attracts and
    reduced to ``num_clusters`` centers with weighted k-means++.
    """
    n = data.shape[0]
    if num_clusters > n:
        raise ValueError("more clusters requested than data points")
    first = int(rng.integers(n))
    candidates = [data[first]]
    closest = _squared_distances_to_centers(data, np.asarray(candidates)).ravel()
    expected = oversampling * num_clusters
    for _ in range(rounds):
        total = closest.sum()
        if total <= 0:
            break
        probabilities = np.minimum(1.0, expected * closest / total)
        sampled = np.flatnonzero(rng.random(n) < probabilities)
        if sampled.size == 0:
            continue
        for index in sampled:
            candidates.append(data[index])
        new_distances = _squared_distances_to_centers(data, data[sampled])
        closest = np.minimum(closest, new_distances.min(axis=1))
    candidate_array = np.unique(np.asarray(candidates), axis=0)
    if candidate_array.shape[0] <= num_clusters:
        # Not enough distinct candidates; fall back to k-means++ on the data.
        return kmeans_plus_plus(data, num_clusters, rng)
    # Weight candidates by the number of points closest to them.
    assignments = np.argmin(_squared_distances_to_centers(data, candidate_array), axis=1)
    weights = np.bincount(assignments, minlength=candidate_array.shape[0]).astype(float)
    return _weighted_kmeans_plus_plus(candidate_array, weights, num_clusters, rng)


def _weighted_kmeans_plus_plus(
    points: np.ndarray, weights: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    centers = np.empty((num_clusters, points.shape[1]))
    total_weight = weights.sum()
    probabilities = weights / total_weight if total_weight > 0 else None
    first = int(rng.choice(points.shape[0], p=probabilities))
    centers[0] = points[first]
    closest = _squared_distances_to_centers(points, centers[:1]).ravel()
    for index in range(1, num_clusters):
        scores = closest * weights
        total = scores.sum()
        if total <= 0:
            choice = int(rng.integers(points.shape[0]))
        else:
            choice = int(rng.choice(points.shape[0], p=scores / total))
        centers[index] = points[choice]
        new_distances = _squared_distances_to_centers(points, centers[index : index + 1]).ravel()
        closest = np.minimum(closest, new_distances)
    return centers


def kmeans(
    data: np.ndarray,
    num_clusters: int,
    init: str = "k-means++",
    max_iterations: int = 300,
    tolerance: float = 1e-6,
    seed: Optional[int] = None,
    num_restarts: int = 1,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ or k-means|| initialisation.

    ``num_restarts`` runs the whole procedure several times and keeps the
    solution with the lowest inertia (the paper notes k-means is not
    deterministic; restarts reduce the variance of the baseline).
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    if num_clusters < 1:
        raise ValueError("num_clusters must be positive")
    if init not in ("k-means++", "k-means||", "random"):
        raise ValueError(f"unknown init scheme {init!r}")
    rng = np.random.default_rng(seed)

    best: Optional[KMeansResult] = None
    for _ in range(max(1, num_restarts)):
        result = _kmeans_single(data, num_clusters, init, max_iterations, tolerance, rng)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _kmeans_single(
    data: np.ndarray,
    num_clusters: int,
    init: str,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> KMeansResult:
    if init == "k-means++":
        centers = kmeans_plus_plus(data, num_clusters, rng)
    elif init == "k-means||":
        centers = scalable_kmeans_init(data, num_clusters, rng)
    else:
        indices = rng.choice(data.shape[0], size=num_clusters, replace=False)
        centers = data[indices].copy()

    labels = np.zeros(data.shape[0], dtype=int)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        distances = _squared_distances_to_centers(data, centers)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for cluster in range(num_clusters):
            members = data[labels == cluster]
            if members.shape[0] > 0:
                new_centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the point furthest from its center.
                worst = int(np.argmax(distances.min(axis=1)))
                new_centers[cluster] = data[worst]
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift <= tolerance:
            converged = True
            break
    distances = _squared_distances_to_centers(data, centers)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(data.shape[0]), labels].sum())
    return KMeansResult(
        labels=labels,
        centers=centers,
        inertia=inertia,
        iterations=iteration,
        converged=converged,
    )
