"""Hierarchical agglomerative clustering (HAC) via the nearest-neighbour chain.

The paper compares TMFG+DBHT against parallel complete-linkage and
average-linkage HAC (the COMP and AVG baselines), and the DBHT itself uses
complete linkage as a subroutine for its three-level hierarchy.  This module
implements a generic agglomerative clusterer over a precomputed distance
matrix using the nearest-neighbour-chain algorithm, which performs O(n^2)
work for the reducible linkages used here (single, complete, average,
weighted).

The output follows the scipy convention: the i-th merge creates cluster
``n + i`` and is recorded as ``(a, b, distance, size)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dendrogram.node import Dendrogram

_LINKAGES = ("single", "complete", "average", "weighted")


def _validate_distance_matrix(distances: np.ndarray) -> np.ndarray:
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distance matrix must be square")
    if not np.all(np.isfinite(distances)):
        raise ValueError("distance matrix contains NaN or infinite entries")
    if not np.allclose(distances, distances.T, atol=1e-8):
        raise ValueError("distance matrix must be symmetric")
    return distances


def _update_distance(
    linkage_name: str,
    d_ik: float,
    d_jk: float,
    size_i: int,
    size_j: int,
) -> float:
    """Lance-Williams update: distance from the merge of (i, j) to cluster k."""
    if linkage_name == "single":
        return min(d_ik, d_jk)
    if linkage_name == "complete":
        return max(d_ik, d_jk)
    if linkage_name == "average":
        return (size_i * d_ik + size_j * d_jk) / (size_i + size_j)
    if linkage_name == "weighted":
        return 0.5 * (d_ik + d_jk)
    raise ValueError(f"unknown linkage {linkage_name!r}; expected one of {_LINKAGES}")


def linkage(distances: np.ndarray, method: str = "complete") -> np.ndarray:
    """Agglomerative clustering of a distance matrix.

    Returns an ``(n-1, 4)`` array of merges ``[a, b, distance, size]`` in the
    order they are performed by the nearest-neighbour chain (cluster ids
    follow the scipy convention).  For the reducible linkages supported here
    the resulting tree is identical to the one produced by a globally
    closest-pair algorithm.
    """
    if method not in _LINKAGES:
        raise ValueError(f"unknown linkage {method!r}; expected one of {_LINKAGES}")
    distances = _validate_distance_matrix(distances)
    n = distances.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty distance matrix")
    if n == 1:
        return np.zeros((0, 4))

    # Working copy: row r holds the distances of the cluster currently stored
    # in slot r.  ``labels[r]`` is that cluster's id, ``sizes[r]`` its size.
    work = distances.copy()
    np.fill_diagonal(work, np.inf)
    active = np.ones(n, dtype=bool)
    labels = np.arange(n)
    sizes = np.ones(n, dtype=int)

    merges: List[Tuple[float, float, float, float]] = []
    next_label = n
    chain: List[int] = []

    def nearest(slot: int) -> int:
        row = np.where(active, work[slot], np.inf)
        row[slot] = np.inf
        return int(np.argmin(row))

    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        while True:
            current = chain[-1]
            candidate = nearest(current)
            if len(chain) > 1 and candidate == chain[-2]:
                break
            # Tie-safety: if the previous chain element is equally close,
            # prefer it so the chain terminates.
            if len(chain) > 1:
                previous = chain[-2]
                if work[current, previous] <= work[current, candidate]:
                    candidate = previous
                    break
            chain.append(candidate)
        j = chain.pop()
        i = chain.pop()
        distance = float(work[i, j])
        size_i, size_j = int(sizes[i]), int(sizes[j])
        merges.append((float(labels[i]), float(labels[j]), distance, float(size_i + size_j)))

        # Merge j into slot i with the Lance-Williams update.
        for k in np.flatnonzero(active):
            if k == i or k == j:
                continue
            new_distance = _update_distance(
                method, float(work[i, k]), float(work[j, k]), size_i, size_j
            )
            work[i, k] = new_distance
            work[k, i] = new_distance
        active[j] = False
        labels[i] = next_label
        sizes[i] = size_i + size_j
        next_label += 1
        remaining -= 1
        # Remove any chain entries referencing the merged slots.
        chain = [slot for slot in chain if slot != i and slot != j]

    return np.asarray(merges, dtype=float)


def hac_dendrogram(
    distances: np.ndarray,
    method: str = "complete",
) -> Dendrogram:
    """Run HAC and return the result as a :class:`Dendrogram`.

    Merge distances become dendrogram heights (the conventional choice for
    the COMP / AVG baselines).
    """
    distances = _validate_distance_matrix(distances)
    n = distances.shape[0]
    dendrogram = Dendrogram(n)
    if n == 1:
        return dendrogram
    merges = linkage(distances, method=method)
    for a, b, distance, _ in merges:
        dendrogram.merge(int(a), int(b), height=float(distance), distance=float(distance))
    return dendrogram


def hac_labels(
    distances: np.ndarray,
    num_clusters: int,
    method: str = "complete",
) -> np.ndarray:
    """Flat clustering: run HAC and cut the dendrogram into ``num_clusters``."""
    from repro.dendrogram.cut import cut_k

    dendrogram = hac_dendrogram(distances, method=method)
    return cut_k(dendrogram, num_clusters)
