"""Data sets and similarity measures.

The paper evaluates on 18 data sets from the UCR time-series archive and a
US stock data set.  Neither is available offline, so this package provides
synthetic substitutes that preserve the properties the experiments exercise:

* :mod:`repro.datasets.synthetic` — labelled time-series generators (smooth
  class prototypes plus noise) and Gaussian-blob generators;
* :mod:`repro.datasets.ucr_like` — a registry reproducing each UCR data
  set's (n, L, #classes) signature from Table II at a configurable scale;
* :mod:`repro.datasets.stocks` — a synthetic stock market with ICB-style
  sectors, factor-driven correlations, and market capitalisations;
* :mod:`repro.datasets.similarity` — Pearson correlation matrices, the
  ``sqrt(2 (1 - p))`` dissimilarity, detrended log-returns, and spectral
  pre-embedding used for the stock experiment.
"""

from repro.datasets.loaders import load_price_csv, load_ucr_tsv
from repro.datasets.similarity import (
    correlation_matrix,
    correlation_to_dissimilarity,
    detrended_log_returns,
    similarity_and_dissimilarity,
)
from repro.datasets.stocks import (
    StockMarket,
    StockStream,
    generate_regime_switching_stream,
    generate_stock_market,
)
from repro.datasets.synthetic import make_gaussian_blobs, make_time_series_dataset
from repro.datasets.ucr_like import DatasetSpec, UCR_LIKE_SPECS, load_ucr_like, list_dataset_ids

__all__ = [
    "load_price_csv",
    "load_ucr_tsv",
    "correlation_matrix",
    "correlation_to_dissimilarity",
    "detrended_log_returns",
    "similarity_and_dissimilarity",
    "StockMarket",
    "StockStream",
    "generate_regime_switching_stream",
    "generate_stock_market",
    "make_gaussian_blobs",
    "make_time_series_dataset",
    "DatasetSpec",
    "UCR_LIKE_SPECS",
    "load_ucr_like",
    "list_dataset_ids",
]
