"""Synthetic labelled data generators.

Because the UCR archive is not available offline, the experiments run on
synthetic time-series data with the same structural properties: each class
has a smooth prototype signal (a random mixture of sinusoids), and each
object is its class prototype plus i.i.d. Gaussian noise and a small random
warp.  The Pearson correlation between objects of the same class is then
systematically higher than across classes, which is exactly the signal the
filtered-graph methods exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class LabelledDataset:
    """A data matrix (one object per row) with ground-truth labels."""

    data: np.ndarray
    labels: np.ndarray
    name: str = "synthetic"

    @property
    def num_objects(self) -> int:
        return self.data.shape[0]

    @property
    def num_classes(self) -> int:
        return int(len(np.unique(self.labels)))


def _class_prototype(length: int, rng: np.random.Generator, num_harmonics: int = 4) -> np.ndarray:
    """A smooth random prototype: a mixture of a few random sinusoids."""
    t = np.linspace(0.0, 2.0 * np.pi, length)
    prototype = np.zeros(length)
    for _ in range(num_harmonics):
        frequency = rng.uniform(0.5, 6.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        amplitude = rng.uniform(0.5, 1.5)
        prototype += amplitude * np.sin(frequency * t + phase)
    return prototype


def make_time_series_dataset(
    num_objects: int,
    length: int,
    num_classes: int,
    noise: float = 0.6,
    seed: Optional[int] = None,
    name: str = "synthetic-timeseries",
    outlier_fraction: float = 0.0,
    outlier_scale: float = 4.0,
) -> LabelledDataset:
    """Generate a labelled time-series data set.

    Class sizes are balanced up to remainder.  ``noise`` controls the
    within-class noise standard deviation relative to the unit-variance
    prototypes; larger values make the clustering problem harder.
    ``outlier_fraction`` of the objects receive additional noise of standard
    deviation ``outlier_scale`` — this mimics the measurement artefacts of
    real sensor data, which is what makes purely local agglomerative
    decisions (complete/average linkage) brittle in the paper's evaluation.
    """
    if num_objects < num_classes:
        raise ValueError("need at least one object per class")
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    prototypes = np.vstack(
        [_class_prototype(length, rng) for _ in range(num_classes)]
    )
    # Normalise the prototypes to unit variance so ``noise`` is comparable.
    prototypes = (prototypes - prototypes.mean(axis=1, keepdims=True))
    stds = prototypes.std(axis=1, keepdims=True)
    prototypes = prototypes / np.where(stds > 0, stds, 1.0)

    labels = np.array([i % num_classes for i in range(num_objects)])
    rng.shuffle(labels)
    data = np.empty((num_objects, length))
    for index, label in enumerate(labels):
        scale = rng.uniform(0.8, 1.2)
        shift = rng.normal(0.0, 0.1)
        data[index] = (
            scale * prototypes[label]
            + shift
            + rng.normal(0.0, noise, size=length)
        )
    if outlier_fraction > 0.0:
        num_outliers = max(1, int(round(outlier_fraction * num_objects)))
        outliers = rng.choice(num_objects, size=num_outliers, replace=False)
        data[outliers] += rng.normal(0.0, outlier_scale, size=(num_outliers, length))
    return LabelledDataset(data=data, labels=labels, name=name)


def make_gaussian_blobs(
    num_objects: int,
    num_features: int,
    num_classes: int,
    separation: float = 4.0,
    noise: float = 1.0,
    seed: Optional[int] = None,
    name: str = "synthetic-blobs",
) -> LabelledDataset:
    """Isotropic Gaussian blobs (used by the k-means tests and benches)."""
    if num_objects < num_classes:
        raise ValueError("need at least one object per class")
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, separation, size=(num_classes, num_features))
    labels = np.array([i % num_classes for i in range(num_objects)])
    rng.shuffle(labels)
    data = centers[labels] + rng.normal(0.0, noise, size=(num_objects, num_features))
    return LabelledDataset(data=data, labels=labels, name=name)
