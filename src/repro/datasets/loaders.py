"""Loaders for locally available data files.

The reproduction generates synthetic stand-ins by default, but users who
have the real data on disk can feed it straight into the pipeline:

* :func:`load_ucr_tsv` reads a data set in the UCR Time Series
  Classification Archive format (one object per line: the class label
  followed by the series values, tab- or comma-separated), optionally
  concatenating the TRAIN and TEST splits as the paper does;
* :func:`load_price_csv` reads a matrix of closing prices (stocks in rows or
  columns) for the stock experiment.

No network access is ever attempted.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.datasets.synthetic import LabelledDataset


def _read_label_series_file(path: Path, delimiter: Optional[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Read a UCR-format file: label in the first column, series after it."""
    rows = []
    labels = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            sep = delimiter if delimiter is not None else ("\t" if "\t" in line else ",")
            parts = [part for part in line.split(sep) if part != ""]
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected a label and at least one value"
                )
            try:
                labels.append(float(parts[0]))
                rows.append([float(value) for value in parts[1:]])
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: non-numeric entry") from error
    if not rows:
        raise ValueError(f"{path} contains no data rows")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        raise ValueError(f"{path} has rows of differing lengths: {sorted(lengths)}")
    return np.asarray(rows, dtype=float), np.asarray(labels)


def load_ucr_tsv(
    path: str,
    test_path: Optional[str] = None,
    delimiter: Optional[str] = None,
    name: Optional[str] = None,
) -> LabelledDataset:
    """Load a UCR-archive data set from a local TSV/CSV file.

    ``path`` points at the TRAIN file (or a single combined file); if
    ``test_path`` is given the two splits are concatenated, which is how the
    paper uses the archive (clustering does not need the split).  Class
    labels are re-encoded to ``0 .. k-1``.
    """
    train_path = Path(path)
    data, labels = _read_label_series_file(train_path, delimiter)
    if test_path is not None:
        test_data, test_labels = _read_label_series_file(Path(test_path), delimiter)
        if test_data.shape[1] != data.shape[1]:
            raise ValueError(
                "TRAIN and TEST files have different series lengths: "
                f"{data.shape[1]} vs {test_data.shape[1]}"
            )
        data = np.vstack([data, test_data])
        labels = np.concatenate([labels, test_labels])
    _, encoded = np.unique(labels, return_inverse=True)
    dataset_name = name if name is not None else train_path.stem.replace("_TRAIN", "")
    return LabelledDataset(data=data, labels=encoded, name=dataset_name)


def load_price_csv(
    path: str,
    stocks_in_rows: bool = True,
    delimiter: str = ",",
) -> np.ndarray:
    """Load a price matrix from a CSV file for the stock-clustering workflow.

    Returns an array with one stock per row and one day per column (the
    orientation expected by :func:`repro.datasets.similarity.detrended_log_returns`).
    """
    matrix = np.loadtxt(path, delimiter=delimiter, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D price matrix in {path}, got shape {matrix.shape}")
    if not stocks_in_rows:
        matrix = matrix.T
    if np.any(matrix <= 0):
        raise ValueError("prices must be strictly positive")
    return matrix
