"""UCR-like data-set registry (Table II of the paper).

The paper's Table II lists 18 data sets from the UCR Time Series
Classification Archive with their number of objects ``n``, series length
``L``, and number of classes.  The archive is not available offline, so
``load_ucr_like`` generates a synthetic data set with the same signature
(optionally scaled down with ``scale`` so the whole sweep stays fast in the
benchmark harness) using :func:`repro.datasets.synthetic.make_time_series_dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.synthetic import LabelledDataset, make_time_series_dataset


@dataclass(frozen=True)
class DatasetSpec:
    """Signature of one UCR data set as listed in Table II."""

    dataset_id: int
    name: str
    num_objects: int
    length: int
    num_classes: int


# Table II of the paper, verbatim.
UCR_LIKE_SPECS: Dict[int, DatasetSpec] = {
    spec.dataset_id: spec
    for spec in [
        DatasetSpec(1, "Mallat", 2400, 1024, 8),
        DatasetSpec(2, "UWaveGestureLibraryAll", 4478, 945, 8),
        DatasetSpec(3, "NonInvasiveFetalECGThorax2", 3765, 750, 42),
        DatasetSpec(4, "MixedShapesRegularTrain", 2925, 1024, 5),
        DatasetSpec(5, "MixedShapesSmallTrain", 2525, 1024, 5),
        DatasetSpec(6, "ECG5000", 5000, 140, 5),
        DatasetSpec(7, "NonInvasiveFetalECGThorax1", 3765, 750, 42),
        DatasetSpec(8, "StarLightCurves", 9236, 84, 2),
        DatasetSpec(9, "HandOutlines", 1370, 2709, 2),
        DatasetSpec(10, "UWaveGestureLibraryX", 4478, 315, 8),
        DatasetSpec(11, "CBF", 930, 128, 3),
        DatasetSpec(12, "InsectWingbeatSound", 2200, 256, 11),
        DatasetSpec(13, "UWaveGestureLibraryY", 4478, 315, 8),
        DatasetSpec(14, "ShapesAll", 1200, 512, 60),
        DatasetSpec(15, "SonyAIBORobotSurface2", 980, 65, 2),
        DatasetSpec(16, "FreezerSmallTrain", 2878, 301, 2),
        DatasetSpec(17, "Crop", 19412, 46, 24),
        DatasetSpec(18, "ElectricDevices", 16160, 96, 7),
    ]
}


def list_dataset_ids() -> List[int]:
    """All data-set ids of Table II, in order."""
    return sorted(UCR_LIKE_SPECS)


def load_ucr_like(
    dataset_id: int,
    scale: float = 1.0,
    noise: float = 0.6,
    seed: Optional[int] = None,
    outlier_fraction: float = 0.0,
    outlier_scale: float = 4.0,
) -> LabelledDataset:
    """Generate a synthetic stand-in for a Table II data set.

    ``scale`` multiplies both the number of objects and the series length
    (each floored to sensible minima), so ``scale=0.05`` produces a data set
    with the same class structure at roughly 5% of the original size.  The
    random seed defaults to the data-set id so repeated loads are identical.
    """
    if dataset_id not in UCR_LIKE_SPECS:
        raise KeyError(
            f"unknown data-set id {dataset_id}; valid ids are {list_dataset_ids()}"
        )
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = UCR_LIKE_SPECS[dataset_id]
    num_objects = max(int(round(spec.num_objects * scale)), 4 * spec.num_classes, 8)
    length = max(int(round(spec.length * scale)), 32)
    seed = spec.dataset_id if seed is None else seed
    dataset = make_time_series_dataset(
        num_objects=num_objects,
        length=length,
        num_classes=spec.num_classes,
        noise=noise,
        seed=seed,
        name=spec.name,
        outlier_fraction=outlier_fraction,
        outlier_scale=outlier_scale,
    )
    return dataset
