"""Similarity and dissimilarity measures for time-series data.

The paper uses the Pearson correlation coefficient ``p`` as the similarity
measure and ``d = sqrt(2 (1 - p))`` as the dissimilarity measure (for
normalised, zero-mean vectors this equals the Euclidean distance).  The
stock experiment additionally preprocesses prices into detrended daily
log-returns (Musmeci et al.) before computing correlations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def correlation_matrix(data: np.ndarray) -> np.ndarray:
    """Pearson correlation matrix of the rows of ``data``.

    ``data`` has one object (time series) per row.  Rows with zero variance
    are treated as uncorrelated with everything (correlation 0) instead of
    producing NaNs, so that degenerate synthetic series cannot poison the
    filtered graph.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array with one series per row")
    centered = data - data.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    safe_norms = np.where(norms > 0, norms, 1.0)
    normalized = centered / safe_norms[:, None]
    correlation = normalized @ normalized.T
    # Zero-variance rows: no correlation signal.
    zero_variance = norms == 0
    if np.any(zero_variance):
        correlation[zero_variance, :] = 0.0
        correlation[:, zero_variance] = 0.0
    np.fill_diagonal(correlation, 1.0)
    return np.clip(correlation, -1.0, 1.0)


def correlation_to_dissimilarity(correlation: np.ndarray) -> np.ndarray:
    """The paper's dissimilarity measure ``d = sqrt(2 (1 - p))``."""
    correlation = np.asarray(correlation, dtype=float)
    dissimilarity = np.sqrt(np.clip(2.0 * (1.0 - correlation), 0.0, None))
    np.fill_diagonal(dissimilarity, 0.0)
    return dissimilarity


def similarity_and_dissimilarity(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Pearson similarity matrix and its ``sqrt(2 (1 - p))`` dissimilarity."""
    similarity = correlation_matrix(data)
    return similarity, correlation_to_dissimilarity(similarity)


def default_dissimilarity(similarity: np.ndarray) -> np.ndarray:
    """The pipeline's default dissimilarity for a bare similarity matrix.

    Correlation-like matrices get the paper's ``sqrt(2 (1 - p))`` transform;
    anything else gets the rank-preserving ``max(S) - S`` with a zeroed
    diagonal.  This is the single source of truth for every entry point that
    accepts a similarity matrix without an explicit dissimilarity
    (``tmfg_dbht``, ``pmfg_dbht``, the estimator API).
    """
    from repro.graph.matrix import correlation_like

    similarity = np.asarray(similarity, dtype=float)
    if correlation_like(similarity):
        return correlation_to_dissimilarity(similarity)
    dissimilarity = similarity.max() - similarity
    np.fill_diagonal(dissimilarity, 0.0)
    return dissimilarity


def log_returns(prices: np.ndarray) -> np.ndarray:
    """Daily log-returns of a price matrix (stocks in rows, days in columns)."""
    prices = np.asarray(prices, dtype=float)
    if prices.ndim != 2 or prices.shape[1] < 2:
        raise ValueError("prices must be a 2-D array with at least two days")
    if np.any(prices <= 0):
        raise ValueError("prices must be strictly positive")
    return np.diff(np.log(prices), axis=1)


def detrended_log_returns(prices: np.ndarray) -> np.ndarray:
    """Detrended daily log-returns (Musmeci et al., used for the stock data).

    The market-wide trend is removed by subtracting, for each day, the
    cross-sectional mean log-return; this emphasises sector-level
    co-movement over the common market factor.
    """
    returns = log_returns(prices)
    return returns - returns.mean(axis=0, keepdims=True)


def euclidean_distance_matrix(data: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between the rows of ``data``."""
    data = np.asarray(data, dtype=float)
    squared_norms = (data ** 2).sum(axis=1)
    squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * (data @ data.T)
    return np.sqrt(np.clip(squared, 0.0, None))
