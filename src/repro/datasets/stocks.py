"""Synthetic US stock market (substitute for the Yahoo Finance data).

The paper clusters the daily closing prices of 1614 US stocks (2013-2019)
and compares the clusters with the Industry Classification Benchmark (ICB)
industries, plus an analysis of market capitalisation per cluster (Figs. 10
and 11).  Real prices are not available offline, so this module simulates a
market with the structure those experiments rely on:

* each stock belongs to one of the 11 ICB industries;
* daily log-returns follow a factor model: a market-wide factor, one factor
  per industry, and idiosyncratic noise, so intra-industry correlations are
  systematically higher than inter-industry correlations;
* market capitalisations are log-normal, with some industries containing a
  larger share of small-cap (more volatile, hence noisier) stocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

# ICB industries and their abbreviations (Table III of the paper).
ICB_INDUSTRIES: Tuple[Tuple[str, str], ...] = (
    ("TEC", "Technology"),
    ("I", "Industrials"),
    ("F", "Financials"),
    ("HC", "Health Care"),
    ("CD", "Consumer Discretionary"),
    ("RE", "Real Estate"),
    ("U", "Utilities"),
    ("CS", "Consumer Staples"),
    ("BM", "Basic Materials"),
    ("E", "Energy"),
    ("TEL", "Telecommunications"),
)


@dataclass
class StockMarket:
    """Synthetic market: prices, sector labels, and market caps."""

    prices: np.ndarray
    sectors: np.ndarray
    sector_names: Tuple[str, ...]
    market_caps: np.ndarray
    tickers: Tuple[str, ...]

    @property
    def num_stocks(self) -> int:
        return self.prices.shape[0]

    @property
    def num_days(self) -> int:
        return self.prices.shape[1]

    def sector_name(self, stock: int) -> str:
        return self.sector_names[int(self.sectors[stock])]


def _sector_sizes(num_stocks: int, num_sectors: int, rng: np.random.Generator) -> np.ndarray:
    """Uneven sector sizes (markets are not balanced across industries)."""
    weights = rng.uniform(0.5, 1.5, size=num_sectors)
    weights /= weights.sum()
    sizes = np.maximum((weights * num_stocks).astype(int), 4)
    # Adjust to hit the exact total.
    while sizes.sum() > num_stocks:
        sizes[np.argmax(sizes)] -= 1
    while sizes.sum() < num_stocks:
        sizes[np.argmin(sizes)] += 1
    return sizes


def generate_stock_market(
    num_stocks: int = 300,
    num_days: int = 500,
    seed: Optional[int] = None,
    market_volatility: float = 0.008,
    sector_volatility: float = 0.010,
    idiosyncratic_volatility: float = 0.012,
    small_cap_extra_noise: float = 0.012,
) -> StockMarket:
    """Simulate a stock market with ICB-style sector structure.

    Smaller-cap stocks receive extra idiosyncratic volatility, reproducing
    the paper's observation that the most mixed clusters contain the
    smallest companies (Fig. 11).
    """
    if num_stocks < 4 * len(ICB_INDUSTRIES):
        raise ValueError(
            f"need at least {4 * len(ICB_INDUSTRIES)} stocks for {len(ICB_INDUSTRIES)} sectors"
        )
    rng = np.random.default_rng(seed)
    num_sectors = len(ICB_INDUSTRIES)
    sizes = _sector_sizes(num_stocks, num_sectors, rng)
    sectors = np.repeat(np.arange(num_sectors), sizes)
    rng.shuffle(sectors)

    # Market capitalisations: log-normal, with per-stock size percentile.
    log_caps = rng.normal(21.0, 2.0, size=num_stocks)
    market_caps = np.exp(log_caps)
    cap_percentile = np.argsort(np.argsort(market_caps)) / max(num_stocks - 1, 1)

    market_factor = rng.normal(0.0, market_volatility, size=num_days - 1)
    sector_factors = rng.normal(0.0, sector_volatility, size=(num_sectors, num_days - 1))

    returns = np.empty((num_stocks, num_days - 1))
    for stock in range(num_stocks):
        sector = sectors[stock]
        # Smaller companies load less on their sector and carry more noise.
        sector_loading = 0.7 + 0.6 * cap_percentile[stock]
        noise_scale = idiosyncratic_volatility + small_cap_extra_noise * (
            1.0 - cap_percentile[stock]
        )
        returns[stock] = (
            market_factor
            + sector_loading * sector_factors[sector]
            + rng.normal(0.0, noise_scale, size=num_days - 1)
        )

    initial_prices = rng.uniform(10.0, 200.0, size=num_stocks)
    prices = np.empty((num_stocks, num_days))
    prices[:, 0] = initial_prices
    prices[:, 1:] = initial_prices[:, None] * np.exp(np.cumsum(returns, axis=1))

    tickers = tuple(f"SYN{index:04d}" for index in range(num_stocks))
    sector_names = tuple(name for _, name in ICB_INDUSTRIES)
    return StockMarket(
        prices=prices,
        sectors=sectors,
        sector_names=sector_names,
        market_caps=market_caps,
        tickers=tickers,
    )


@dataclass
class StockStream:
    """Synthetic regime-switching return stream for the streaming workload.

    ``returns`` holds one detrended daily log-return series per stock;
    ``regimes`` labels every day with its correlation regime.  Within one
    regime, sectors are coupled into regime-specific *groups* that share a
    common factor, so the cluster structure a rolling correlation window
    sees drifts whenever the window crosses a regime boundary — the
    scenario :class:`repro.streaming.StreamingPipeline`'s drift metrics
    track.
    """

    returns: np.ndarray
    sectors: np.ndarray
    sector_names: Tuple[str, ...]
    regimes: np.ndarray
    sector_groups: np.ndarray

    @property
    def num_stocks(self) -> int:
        return self.returns.shape[0]

    @property
    def num_days(self) -> int:
        return self.returns.shape[1]

    @property
    def num_regimes(self) -> int:
        return self.sector_groups.shape[0]

    def regime_boundaries(self) -> np.ndarray:
        """Day indices where the regime changes (first day of a new regime)."""
        return np.flatnonzero(np.diff(self.regimes)) + 1


def generate_regime_switching_stream(
    num_stocks: int = 100,
    num_days: int = 600,
    num_regimes: int = 3,
    regime_length: int = 200,
    seed: Optional[int] = None,
    market_volatility: float = 0.004,
    sector_volatility: float = 0.012,
    group_coupling: float = 0.8,
    idiosyncratic_volatility: float = 0.008,
) -> StockStream:
    """Simulate a return stream whose correlation structure switches regime.

    Extends the factor model of :func:`generate_stock_market`: stocks load
    on a market factor, their sector factor, and — new here — a
    regime-specific *group* factor shared by several sectors.  Each regime
    draws its own random partition of the sectors into groups, so which
    sectors co-move (and therefore which clusters a correlation window
    recovers) changes every ``regime_length`` days; ``group_coupling``
    controls how strongly group membership dominates the sector factor.
    Regimes cycle ``0, 1, ..., num_regimes - 1, 0, ...`` over the stream.
    """
    if num_stocks < 4 * len(ICB_INDUSTRIES):
        raise ValueError(
            f"need at least {4 * len(ICB_INDUSTRIES)} stocks for {len(ICB_INDUSTRIES)} sectors"
        )
    if num_regimes < 1:
        raise ValueError("num_regimes must be at least 1")
    if regime_length < 2:
        raise ValueError("regime_length must be at least 2 days")
    if not 0.0 <= group_coupling <= 1.0:
        raise ValueError("group_coupling must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    num_sectors = len(ICB_INDUSTRIES)
    sizes = _sector_sizes(num_stocks, num_sectors, rng)
    sectors = np.repeat(np.arange(num_sectors), sizes)
    rng.shuffle(sectors)

    # Per-regime sector grouping: shuffle the sectors and pair them off, so
    # each regime merges different industries into co-moving blocks.
    num_groups = max(2, num_sectors // 2)
    sector_groups = np.empty((num_regimes, num_sectors), dtype=int)
    for regime in range(num_regimes):
        order = rng.permutation(num_sectors)
        sector_groups[regime, order] = np.arange(num_sectors) % num_groups

    regimes = (np.arange(num_days) // regime_length) % num_regimes
    market_factor = rng.normal(0.0, market_volatility, size=num_days)
    sector_factors = rng.normal(0.0, sector_volatility, size=(num_sectors, num_days))
    group_factors = rng.normal(0.0, sector_volatility, size=(num_groups, num_days))

    # Effective per-sector factor: mostly the regime's group factor, with a
    # (1 - coupling) share of the sector's own factor keeping sectors
    # distinguishable inside a group.  Variance is preserved so regime
    # switches move correlations, not volatilities.
    own_share = math.sqrt(max(0.0, 1.0 - group_coupling**2))
    effective = np.empty_like(sector_factors)
    for regime in range(num_regimes):
        days = regimes == regime
        groups_of_sector = sector_groups[regime]
        effective[:, days] = (
            own_share * sector_factors[:, days]
            + group_coupling * group_factors[groups_of_sector][:, days]
        )

    loadings = rng.uniform(0.8, 1.2, size=num_stocks)
    noise = rng.normal(0.0, idiosyncratic_volatility, size=(num_stocks, num_days))
    returns = market_factor[None, :] + loadings[:, None] * effective[sectors] + noise

    sector_names = tuple(name for _, name in ICB_INDUSTRIES)
    return StockStream(
        returns=returns,
        sectors=sectors,
        sector_names=sector_names,
        regimes=regimes,
        sector_groups=sector_groups,
    )


def cluster_sector_counts(
    labels: Sequence[int], sectors: Sequence[int], num_sectors: Optional[int] = None
) -> np.ndarray:
    """Contingency counts of predicted cluster vs. ICB sector (Fig. 10)."""
    labels = np.asarray(labels)
    sectors = np.asarray(sectors)
    if labels.shape != sectors.shape:
        raise ValueError("labels and sectors must have the same length")
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    num_sectors = int(sectors.max()) + 1 if num_sectors is None else num_sectors
    counts = np.zeros((num_clusters, num_sectors), dtype=int)
    np.add.at(counts, (labels, sectors), 1)
    return counts


def market_cap_by_group(
    market_caps: Sequence[float], groups: Sequence[int]
) -> Dict[int, np.ndarray]:
    """Market caps split by group label (sector or cluster) for Fig. 11."""
    market_caps = np.asarray(market_caps, dtype=float)
    groups = np.asarray(groups)
    return {
        int(group): market_caps[groups == group]
        for group in np.unique(groups)
    }
