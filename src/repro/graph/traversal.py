"""Breadth-first search and connected components.

Used by the original (baseline) DBHT direction step, which removes a
separating triangle and explores both sides with BFS, and by the planarity
and dataset sanity checks.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from repro.graph.weighted_graph import WeightedGraph


def bfs_order(graph: WeightedGraph, source: int, blocked: Optional[Set[int]] = None) -> List[int]:
    """Vertices reachable from ``source`` in BFS order, avoiding ``blocked``.

    ``source`` itself must not be blocked.
    """
    blocked = blocked or set()
    if source in blocked:
        raise ValueError("source vertex is blocked")
    visited = {source}
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _ in graph.neighbors(u):
            if v not in visited and v not in blocked:
                visited.add(v)
                order.append(v)
                queue.append(v)
    return order


def reachable_set(
    graph: WeightedGraph, source: int, blocked: Optional[Set[int]] = None
) -> Set[int]:
    """Set of vertices reachable from ``source`` avoiding ``blocked``."""
    return set(bfs_order(graph, source, blocked))


def connected_components(
    graph: WeightedGraph, skip: Optional[Iterable[int]] = None
) -> List[Set[int]]:
    """Connected components of the graph, optionally ignoring some vertices.

    Vertices listed in ``skip`` are treated as removed: they appear in no
    component and edges through them are not followed.
    """
    skipped = set(skip or ())
    seen: Set[int] = set(skipped)
    components: List[Set[int]] = []
    for start in range(graph.num_vertices):
        if start in seen:
            continue
        component = reachable_set(graph, start, blocked=skipped)
        seen.update(component)
        components.append(component)
    return components


def is_connected(graph: WeightedGraph) -> bool:
    """True if the graph (with at least one vertex) is connected."""
    if graph.num_vertices == 0:
        return True
    return len(bfs_order(graph, 0)) == graph.num_vertices
