"""Validation helpers for dense similarity and dissimilarity matrices.

The TMFG/DBHT pipeline takes two n x n matrices: a *similarity* matrix S
(e.g. Pearson correlations) used to build the filtered graph and to score
vertex attachments, and a *dissimilarity* matrix D (e.g. sqrt(2(1 - p)))
used for shortest-path distances and linkage.  These helpers centralise the
shape / symmetry / finiteness checks so that every public entry point fails
early with a clear error instead of producing garbage clusters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class MatrixValidationError(ValueError):
    """Raised when an input matrix does not satisfy the documented contract."""


def _as_square_float_array(matrix: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise MatrixValidationError(
            f"{name} must be a square 2-D matrix, got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise MatrixValidationError(f"{name} contains NaN or infinite entries")
    return array


def validate_similarity_matrix(
    matrix: np.ndarray,
    min_size: int = 4,
    require_symmetric: bool = True,
    atol: float = 1e-8,
) -> np.ndarray:
    """Validate and return a similarity matrix as a float numpy array.

    TMFG construction needs at least four vertices (``min_size``).  The
    matrix must be symmetric (within ``atol``); the diagonal is ignored by
    the algorithms, so it is not constrained beyond finiteness.
    """
    array = _as_square_float_array(matrix, "similarity matrix")
    n = array.shape[0]
    if n < min_size:
        raise MatrixValidationError(
            f"similarity matrix must have at least {min_size} rows, got {n}"
        )
    if require_symmetric and not np.allclose(array, array.T, atol=atol):
        raise MatrixValidationError("similarity matrix must be symmetric")
    return array


def validate_dissimilarity_matrix(
    matrix: np.ndarray,
    size: Optional[int] = None,
    atol: float = 1e-8,
) -> np.ndarray:
    """Validate and return a dissimilarity matrix.

    Entries must be non-negative (shortest paths with Dijkstra require it)
    and the matrix must be symmetric.  If ``size`` is given the matrix must
    match it (so S and D describe the same vertex set).
    """
    array = _as_square_float_array(matrix, "dissimilarity matrix")
    if size is not None and array.shape[0] != size:
        raise MatrixValidationError(
            f"dissimilarity matrix has {array.shape[0]} rows, expected {size}"
        )
    if not np.allclose(array, array.T, atol=atol):
        raise MatrixValidationError("dissimilarity matrix must be symmetric")
    if np.any(array < -atol):
        raise MatrixValidationError("dissimilarity matrix must be non-negative")
    return np.clip(array, 0.0, None)


def correlation_like(matrix: np.ndarray, atol: float = 1e-6) -> bool:
    """Return True if ``matrix`` looks like a correlation matrix.

    Checks entries in [-1, 1] and a unit diagonal.  Used by the dataset
    helpers to decide whether the default dissimilarity transform
    ``sqrt(2 (1 - p))`` is applicable.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    if not np.all(np.isfinite(array)):
        return False
    in_range = np.all(array <= 1.0 + atol) and np.all(array >= -1.0 - atol)
    unit_diagonal = np.allclose(np.diag(array), 1.0, atol=atol)
    return bool(in_range and unit_diagonal)
