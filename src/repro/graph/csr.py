"""Compressed-sparse-row (CSR) representation of the filtered graph.

The adjacency-list :class:`~repro.graph.weighted_graph.WeightedGraph` is
convenient while the TMFG is *under construction* (edges arrive one batch at
a time), but every downstream consumer — APSP, weighted degrees, the DBHT
attachment scores — only ever *reads* the finished graph.  Freezing the
graph into three flat arrays

* ``indptr``  — ``int64``, shape ``(n + 1,)``: row offsets,
* ``indices`` — ``int64``, shape ``(2m,)``: neighbour ids, and
* ``weights`` — ``float64``, shape ``(2m,)``: edge weights,

mirrors the flat array layout the paper's C++/ParlayLib implementation uses
and is what makes the vectorised kernels in
:mod:`repro.graph.shortest_paths` possible: a whole Dijkstra/Bellman-Ford
relaxation becomes slicing and ``ufunc`` calls instead of per-edge Python
tuples.  The arrays are also picklable, which is what lets the process-pool
backend in :mod:`repro.parallel.scheduler` ship graph chunks to workers.

Both directions of every undirected edge are stored, and each row's
neighbours are sorted by vertex id, so for a symmetric graph row ``v`` is
simultaneously the out-arcs *and* the in-arcs of ``v`` — the property the
batched relaxation kernel exploits.

Validation happens at freeze time: ``min_weight`` is computed once, so
shortest-path routines can reject negative weights *before* doing any
traversal work instead of failing midway through.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np


class CSRGraph:
    """Immutable undirected weighted graph in CSR (frozen) form."""

    __slots__ = ("indptr", "indices", "weights", "num_vertices", "min_weight")

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length n + 1")
        if self.indices.shape != self.weights.shape:
            raise ValueError("indices and weights must have the same shape")
        if int(self.indptr[-1]) != self.indices.size:
            raise ValueError("indptr[-1] must equal the number of stored arcs")
        self.num_vertices = int(self.indptr.size - 1)
        self.min_weight = float(self.weights.min()) if self.weights.size else 0.0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_weighted_graph(cls, graph: "WeightedGraph") -> "CSRGraph":  # noqa: F821
        """Freeze an adjacency-list graph into CSR form."""
        return cls.from_edges(
            graph.num_vertices,
            ((u, v, w) for u, v, w in graph.edges()),
        )

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int, float]]
    ) -> "CSRGraph":
        """Build from ``(u, v, weight)`` triples (each undirected edge once)."""
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.float64)
            us = arr[:, 0].astype(np.int64)
            vs = arr[:, 1].astype(np.int64)
            ws = arr[:, 2]
            if us.size and (us.min() < 0 or max(us.max(), vs.max()) >= num_vertices):
                raise IndexError("edge endpoint out of range")
            heads = np.concatenate([us, vs])
            tails = np.concatenate([vs, us])
            arc_weights = np.concatenate([ws, ws])
        else:
            heads = np.zeros(0, dtype=np.int64)
            tails = np.zeros(0, dtype=np.int64)
            arc_weights = np.zeros(0, dtype=np.float64)
        # Sort arcs by (head, tail) so each row's neighbours are ordered.
        order = np.lexsort((tails, heads))
        heads, tails, arc_weights = heads[order], tails[order], arc_weights[order]
        counts = np.bincount(heads, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, tails, arc_weights)

    def reweighted(self, matrix: np.ndarray) -> "CSRGraph":
        """Same topology, weights looked up in a dense ``(n, n)`` matrix.

        This is how the DBHT swaps the TMFG's similarity weights for the
        dissimilarity weights without rebuilding the structure: one fancy
        index instead of a per-edge Python loop.  Both directions of an
        edge ``(u, v)`` take the *upper-triangle* entry
        ``matrix[min(u, v), max(u, v)]``, so the result stays an undirected
        graph even when ``matrix`` is asymmetric within float tolerance
        (matrix validators only require symmetry up to ``atol``).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (self.num_vertices, self.num_vertices):
            raise ValueError(
                f"expected a ({self.num_vertices}, {self.num_vertices}) matrix, "
                f"got {matrix.shape}"
            )
        heads = np.repeat(np.arange(self.num_vertices), np.diff(self.indptr))
        rows = np.minimum(heads, self.indices)
        cols = np.maximum(heads, self.indices)
        return CSRGraph(self.indptr, self.indices, matrix[rows, cols])

    # -- queries -----------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return self.indices.size // 2

    def neighbors(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbour ids, weights)`` of ``u`` as array views."""
        self._check_vertex(u)
        start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
        return self.indices[start:stop], self.weights[start:stop]

    def degree(self, u: int) -> int:
        self._check_vertex(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree of every vertex in one segmented reduction."""
        result = np.zeros(self.num_vertices, dtype=np.float64)
        if self.weights.size:
            np.add.at(result, np.repeat(np.arange(self.num_vertices), self.degrees()), self.weights)
        return result

    def has_negative_weights(self) -> bool:
        return self.min_weight < 0.0

    def validate_non_negative(self) -> None:
        """Raise before any traversal work if a negative weight was frozen in."""
        if self.has_negative_weights():
            raise ValueError(
                "graph has negative edge weights "
                f"(min weight {self.min_weight}); shortest paths require "
                "non-negative weights"
            )

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.num_vertices):
            start, stop = int(self.indptr[u]), int(self.indptr[u + 1])
            for v, weight in zip(self.indices[start:stop], self.weights[start:stop]):
                if u < int(v):
                    yield u, int(v), float(weight)

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        dense = np.full((self.num_vertices, self.num_vertices), fill, dtype=np.float64)
        np.fill_diagonal(dense, 0.0)
        if self.indices.size:
            heads = np.repeat(np.arange(self.num_vertices), self.degrees())
            dense[heads, self.indices] = self.weights
        return dense

    def to_weighted_graph(self) -> "WeightedGraph":  # noqa: F821
        """Thaw back into an adjacency-list graph."""
        from repro.graph.weighted_graph import WeightedGraph

        graph = WeightedGraph(self.num_vertices)
        for u, v, weight in self.edges():
            graph.add_edge(u, v, weight)
        return graph

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices, weights)`` triple (picklable payload)."""
        return self.indptr, self.indices, self.weights

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self.num_vertices:
            raise IndexError(f"vertex {u} out of range [0, {self.num_vertices})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"
