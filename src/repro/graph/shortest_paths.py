"""Shortest-path computations on the filtered graph.

DBHT needs all-pairs shortest paths (APSP) on the TMFG/PMFG using the
*dissimilarity* weights (Line 7 of Algorithm 4).  The filtered graph has
Theta(n) edges, so running Dijkstra from every source costs
O(n^2 log n) work, matching what the paper's implementation does.  Each
single-source computation is independent, which is where the paper gets its
parallelism; here the sources can optionally be mapped over a backend.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.scheduler import ParallelBackend, get_backend


def dijkstra(graph: WeightedGraph, source: int) -> np.ndarray:
    """Single-source shortest path distances from ``source``.

    Edge weights must be non-negative.  Unreachable vertices get ``inf``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    distances = np.full(n, np.inf, dtype=float)
    distances[source] = 0.0
    visited = np.zeros(n, dtype=bool)
    heap = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, weight in graph.neighbors(u):
            if weight < 0:
                raise ValueError("Dijkstra requires non-negative edge weights")
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distances


def all_pairs_shortest_paths(
    graph: WeightedGraph,
    backend: Optional[ParallelBackend] = None,
    method: str = "dijkstra",
) -> np.ndarray:
    """All-pairs shortest path distance matrix of a sparse graph.

    ``method`` selects the implementation:

    * ``"dijkstra"`` (default) — one Dijkstra per source, the algorithm the
      paper's implementation uses.  Sources are independent; with a thread
      backend they are dispatched as a parallel map.
    * ``"scipy"`` — SciPy's C implementation of the same computation
      (``scipy.sparse.csgraph.shortest_path``).  The paper notes that APSP
      becomes the bottleneck of PAR-TDBHT and that a faster APSP would
      directly improve the end-to-end time; this backend quantifies that
      head-room (see ``benchmarks/bench_ablation_apsp.py``).

    Both methods return exactly the same distances.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros((0, 0))
    if method == "scipy":
        return _scipy_apsp(graph)
    if method != "dijkstra":
        raise ValueError(f"unknown APSP method {method!r}; expected 'dijkstra' or 'scipy'")
    backend = get_backend(backend)
    rows = backend.map(lambda source: dijkstra(graph, source), list(range(n)))
    return np.vstack(rows)


def _scipy_apsp(graph: WeightedGraph) -> np.ndarray:
    """APSP via scipy.sparse.csgraph (identical distances, C speed)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    n = graph.num_vertices
    rows, cols, data = [], [], []
    for u, v, weight in graph.edges():
        # csgraph treats stored zeros as missing edges; clamp to a tiny
        # positive value so zero-dissimilarity edges stay in the graph.
        weight = max(float(weight), 1e-12)
        rows.extend((u, v))
        cols.extend((v, u))
        data.extend((weight, weight))
    sparse = csr_matrix((data, (rows, cols)), shape=(n, n))
    return shortest_path(sparse, method="D", directed=False)


def shortest_paths_from_sources(
    graph: WeightedGraph,
    sources,
    backend: Optional[ParallelBackend] = None,
) -> np.ndarray:
    """Distances from a subset of sources (one row per source, in order)."""
    backend = get_backend(backend)
    source_list = list(sources)
    rows = backend.map(lambda source: dijkstra(graph, source), source_list)
    if not rows:
        return np.zeros((0, graph.num_vertices))
    return np.vstack(rows)
