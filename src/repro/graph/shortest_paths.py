"""Shortest-path computations on the filtered graph.

DBHT needs all-pairs shortest paths (APSP) on the TMFG/PMFG using the
*dissimilarity* weights (Line 7 of Algorithm 4).  The filtered graph has
Theta(n) edges, so running Dijkstra from every source costs O(n^2 log n)
work, matching what the paper's implementation does.  Each single-source
computation is independent, which is where the paper gets its parallelism.

The computation runs on the frozen CSR form of the graph
(:class:`~repro.graph.csr.CSRGraph`) through one of two registered kernels
(see :mod:`repro.parallel.kernels`):

* ``"python"`` — an array-heap Dijkstra per source.  Same relaxation order
  and float arithmetic as the adjacency-list reference implementation
  (:func:`dijkstra`), so the distances are byte-identical, but it runs on
  flat typed arrays instead of per-edge Python tuples.
* ``"numpy"`` — a batched Bellman-Ford-style relaxation: all sources of a
  chunk advance one hop per round via a single gather
  (``dist[:, indices] + weights``) and one segmented min
  (``np.minimum.reduceat``).  Because the CSR graph is symmetric, row ``v``
  is exactly the set of in-arcs of ``v``, so the CSR arrays double as the
  relaxation's group index.  Converges in hop-diameter rounds, which is
  small on filtered graphs.

Sources are chunked over a :class:`~repro.parallel.scheduler.ParallelBackend`;
the chunk worker is a module-level function over picklable CSR arrays, so
the process-pool backend works out of the box.  Negative weights are
rejected up front at graph freeze time (``CSRGraph.min_weight``) instead of
mid-traversal after partial work.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.weighted_graph import WeightedGraph
from repro.obs.tracer import trace_span
from repro.parallel.kernels import get_kernel, register_kernel, resolve_kernel_name
from repro.parallel.scheduler import ParallelBackend, get_backend, make_backend

GraphLike = Union[WeightedGraph, CSRGraph]

#: Landmark count used by ``apsp_method="landmark"`` when none is configured.
DEFAULT_LANDMARKS = 32

#: Sources relaxed together by the numpy kernel.  The round's working set is
#: ``arcs x block`` floats; a narrow block keeps it inside the CPU cache,
#: which dominates the kernel's throughput (wider blocks are memory-bound).
_RELAX_BLOCK_SOURCES = 16


def _as_csr(graph: GraphLike) -> CSRGraph:
    return graph if isinstance(graph, CSRGraph) else graph.to_csr()


def dijkstra(graph: GraphLike, source: int) -> np.ndarray:
    """Single-source shortest path distances from ``source``.

    Edge weights must be non-negative (validated up front, before any
    traversal work).  Unreachable vertices get ``inf``.  For a
    :class:`WeightedGraph` this is the adjacency-list reference
    implementation; a :class:`CSRGraph` takes the array-heap fast path.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    if isinstance(graph, CSRGraph):
        graph.validate_non_negative()
        return _apsp_python(graph.indptr, graph.indices, graph.weights, [source])[0]
    if graph.has_negative_weights():
        raise ValueError("Dijkstra requires non-negative edge weights")
    distances = np.full(n, np.inf, dtype=float)
    distances[source] = 0.0
    visited = np.zeros(n, dtype=bool)
    heap = [(0.0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, weight in graph.neighbors(u):
            candidate = dist_u + weight
            if candidate < distances[v]:
                distances[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distances


#: Registered APSP implementations, keyed by the ``method`` string callers
#: (and ``ClusteringConfig.apsp_method``) select with.  Each entry is called
#: as ``fn(graph, backend=..., kernel=..., **options)`` and returns the
#: ``n x n`` distance matrix.
_APSP_DISPATCH: Dict[str, Callable[..., np.ndarray]] = {}


def register_apsp_method(
    name: str, fn: Callable[..., np.ndarray], replace: bool = False
) -> None:
    """Register an APSP implementation under ``method=name``.

    The config layer validates ``apsp_method`` against this registry, so a
    method registered here is immediately usable from
    :class:`~repro.api.config.ClusteringConfig`, the CLI, and the server.
    """
    if not name or not isinstance(name, str):
        raise ValueError("APSP method name must be a non-empty string")
    if name in _APSP_DISPATCH and not replace:
        raise ValueError(f"APSP method {name!r} is already registered")
    if not callable(fn):
        raise TypeError(f"APSP method {name!r} must be callable")
    _APSP_DISPATCH[name] = fn


def available_apsp_methods() -> tuple:
    """Sorted ids of every registered APSP method."""
    return tuple(sorted(_APSP_DISPATCH))


def all_pairs_shortest_paths(
    graph: GraphLike,
    backend: Optional[Union[ParallelBackend, str]] = None,
    method: str = "dijkstra",
    kernel: Optional[str] = None,
    **options,
) -> np.ndarray:
    """All-pairs shortest path distance matrix of a sparse graph.

    ``method`` selects the algorithm from the registry
    (:func:`register_apsp_method`); the built-ins:

    * ``"dijkstra"`` (default) — one Dijkstra per source, the algorithm the
      paper's implementation uses, run as batched CSR kernels with the
      sources chunked over the backend.  ``kernel`` picks the
      implementation (``"python"``/``"numpy"``, default the registry's
      process-wide default; both produce identical distances).
    * ``"floyd"`` — a vectorised Floyd-Warshall on the dense matrix.  O(n^3)
      work but only ``n`` numpy operations, which wins for small ``n``;
      distances may differ from Dijkstra's in the last float ulp because
      path sums associate differently.
    * ``"scipy"`` — SciPy's C implementation
      (``scipy.sparse.csgraph.shortest_path``).  The paper notes that APSP
      becomes the bottleneck of PAR-TDBHT and that a faster APSP would
      directly improve the end-to-end time; this quantifies that head-room
      (see ``benchmarks/bench_apsp_backends.py``).
    * ``"incremental"`` — exact distances repaired from a carried
      :class:`~repro.graph.incremental_apsp.IncrementalAPSP` engine passed
      as ``state=``; byte-identical to ``"dijkstra"`` on every call, cheap
      when little changed since the previous one.  Without ``state`` it IS
      a cold ``"dijkstra"`` run.
    * ``"landmark"`` — opt-in approximate upper bounds from ``landmarks=``
      exact SSSP rows (farthest-point-sampled pivots); see
      :func:`_landmark_apsp` for the error model.

    Extra keyword ``options`` are forwarded to the selected method.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros((0, 0))
    try:
        fn = _APSP_DISPATCH[method]
    except KeyError:
        valid = ", ".join(repr(name) for name in available_apsp_methods())
        raise ValueError(
            f"unknown APSP method {method!r}; expected one of: {valid}"
        ) from None
    with trace_span("kernel.apsp", method=method, n=int(n)) as probe:
        if kernel is not None:
            probe.set_attribute("kernel", kernel)
        return fn(graph, backend=backend, kernel=kernel, **options)


def shortest_paths_from_sources(
    graph: GraphLike,
    sources: Sequence[int],
    backend: Optional[Union[ParallelBackend, str]] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Distances from a subset of sources (one row per source, in order)."""
    source_array = np.asarray(list(sources), dtype=np.int64)
    if source_array.size == 0:
        return np.zeros((0, graph.num_vertices))
    return _batched_sssp(_as_csr(graph), source_array, backend, kernel)


def _batched_sssp(
    csr: CSRGraph,
    sources: np.ndarray,
    backend: Optional[Union[ParallelBackend, str]],
    kernel: Optional[str],
) -> np.ndarray:
    """Chunk ``sources`` over the backend and run the selected kernel."""
    csr.validate_non_negative()
    if sources.size and (
        int(sources.min()) < 0 or int(sources.max()) >= csr.num_vertices
    ):
        raise IndexError(
            f"source out of range [0, {csr.num_vertices}): "
            f"{[int(s) for s in sources if not 0 <= s < csr.num_vertices]}"
        )
    kernel_name = resolve_kernel_name(kernel, "apsp")
    # A backend given by name is constructed here and therefore owned (and
    # closed) here; instances stay under the caller's control.
    owns_backend = isinstance(backend, str)
    resolved = make_backend(backend) if owns_backend else get_backend(backend)
    try:
        num_chunks = min(len(sources), max(1, resolved.num_workers))
        chunks = np.array_split(sources, num_chunks)
        worker = partial(_sssp_chunk, csr.indptr, csr.indices, csr.weights, kernel_name)
        return np.vstack(resolved.map(worker, chunks))
    finally:
        if owns_backend:
            resolved.close()


def _sssp_chunk(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    kernel_name: str,
    sources: np.ndarray,
) -> np.ndarray:
    """Module-level chunk worker: picklable for the process backend."""
    return get_kernel("apsp", kernel_name)(indptr, indices, weights, sources)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _apsp_python(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    sources: Sequence[int],
) -> np.ndarray:
    """Array-heap Dijkstra per source.

    The CSR arrays are lowered to Python lists once per chunk so the inner
    relaxation loop touches no numpy scalars (which dominate the cost of the
    naive per-edge loop).
    """
    n = indptr.size - 1
    rows = np.full((len(sources), n), np.inf, dtype=float)
    starts = indptr.tolist()
    neighbor_list = indices.tolist()
    weight_list = weights.tolist()
    inf = float("inf")
    for row_index, source in enumerate(sources):
        source = int(source)
        distances = [inf] * n
        distances[source] = 0.0
        visited = [False] * n
        heap = [(0.0, source)]
        push, pop = heapq.heappush, heapq.heappop
        while heap:
            dist_u, u = pop(heap)
            if visited[u]:
                continue
            visited[u] = True
            for arc in range(starts[u], starts[u + 1]):
                v = neighbor_list[arc]
                candidate = dist_u + weight_list[arc]
                if candidate < distances[v]:
                    distances[v] = candidate
                    push(heap, (candidate, v))
        rows[row_index] = distances
    return rows


def _apsp_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    sources: Sequence[int],
) -> np.ndarray:
    """Batched relaxation: every source advances one hop per numpy round.

    Distances are kept transposed (vertices x sources) so the per-round
    gather ``dist[indices]`` reads contiguous rows, and the in-arc segments
    of the symmetric CSR give the segmented min directly.  Converges in
    hop-diameter rounds; the result is byte-identical to Dijkstra's because
    every path's length is accumulated in the same source-to-target order.
    """
    n = indptr.size - 1
    sources = np.asarray(sources, dtype=np.int64)
    dist = np.full((sources.size, n), np.inf, dtype=float)
    dist[np.arange(sources.size), sources] = 0.0
    if indices.size == 0 or sources.size == 0:
        return dist
    # ``reduceat`` cannot express empty segments, so reduce only over the
    # vertices that have in-arcs (their starts partition the arc array
    # exactly) and scatter into the full rows; isolated vertices keep inf.
    active = np.flatnonzero(np.diff(indptr) > 0)
    segment_starts = indptr[:-1][active]
    all_active = active.size == n
    weight_column = weights[:, None]
    for begin in range(0, sources.size, _RELAX_BLOCK_SOURCES):
        block_sources = sources[begin : begin + _RELAX_BLOCK_SOURCES]
        width = block_sources.size
        transposed = np.full((n, width), np.inf, dtype=float)
        transposed[block_sources, np.arange(width)] = 0.0
        candidates = np.empty((indices.size, width), dtype=float)
        for _ in range(n):
            np.take(transposed, indices, axis=0, out=candidates)
            candidates += weight_column
            reduced = np.minimum.reduceat(candidates, segment_starts, axis=0)
            if all_active:
                relaxed = reduced
            else:
                relaxed = np.full((n, width), np.inf, dtype=float)
                relaxed[active] = reduced
            np.minimum(transposed, relaxed, out=relaxed)
            if np.array_equal(relaxed, transposed):
                break
            transposed, relaxed = relaxed, transposed
        dist[begin : begin + width] = transposed.T
    return dist


register_kernel("apsp", "python", _apsp_python)
register_kernel("apsp", "numpy", _apsp_numpy)


def _floyd_warshall(csr: CSRGraph) -> np.ndarray:
    """Vectorised Floyd-Warshall on the dense matrix (small-``n`` fallback)."""
    dist = csr.to_dense(fill=np.inf)
    for k in range(csr.num_vertices):
        np.minimum(dist, np.add.outer(dist[:, k], dist[k, :]), out=dist)
    return dist


def _scipy_apsp(graph: GraphLike) -> np.ndarray:
    """APSP via scipy.sparse.csgraph (identical distances, C speed)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    n = graph.num_vertices
    # csgraph treats stored zeros as missing edges; clamp to a tiny
    # positive value so zero-dissimilarity edges stay in the graph.
    csr = _as_csr(graph)
    sparse = csr_matrix(
        (np.maximum(csr.weights, 1e-12), csr.indices, csr.indptr), shape=(n, n)
    )
    return shortest_path(sparse, method="D", directed=False)


# ---------------------------------------------------------------------------
# Method registry entries
# ---------------------------------------------------------------------------


def _dijkstra_apsp(graph: GraphLike, backend=None, kernel=None) -> np.ndarray:
    csr = _as_csr(graph)
    return _batched_sssp(csr, np.arange(csr.num_vertices), backend, kernel)


def _floyd_apsp(graph: GraphLike, backend=None, kernel=None) -> np.ndarray:
    csr = _as_csr(graph)
    csr.validate_non_negative()
    return _floyd_warshall(csr)


def _scipy_apsp_method(graph: GraphLike, backend=None, kernel=None) -> np.ndarray:
    return _scipy_apsp(graph)


def _incremental_apsp_method(
    graph: GraphLike, backend=None, kernel=None, state=None
) -> np.ndarray:
    """Exact APSP repaired from a carried engine (cold dijkstra without one)."""
    if state is None:
        return _dijkstra_apsp(graph, backend=backend, kernel=kernel)
    from repro.graph.incremental_apsp import IncrementalAPSP

    if not isinstance(state, IncrementalAPSP):
        raise TypeError(
            "state for apsp_method='incremental' must be an IncrementalAPSP "
            f"engine, got {type(state).__name__}"
        )
    return state.update(graph, backend=backend, kernel=kernel)


def select_landmarks(
    graph: GraphLike, count: int, kernel: Optional[str] = None
) -> tuple:
    """Deterministic farthest-point landmark selection.

    Returns ``(landmark ids, their exact SSSP rows)``.  The first landmark
    is the maximum-degree vertex (the TMFG's dominant hub — ties break to
    the lowest id); each subsequent one maximises the distance to the
    already-chosen set.  The sequence is *nested*: the first ``k`` landmarks
    of a ``count=k+1`` run are exactly the ``count=k`` run's, so estimates
    improve pointwise monotonically as ``count`` grows.
    """
    csr = _as_csr(graph)
    csr.validate_non_negative()
    n = csr.num_vertices
    count = int(count)
    if count < 1:
        raise ValueError(f"landmark count must be >= 1, got {count}")
    count = min(count, n)
    kernel_name = resolve_kernel_name(kernel, "apsp")
    sssp = get_kernel("apsp", kernel_name)
    chosen = [int(np.argmax(csr.degrees()))]
    rows = [sssp(csr.indptr, csr.indices, csr.weights, [chosen[0]])[0]]
    nearest = rows[0].copy()
    while len(chosen) < count:
        nearest[chosen] = -np.inf
        # An inf entry is an unreached component; argmax lands there first,
        # giving every component a landmark before refining within one.
        pivot = int(np.argmax(nearest))
        chosen.append(pivot)
        row = sssp(csr.indptr, csr.indices, csr.weights, [pivot])[0]
        rows.append(row)
        np.minimum(nearest, row, out=nearest)
    return tuple(chosen), np.vstack(rows)


def _landmark_apsp(
    graph: GraphLike, backend=None, kernel=None, landmarks: Optional[int] = None
) -> np.ndarray:
    """Approximate APSP from ``landmarks`` exact SSSP rows (opt-in only).

    Runs one exact SSSP per landmark and estimates
    ``d(u, v) ~= min_l d(l, u) + d(l, v)`` — an upper bound that is exact
    whenever some shortest path passes a landmark, clamped by direct edge
    weights so adjacent pairs are never overestimated.  Cost is
    ``O(L * n log n + L * n^2)`` against Dijkstra's ``O(n^2 log n)``; the
    bound tightens monotonically with ``L`` (nested landmark sequence) and
    becomes exact at ``L >= n``.
    """
    csr = _as_csr(graph)
    n = csr.num_vertices
    count = DEFAULT_LANDMARKS if landmarks is None else int(landmarks)
    if count < 1:
        raise ValueError(f"landmark count must be >= 1, got {count}")
    if count >= n:
        return _dijkstra_apsp(csr, backend=backend, kernel=kernel)
    _, rows = select_landmarks(csr, count, kernel=kernel)
    estimate = np.full((n, n), np.inf, dtype=float)
    for row in rows:
        np.minimum(estimate, np.add.outer(row, row), out=estimate)
    # Direct edges beat any over-the-landmark detour for adjacent pairs.
    heads = np.repeat(np.arange(n, dtype=np.int64), csr.degrees())
    np.minimum.at(estimate, (heads, csr.indices), csr.weights)
    np.fill_diagonal(estimate, 0.0)
    return estimate


register_apsp_method("dijkstra", _dijkstra_apsp)
register_apsp_method("floyd", _floyd_apsp)
register_apsp_method("scipy", _scipy_apsp_method)
register_apsp_method("incremental", _incremental_apsp_method)
register_apsp_method("landmark", _landmark_apsp)
