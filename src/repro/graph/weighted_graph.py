"""Undirected weighted graph stored as adjacency lists.

The filtered graphs produced by TMFG/PMFG are sparse (3n - 6 edges), so the
DBHT phases (shortest paths, weighted degrees, attachment scores) operate on
this adjacency-list structure instead of the dense similarity matrix.
Vertices are integers ``0 .. n-1``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

Edge = Tuple[int, int]


class WeightedGraph:
    """Simple undirected weighted graph on vertices ``0 .. n-1``."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._adjacency: List[Dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int, float]]
    ) -> "WeightedGraph":
        """Build a graph from ``(u, v, weight)`` triples."""
        graph = cls(num_vertices)
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    @classmethod
    def from_edge_list_and_matrix(
        cls, num_vertices: int, edges: Iterable[Edge], weights: np.ndarray
    ) -> "WeightedGraph":
        """Build a graph from an edge list, taking weights from a dense matrix."""
        graph = cls(num_vertices)
        for u, v in edges:
            graph.add_edge(u, v, float(weights[u, v]))
        return graph

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add (or overwrite) the undirected edge ``(u, v)``."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v not in self._adjacency[u]:
            self._num_edges += 1
        self._adjacency[u][v] = float(weight)
        self._adjacency[v][u] = float(weight)

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of the edge ``(u, v)``; raises ``KeyError`` if absent."""
        self._check_vertex(u)
        return self._adjacency[u][v]

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_vertex(u)
        return iter(self._adjacency[u].items())

    def neighbor_ids(self, u: int) -> List[int]:
        self._check_vertex(u)
        return list(self._adjacency[u].keys())

    def degree(self, u: int) -> int:
        """Number of edges incident to ``u``."""
        self._check_vertex(u)
        return len(self._adjacency[u])

    def weighted_degree(self, u: int) -> float:
        """Sum of the weights of edges incident to ``u``."""
        self._check_vertex(u)
        return float(sum(self._adjacency[u].values()))

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree of every vertex as an array."""
        return np.array(
            [self.weighted_degree(u) for u in range(self._num_vertices)], dtype=float
        )

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over undirected edges as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self._num_vertices):
            for v, weight in self._adjacency[u].items():
                if u < v:
                    yield u, v, weight

    def edge_weight_sum(self) -> float:
        """Total weight over all (undirected) edges."""
        return float(sum(weight for _, _, weight in self.edges()))

    def has_negative_weights(self) -> bool:
        """Whether any edge has a negative weight (O(m) scan)."""
        return any(
            weight < 0 for adjacency in self._adjacency for weight in adjacency.values()
        )

    def to_csr(self) -> "CSRGraph":
        """Freeze into an immutable :class:`~repro.graph.csr.CSRGraph`.

        The CSR form is what the vectorised shortest-path kernels and the
        process-pool backend operate on; freezing also validates the weights
        once (``min_weight``) so traversals can fail fast.
        """
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_weighted_graph(self)

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        """Dense weight matrix (``fill`` where no edge exists, 0 on the diagonal)."""
        dense = np.full((self._num_vertices, self._num_vertices), fill, dtype=float)
        np.fill_diagonal(dense, 0.0)
        for u, v, weight in self.edges():
            dense[u, v] = weight
            dense[v, u] = weight
        return dense

    def copy(self) -> "WeightedGraph":
        clone = WeightedGraph(self._num_vertices)
        for u, v, weight in self.edges():
            clone.add_edge(u, v, weight)
        return clone

    def subgraph_without_vertices(self, removed: Iterable[int]) -> "WeightedGraph":
        """Copy of the graph with the given vertices' edges removed.

        Vertex ids are preserved (removed vertices simply become isolated),
        which keeps indexing simple for the BFS-based direction baseline.
        """
        removed_set = set(removed)
        clone = WeightedGraph(self._num_vertices)
        for u, v, weight in self.edges():
            if u not in removed_set and v not in removed_set:
                clone.add_edge(u, v, weight)
        return clone

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self._num_vertices:
            raise IndexError(f"vertex {u} out of range [0, {self._num_vertices})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"WeightedGraph(n={self._num_vertices}, m={self._num_edges})"
