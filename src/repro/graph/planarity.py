"""Left-Right planarity test.

The PMFG baseline adds candidate edges in decreasing weight order and keeps
an edge only if the graph stays planar, so it needs a planarity test that is
fast enough to be called once per candidate edge.  This module implements
the Left-Right (de Fraysseix / Rosenstiehl, as described by Brandes)
planarity *test* — the boolean decision, without constructing an embedding —
which runs in O(n + m) time per call.

The test is validated against ``networkx.check_planarity`` in the test
suite, including property-based tests over random graphs, K5/K3,3
subdivisions, and graphs produced by the TMFG construction (which are planar
by construction).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.weighted_graph import WeightedGraph

Edge = Tuple[int, int]


@contextmanager
def _recursion_limit(limit: int):
    old = sys.getrecursionlimit()
    if limit > old:
        sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


class _Interval:
    """An interval of return edges, bounded by a low and a high edge."""

    __slots__ = ("low", "high")

    def __init__(self, low: Optional[Edge] = None, high: Optional[Edge] = None) -> None:
        self.low = low
        self.high = high

    def empty(self) -> bool:
        return self.low is None and self.high is None

    def copy(self) -> "_Interval":
        return _Interval(self.low, self.high)


class _ConflictPair:
    """A pair of intervals of return edges that must go to opposite sides."""

    __slots__ = ("left", "right")

    def __init__(
        self, left: Optional[_Interval] = None, right: Optional[_Interval] = None
    ) -> None:
        self.left = left if left is not None else _Interval()
        self.right = right if right is not None else _Interval()

    def swap(self) -> None:
        self.left, self.right = self.right, self.left


class NotPlanarError(Exception):
    """Internal signal raised when a conflict proves the graph non-planar."""


class _LRPlanarity:
    """State for one run of the Left-Right planarity test."""

    def __init__(self, num_vertices: int, edges: Iterable[Edge]) -> None:
        self.n = num_vertices
        self.adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
        self.num_edges = 0
        seen = set()
        for u, v in edges:
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            self.adjacency[u].append(v)
            self.adjacency[v].append(u)
            self.num_edges += 1

        self.height: List[Optional[int]] = [None] * num_vertices
        self.parent_edge: List[Optional[Edge]] = [None] * num_vertices
        self.lowpt: Dict[Edge, int] = {}
        self.lowpt2: Dict[Edge, int] = {}
        self.nesting_depth: Dict[Edge, int] = {}
        self.oriented: set = set()
        self.directed_adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
        self.ordered_adjacency: List[List[int]] = [[] for _ in range(num_vertices)]
        self.ref: Dict[Edge, Optional[Edge]] = {}
        self.side: Dict[Edge, int] = {}
        self.stack: List[_ConflictPair] = []
        self.stack_bottom: Dict[Edge, Optional[_ConflictPair]] = {}
        self.lowpt_edge: Dict[Edge, Edge] = {}
        self.roots: List[int] = []

    # -- public entry ------------------------------------------------------

    def is_planar(self) -> bool:
        if self.n <= 4:
            # Any graph on at most four vertices is planar.
            return True
        if self.num_edges > 3 * self.n - 6:
            return False
        with _recursion_limit(4 * self.n + 1000):
            for v in range(self.n):
                if self.height[v] is None:
                    self.height[v] = 0
                    self.roots.append(v)
                    self._dfs_orientation(v)
            for v in range(self.n):
                self.ordered_adjacency[v] = sorted(
                    self.directed_adjacency[v],
                    key=lambda w: self.nesting_depth[(v, w)],
                )
            try:
                for root in self.roots:
                    self._dfs_testing(root)
            except NotPlanarError:
                return False
        return True

    # -- phase 1: orientation ----------------------------------------------

    def _dfs_orientation(self, root: int) -> None:
        # Iterative DFS mirroring the recursive formulation, so that very
        # deep trees do not overflow the interpreter stack.
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            v, index = stack.pop()
            parent = self.parent_edge[v]
            advanced = False
            while index < len(self.adjacency[v]):
                w = self.adjacency[v][index]
                index += 1
                if (v, w) in self.oriented or (w, v) in self.oriented:
                    continue
                edge = (v, w)
                self.oriented.add(edge)
                self.directed_adjacency[v].append(w)
                self.lowpt[edge] = self.height[v]  # type: ignore[assignment]
                self.lowpt2[edge] = self.height[v]  # type: ignore[assignment]
                if self.height[w] is None:
                    # Tree edge: descend into w, then resume v afterwards.
                    self.parent_edge[w] = edge
                    self.height[w] = self.height[v] + 1  # type: ignore[operator]
                    stack.append((v, index))
                    stack.append((w, 0))
                    advanced = True
                    break
                # Back edge.
                self.lowpt[edge] = self.height[w]
                self._finish_edge(v, edge, parent)
            if advanced:
                continue
            # All outgoing edges of v processed; finish the tree edge into v.
            if parent is not None:
                # The tree edge (u, v) gets its nesting depth and updates its
                # parent's low points once the whole subtree of v is done.
                self._finish_edge(parent[0], parent, self.parent_edge[parent[0]])

    def _finish_edge(self, v: int, edge: Edge, parent: Optional[Edge]) -> None:
        """Set nesting depth of ``edge`` and fold its low points into ``parent``."""
        self.nesting_depth[edge] = 2 * self.lowpt[edge]
        if self.lowpt2[edge] < self.height[v]:  # type: ignore[operator]
            self.nesting_depth[edge] += 1
        if parent is not None:
            if self.lowpt[edge] < self.lowpt[parent]:
                self.lowpt2[parent] = min(self.lowpt[parent], self.lowpt2[edge])
                self.lowpt[parent] = self.lowpt[edge]
            elif self.lowpt[edge] > self.lowpt[parent]:
                self.lowpt2[parent] = min(self.lowpt2[parent], self.lowpt[edge])
            else:
                self.lowpt2[parent] = min(self.lowpt2[parent], self.lowpt2[edge])

    # -- phase 2: testing ---------------------------------------------------

    def _dfs_testing(self, root: int) -> None:
        # Each frame is (v, index, pending) where ``pending`` is true when we
        # are resuming after the subtree of the tree edge at ``index`` has
        # been fully processed, so the edge still needs to be integrated.
        stack: List[Tuple[int, int, bool]] = [(root, 0, False)]
        while stack:
            v, index, pending = stack.pop()
            parent = self.parent_edge[v]
            if pending:
                # The tree edge ordered_adjacency[v][index] just finished.
                w = self.ordered_adjacency[v][index]
                self._integrate_edge(v, (v, w), index, parent)
                index += 1
            advanced = False
            while index < len(self.ordered_adjacency[v]):
                w = self.ordered_adjacency[v][index]
                edge = (v, w)
                self.stack_bottom[edge] = self.stack[-1] if self.stack else None
                if edge == self.parent_edge[w]:
                    # Tree edge: descend into w, then resume at this index.
                    stack.append((v, index, True))
                    stack.append((w, 0, False))
                    advanced = True
                    break
                # Back edge.
                self.lowpt_edge[edge] = edge
                self.stack.append(_ConflictPair(right=_Interval(edge, edge)))
                self._integrate_edge(v, edge, index, parent)
                index += 1
            if advanced:
                continue
            if parent is not None:
                self._finish_vertex(v, parent)

    def _integrate_edge(
        self, v: int, edge: Edge, index: int, parent: Optional[Edge]
    ) -> None:
        """Fold the return edges of ``edge`` into the constraints of ``parent``."""
        if self.lowpt[edge] < self.height[v]:  # type: ignore[operator]
            # edge has a return edge below v
            if index == 0:
                if parent is not None:
                    self.lowpt_edge[parent] = self.lowpt_edge[edge]
            else:
                self._add_constraints(edge, parent)

    def _add_constraints(self, edge: Edge, parent: Optional[Edge]) -> None:
        if parent is None:
            return
        pair = _ConflictPair()
        # Merge return edges of ``edge`` into pair.right.
        while True:
            popped = self.stack.pop()
            if not popped.left.empty():
                popped.swap()
            if not popped.left.empty():
                raise NotPlanarError
            assert popped.right.low is not None
            if self.lowpt[popped.right.low] > self.lowpt[parent]:
                if pair.right.empty():
                    pair.right.high = popped.right.high
                else:
                    self.ref[pair.right.low] = popped.right.high  # type: ignore[index]
                pair.right.low = popped.right.low
            else:
                self.ref[popped.right.low] = self.lowpt_edge[parent]
            top = self.stack[-1] if self.stack else None
            if top is self.stack_bottom[edge]:
                break
        # Merge conflicting return edges of earlier siblings into pair.left.
        while self.stack and (
            self._conflicting(self.stack[-1].left, edge)
            or self._conflicting(self.stack[-1].right, edge)
        ):
            popped = self.stack.pop()
            if self._conflicting(popped.right, edge):
                popped.swap()
            if self._conflicting(popped.right, edge):
                raise NotPlanarError
            self.ref[pair.right.low] = popped.right.high  # type: ignore[index]
            if popped.right.low is not None:
                pair.right.low = popped.right.low
            if pair.left.empty():
                pair.left.high = popped.left.high
            else:
                self.ref[pair.left.low] = popped.left.high  # type: ignore[index]
            pair.left.low = popped.left.low
        if not (pair.left.empty() and pair.right.empty()):
            self.stack.append(pair)

    def _conflicting(self, interval: _Interval, edge: Edge) -> bool:
        return (not interval.empty()) and self.lowpt[interval.high] > self.lowpt[edge]  # type: ignore[index]

    def _lowest(self, pair: _ConflictPair) -> int:
        if pair.left.empty():
            return self.lowpt[pair.right.low]  # type: ignore[index]
        if pair.right.empty():
            return self.lowpt[pair.left.low]  # type: ignore[index]
        return min(self.lowpt[pair.left.low], self.lowpt[pair.right.low])  # type: ignore[index]

    def _finish_vertex(self, v: int, parent: Edge) -> None:
        u = parent[0]
        # Trim back edges ending at the parent u.
        while self.stack and self._lowest(self.stack[-1]) == self.height[u]:
            popped = self.stack.pop()
            if popped.left.low is not None:
                self.side[popped.left.low] = -1
        if self.stack:
            pair = self.stack.pop()
            # Trim left interval.
            while pair.left.high is not None and pair.left.high[1] == u:
                pair.left.high = self.ref.get(pair.left.high)
            if pair.left.high is None and pair.left.low is not None:
                self.ref[pair.left.low] = pair.right.low
                self.side[pair.left.low] = -1
                pair.left.low = None
            # Trim right interval.
            while pair.right.high is not None and pair.right.high[1] == u:
                pair.right.high = self.ref.get(pair.right.high)
            if pair.right.high is None and pair.right.low is not None:
                self.ref[pair.right.low] = pair.left.low
                self.side[pair.right.low] = -1
                pair.right.low = None
            self.stack.append(pair)
        # Determine the reference edge of ``parent``.
        if self.lowpt[parent] < self.height[u]:  # type: ignore[operator]
            if self.stack:
                high_left = self.stack[-1].left.high
                high_right = self.stack[-1].right.high
                if high_left is not None and (
                    high_right is None or self.lowpt[high_left] > self.lowpt[high_right]
                ):
                    self.ref[parent] = high_left
                else:
                    self.ref[parent] = high_right


def is_planar(graph_or_edges, num_vertices: Optional[int] = None) -> bool:
    """Return True if the graph is planar.

    Accepts either a :class:`WeightedGraph` or an iterable of ``(u, v)``
    edges together with ``num_vertices``.
    """
    if isinstance(graph_or_edges, WeightedGraph):
        edges = [(u, v) for u, v, _ in graph_or_edges.edges()]
        n = graph_or_edges.num_vertices
    else:
        if num_vertices is None:
            raise ValueError("num_vertices is required when passing an edge list")
        edges = [(u, v) for u, v in graph_or_edges]
        n = num_vertices
    return _LRPlanarity(n, edges).is_planar()


def is_planar_with_extra_edge(
    num_vertices: int, edges: List[Edge], extra_edge: Edge
) -> bool:
    """Planarity of the graph formed by ``edges`` plus one candidate edge.

    Convenience wrapper used by the PMFG construction loop.
    """
    return is_planar(list(edges) + [extra_edge], num_vertices=num_vertices)
