"""Triangular faces of the filtered graph under construction.

TMFG construction maintains the set of triangular faces of the growing
maximal planar graph; every vertex insertion removes one face and creates
three.  A face is identified by the frozenset of its three corner vertices,
which is sufficient because a maximal planar graph built by the TMFG process
never creates two distinct faces with the same corner set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

Triangle = FrozenSet[int]


def triangle_key(a: int, b: int, c: int) -> Triangle:
    """Canonical identifier for the triangular face with corners ``a, b, c``."""
    if a == b or b == c or a == c:
        raise ValueError(f"triangle corners must be distinct, got ({a}, {b}, {c})")
    return frozenset((a, b, c))


def triangle_corners(triangle: Triangle) -> Tuple[int, int, int]:
    """Corners of a triangle in sorted order."""
    corners = tuple(sorted(triangle))
    if len(corners) != 3:
        raise ValueError(f"expected 3 distinct corners, got {set(triangle)}")
    return corners  # type: ignore[return-value]


def child_faces(triangle: Triangle, vertex: int) -> Tuple[Triangle, Triangle, Triangle]:
    """The three faces created by inserting ``vertex`` into ``triangle``."""
    a, b, c = triangle_corners(triangle)
    if vertex in (a, b, c):
        raise ValueError(f"vertex {vertex} is already a corner of the face")
    return (
        triangle_key(vertex, a, b),
        triangle_key(vertex, b, c),
        triangle_key(vertex, a, c),
    )


@dataclass(frozen=True)
class VertexFacePair:
    """A candidate insertion of ``vertex`` into ``face`` with the given gain."""

    vertex: int
    face: Triangle
    gain: float

    def sort_key(self) -> Tuple[float, int, Tuple[int, int, int]]:
        """Key for descending-gain ordering with deterministic tie-breaks."""
        return (self.gain, -self.vertex, tuple(-c for c in triangle_corners(self.face)))
