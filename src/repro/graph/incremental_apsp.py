"""Exact incremental all-pairs shortest paths across small edge deltas.

The streaming workload recomputes APSP on a TMFG whose *topology and most
edge weights survive* from one warm tick to the next — the ROADMAP's
"dynamic APSP" item.  :class:`IncrementalAPSP` keeps the previous graph and
its distance matrix, diffs the next graph against it, and recomputes only
the source rows whose distances can actually change.  Rows it keeps are
**provably byte-identical** to a cold recompute, so the engine carries the
same equivalence guarantee as the TMFG warm starts: output never differs
from cold ``dijkstra``, only the cost does.

Which rows can change?
----------------------
Dijkstra's distance ``d(s, t)`` equals the minimum, over all ``s -> t``
paths, of the path's left-associated float sum (each relaxation computes
``fl(d[u] + w)``, so every candidate value *is* such a sum, and the minimum
is attained by the settled predecessor chain).  That characterisation gives
two sound per-edge tests against the current matrix ``D``:

* **inserted or decreased** edge ``(u, v, w_new)``: row ``s`` can only
  change if the edge improves something it can reach, i.e.
  ``fl(D[s,u] + w_new) < D[s,v]`` or ``fl(D[s,v] + w_new) < D[s,u]``.
  Otherwise every path through the edge is at least as long as a path that
  avoids it (replace the prefix through the edge with the old shortest
  path; float addition is monotone, so the bound survives rounding).
* **removed or increased** edge ``(u, v, w_old)``: row ``s`` can only
  change if the edge was *tight* — on some shortest path — i.e.
  ``fl(D[s,u] + w_old) == D[s,v]`` or ``fl(D[s,v] + w_old) == D[s,u]``.
  If not, the predecessor chain Dijkstra settled (whose arcs are all tight
  by construction) avoids the edge, so the minimum is unaffected.

Unaffected rows are reused as-is; affected rows are recomputed with the
registered cold kernels (:mod:`repro.parallel.kernels`) on the new graph,
chunked over the same :class:`~repro.parallel.scheduler.ParallelBackend` as
a cold run.  When the delta is large (a cold start, a reshaped universe, or
more than ``rebuild_edge_fraction`` of the edges changed) the engine skips
the tests and recomputes everything — it degrades to exactly one cold APSP
plus an O(m) diff, never worse.

The dispatcher exposes this as ``apsp_method="incremental"`` (see
:func:`repro.graph.shortest_paths.all_pairs_shortest_paths`); the streaming
runner owns one engine per stream and threads it through the estimator so a
warm tick's APSP cost scales with the delta instead of ``n^2 log n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.weighted_graph import WeightedGraph

GraphLike = Union[WeightedGraph, CSRGraph]

#: Give up on row-level repair and recompute everything once more than this
#: fraction of the undirected edges changed: the per-edge tests would cost
#: more than they could save, and a full rebuild is exactly a cold run.
REBUILD_EDGE_FRACTION = 0.25

#: Likewise once the affected-source tests mark more than this fraction of
#: the rows: recomputing nearly all rows through the row-repair path would
#: only add the diff overhead on top of a cold run's cost.
REBUILD_ROW_FRACTION = 0.75


@dataclass
class IncrementalStats:
    """Counters describing how much work the engine actually did."""

    updates: int = 0
    full_rebuilds: int = 0
    unchanged_updates: int = 0
    changed_edges: int = 0
    recomputed_rows: int = 0
    reused_rows: int = 0
    last_changed_edges: int = 0
    last_recomputed_rows: int = 0

    @property
    def reuse_rate(self) -> float:
        """Fraction of rows served from the previous matrix."""
        total = self.recomputed_rows + self.reused_rows
        return self.reused_rows / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "updates": self.updates,
            "full_rebuilds": self.full_rebuilds,
            "unchanged_updates": self.unchanged_updates,
            "changed_edges": self.changed_edges,
            "recomputed_rows": self.recomputed_rows,
            "reused_rows": self.reused_rows,
            "reuse_rate": self.reuse_rate,
        }


@dataclass(frozen=True)
class _EdgeDelta:
    """Undirected edge changes between two graphs on the same vertex set."""

    # Edges present in the new graph that were absent before, or whose
    # weight decreased: tested with the *new* weight for improvement.
    improve_u: np.ndarray
    improve_v: np.ndarray
    improve_w: np.ndarray
    # Edges absent from the new graph, or whose weight increased: tested
    # with the *old* weight for tightness.
    tight_u: np.ndarray
    tight_v: np.ndarray
    tight_w: np.ndarray

    @property
    def num_changed(self) -> int:
        return int(self.improve_u.size + self.tight_u.size)


def _edge_keys(csr: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """``(sorted unique u*n+v keys, weights)`` over undirected edges (u<v).

    CSR arcs are sorted by ``(head, tail)``, so the upper-triangle arcs are
    already in ascending key order — no sort needed.
    """
    heads = np.repeat(np.arange(csr.num_vertices, dtype=np.int64), csr.degrees())
    upper = heads < csr.indices
    keys = heads[upper] * np.int64(csr.num_vertices) + csr.indices[upper]
    return keys, csr.weights[upper]


def _diff_graphs(old: CSRGraph, new: CSRGraph) -> _EdgeDelta:
    """Classify every changed undirected edge into improve/tight tests."""
    n = np.int64(old.num_vertices)
    old_keys, old_w = _edge_keys(old)
    new_keys, new_w = _edge_keys(new)

    in_old = np.isin(new_keys, old_keys, assume_unique=True)
    in_new = np.isin(old_keys, new_keys, assume_unique=True)
    added_keys, added_w = new_keys[~in_old], new_w[~in_old]
    removed_keys, removed_w = old_keys[~in_new], old_w[~in_new]

    # Surviving edges: weights compared positionally (both key arrays are
    # sorted, so the common subsequences line up after masking).
    common_old_w = old_w[in_new]
    common_new_w = new_w[in_old]
    common_keys = new_keys[in_old]
    decreased = common_new_w < common_old_w
    increased = common_new_w > common_old_w

    improve_keys = np.concatenate([added_keys, common_keys[decreased]])
    improve_w = np.concatenate([added_w, common_new_w[decreased]])
    tight_keys = np.concatenate([removed_keys, common_keys[increased]])
    tight_w = np.concatenate([removed_w, common_old_w[increased]])
    return _EdgeDelta(
        improve_u=(improve_keys // n),
        improve_v=(improve_keys % n),
        improve_w=improve_w,
        tight_u=(tight_keys // n),
        tight_v=(tight_keys % n),
        tight_w=tight_w,
    )


def _affected_sources(distances: np.ndarray, delta: _EdgeDelta) -> np.ndarray:
    """Boolean mask of sources whose rows may change under ``delta``.

    Vectorised over all changed edges at once: each test reads two columns
    of the current matrix per edge, O(n) per changed edge in total.
    """
    affected = np.zeros(distances.shape[0], dtype=bool)
    if delta.improve_u.size:
        du = distances[:, delta.improve_u]
        dv = distances[:, delta.improve_v]
        improves = (du + delta.improve_w < dv) | (dv + delta.improve_w < du)
        affected |= improves.any(axis=1)
    if delta.tight_u.size:
        du = distances[:, delta.tight_u]
        dv = distances[:, delta.tight_v]
        tight = (du + delta.tight_w == dv) | (dv + delta.tight_w == du)
        affected |= tight.any(axis=1)
    return affected


class IncrementalAPSP:
    """Distance-matrix state carried across graph updates.

    Parameters
    ----------
    rebuild_edge_fraction / rebuild_row_fraction:
        Give-up thresholds (see module docstring); the defaults match
        :data:`REBUILD_EDGE_FRACTION` / :data:`REBUILD_ROW_FRACTION`.

    The matrix returned by :meth:`update` is the engine's stored array; the
    engine copies it before patching on the *next* update, so callers may
    keep references without them mutating underneath (the streaming runner
    stores one per tick result).
    """

    def __init__(
        self,
        rebuild_edge_fraction: float = REBUILD_EDGE_FRACTION,
        rebuild_row_fraction: float = REBUILD_ROW_FRACTION,
    ) -> None:
        if not 0.0 <= rebuild_edge_fraction <= 1.0:
            raise ValueError("rebuild_edge_fraction must be in [0, 1]")
        if not 0.0 < rebuild_row_fraction <= 1.0:
            raise ValueError("rebuild_row_fraction must be in (0, 1]")
        self.rebuild_edge_fraction = rebuild_edge_fraction
        self.rebuild_row_fraction = rebuild_row_fraction
        self.stats = IncrementalStats()
        self._csr: Optional[CSRGraph] = None
        self._distances: Optional[np.ndarray] = None

    @property
    def distances(self) -> Optional[np.ndarray]:
        """The current distance matrix (``None`` before the first update)."""
        return self._distances

    def reset(self) -> None:
        """Drop the carried state; the next update runs cold."""
        self._csr = None
        self._distances = None

    def update(
        self,
        graph: GraphLike,
        backend=None,
        kernel: Optional[str] = None,
    ) -> np.ndarray:
        """Distances of ``graph``, repaired from the previous update's state.

        Byte-identical to ``all_pairs_shortest_paths(graph,
        method="dijkstra", kernel=kernel)`` on every call; only the cost
        depends on how much changed since the last one.
        """
        from repro.graph.shortest_paths import shortest_paths_from_sources

        csr = graph if isinstance(graph, CSRGraph) else graph.to_csr()
        csr.validate_non_negative()
        n = csr.num_vertices
        self.stats.updates += 1

        previous = self._csr
        if previous is None or previous.num_vertices != n:
            return self._full_rebuild(csr, backend, kernel)

        num_edges = max(previous.num_edges, csr.num_edges, 1)
        delta = _diff_graphs(previous, csr)
        if delta.num_changed == 0:
            self.stats.unchanged_updates += 1
            self.stats.reused_rows += n
            self._csr = csr
            return self._distances
        self.stats.changed_edges += delta.num_changed
        self.stats.last_changed_edges = delta.num_changed
        if delta.num_changed > self.rebuild_edge_fraction * num_edges:
            return self._full_rebuild(csr, backend, kernel)

        affected = _affected_sources(self._distances, delta)
        num_affected = int(affected.sum())
        if num_affected > self.rebuild_row_fraction * n:
            return self._full_rebuild(csr, backend, kernel)

        repaired = self._distances.copy()
        if num_affected:
            sources = np.flatnonzero(affected)
            repaired[sources] = shortest_paths_from_sources(
                csr, sources, backend=backend, kernel=kernel
            )
        self.stats.recomputed_rows += num_affected
        self.stats.reused_rows += n - num_affected
        self.stats.last_recomputed_rows = num_affected
        self._csr = csr
        self._distances = repaired
        return repaired

    def _full_rebuild(self, csr: CSRGraph, backend, kernel: Optional[str]) -> np.ndarray:
        from repro.graph.shortest_paths import all_pairs_shortest_paths

        self.stats.full_rebuilds += 1
        self.stats.recomputed_rows += csr.num_vertices
        self.stats.last_recomputed_rows = csr.num_vertices
        self._csr = csr
        self._distances = all_pairs_shortest_paths(
            csr, backend=backend, method="dijkstra", kernel=kernel
        )
        return self._distances
