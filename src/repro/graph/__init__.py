"""Graph substrate used by the filtered-graph and DBHT algorithms.

This package provides the data structures and graph algorithms the paper's
system depends on:

* validation of dense similarity / dissimilarity matrices
  (:mod:`repro.graph.matrix`),
* an adjacency-list weighted graph for construction
  (:mod:`repro.graph.weighted_graph`) and its frozen CSR form for
  vectorised consumption (:mod:`repro.graph.csr`),
* Dijkstra single-source and batched CSR all-pairs shortest paths behind a
  pluggable method registry (:mod:`repro.graph.shortest_paths`),
* exact incremental APSP carried across streaming ticks
  (:mod:`repro.graph.incremental_apsp`),
* breadth-first search and connected components
  (:mod:`repro.graph.traversal`),
* a from-scratch Left-Right planarity test used by the PMFG baseline
  (:mod:`repro.graph.planarity`),
* triangular-face bookkeeping shared by TMFG construction
  (:mod:`repro.graph.faces`).
"""

from repro.graph.csr import CSRGraph
from repro.graph.faces import Triangle, triangle_key
from repro.graph.matrix import (
    correlation_like,
    validate_dissimilarity_matrix,
    validate_similarity_matrix,
)
from repro.graph.incremental_apsp import IncrementalAPSP, IncrementalStats
from repro.graph.planarity import is_planar
from repro.graph.shortest_paths import (
    all_pairs_shortest_paths,
    available_apsp_methods,
    dijkstra,
    register_apsp_method,
    select_landmarks,
    shortest_paths_from_sources,
)
from repro.graph.traversal import bfs_order, connected_components
from repro.graph.weighted_graph import WeightedGraph

__all__ = [
    "CSRGraph",
    "Triangle",
    "triangle_key",
    "correlation_like",
    "validate_dissimilarity_matrix",
    "validate_similarity_matrix",
    "is_planar",
    "IncrementalAPSP",
    "IncrementalStats",
    "all_pairs_shortest_paths",
    "available_apsp_methods",
    "dijkstra",
    "register_apsp_method",
    "select_landmarks",
    "shortest_paths_from_sources",
    "bfs_order",
    "connected_components",
    "WeightedGraph",
]
