"""Graph substrate used by the filtered-graph and DBHT algorithms.

This package provides the data structures and graph algorithms the paper's
system depends on:

* validation of dense similarity / dissimilarity matrices
  (:mod:`repro.graph.matrix`),
* an adjacency-list weighted graph for construction
  (:mod:`repro.graph.weighted_graph`) and its frozen CSR form for
  vectorised consumption (:mod:`repro.graph.csr`),
* Dijkstra single-source and batched CSR all-pairs shortest paths
  (:mod:`repro.graph.shortest_paths`),
* breadth-first search and connected components
  (:mod:`repro.graph.traversal`),
* a from-scratch Left-Right planarity test used by the PMFG baseline
  (:mod:`repro.graph.planarity`),
* triangular-face bookkeeping shared by TMFG construction
  (:mod:`repro.graph.faces`).
"""

from repro.graph.csr import CSRGraph
from repro.graph.faces import Triangle, triangle_key
from repro.graph.matrix import (
    correlation_like,
    validate_dissimilarity_matrix,
    validate_similarity_matrix,
)
from repro.graph.planarity import is_planar
from repro.graph.shortest_paths import (
    all_pairs_shortest_paths,
    dijkstra,
    shortest_paths_from_sources,
)
from repro.graph.traversal import bfs_order, connected_components
from repro.graph.weighted_graph import WeightedGraph

__all__ = [
    "CSRGraph",
    "Triangle",
    "triangle_key",
    "correlation_like",
    "validate_dissimilarity_matrix",
    "validate_similarity_matrix",
    "is_planar",
    "all_pairs_shortest_paths",
    "dijkstra",
    "shortest_paths_from_sources",
    "bfs_order",
    "connected_components",
    "WeightedGraph",
]
