"""Section VII-A: runtime scaling with data size.

Paper shape: PAR-TDBHT runtime scales roughly as n^2.2 sequentially; the
reproduction fits the exponent over a sweep of synthetic data-set sizes.
"""

from repro.experiments.figures import scaling_with_data_size


def test_scaling_with_data_size(benchmark, config, emit):
    result = benchmark.pedantic(
        scaling_with_data_size,
        kwargs={"config": config, "sizes": (80, 140, 220, 340), "prefix": 10},
        rounds=1,
        iterations=1,
    )
    emit("scaling_with_data_size", result)
    # Super-linear but clearly polynomial scaling (the paper reports ~n^2.2).
    assert 1.2 <= result["exponent"] <= 3.2
