"""APSP scaling sweep: cold methods, warm-tick incremental repair, landmark quality.

Three sections, one JSON report (``benchmarks/results/scaling.json``):

* **cold** — per graph size, wall-clock of every APSP method on the TMFG
  distance graph (``dijkstra`` numpy/python kernels, ``scipy``, ``floyd``;
  the cubic/interpreted ones are capped at small sizes), plus ``landmark``
  at the default count.
* **warm ticks** — the incremental engine against cold recomputes over a
  sequence of sparse weight perturbations.  Each tick jitters
  ``--delta-edges`` low-traffic edges (the edges tight for the fewest
  sources, measured on the first tick's matrix — the TMFG's redundant
  tail; hub edges barely move between real warm ticks).  Byte identity
  versus the cold recompute is asserted on every tick, and the per-tick
  affected-row counts are reported so the speedup's provenance is visible.
  The largest size's aggregate speedup gates on ``--min-warm-speedup``.
* **landmark quality** — the Fig-1-style quality-vs-time curve at the
  largest size: ARI of the DBHT cut under ``apsp_method="landmark"``
  against the exact cut, over the ``--landmark-grid``, with the APSP
  wall-clock per point.  The mean distance error must shrink monotonically
  in the landmark count (nested selection guarantees it pointwise).

Standalone::

    PYTHONPATH=src python benchmarks/bench_scaling.py --sizes 500,1000,2000,5000

CI smoke (see ``.github/workflows/ci.yml``) runs ``--sizes 200,500`` with a
relaxed gate.  The pytest entry point at the bottom keeps the original
Section VII-A figure benchmark.
"""

import argparse
import time

import numpy as np

from repro.core.dbht import dbht
from repro.core.tmfg import construct_tmfg
from repro.datasets.synthetic import make_time_series_dataset
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.graph.csr import CSRGraph
from repro.graph.incremental_apsp import IncrementalAPSP
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.metrics.ari import adjusted_rand_index

#: Interpreted / cubic methods are skipped above these sizes.
PYTHON_KERNEL_CAP = 1000
FLOYD_CAP = 1000
PREFIX = 10
NUM_CLUSTERS = 8


def _build(size: int, seed: int):
    """(similarity, dissimilarity, tmfg, distance CSR) for one sweep size."""
    dataset = make_time_series_dataset(
        num_objects=size, length=64, num_classes=NUM_CLUSTERS, noise=1.0, seed=seed
    )
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
    tmfg = construct_tmfg(similarity, prefix=PREFIX, build_bubble_tree=True)
    csr = tmfg.csr().reweighted(dissimilarity)
    return similarity, dissimilarity, tmfg, csr


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def cold_section(csr: CSRGraph, size: int) -> list:
    """Wall-clock of every applicable cold APSP method at this size."""
    rows = []
    reference, seconds = _timed(lambda: all_pairs_shortest_paths(csr, kernel="numpy"))
    rows.append({"method": "dijkstra", "kernel": "numpy", "seconds": round(seconds, 4)})
    if size <= PYTHON_KERNEL_CAP:
        result, seconds = _timed(lambda: all_pairs_shortest_paths(csr, kernel="python"))
        rows.append(
            {
                "method": "dijkstra",
                "kernel": "python",
                "seconds": round(seconds, 4),
                "identical": bool(np.array_equal(result, reference)),
            }
        )
    result, seconds = _timed(lambda: all_pairs_shortest_paths(csr, method="scipy"))
    rows.append(
        {
            "method": "scipy",
            "seconds": round(seconds, 4),
            "max_abs_diff": float(np.max(np.abs(result - reference))),
        }
    )
    if size <= FLOYD_CAP:
        result, seconds = _timed(lambda: all_pairs_shortest_paths(csr, method="floyd"))
        rows.append(
            {
                "method": "floyd",
                "seconds": round(seconds, 4),
                "max_abs_diff": float(np.max(np.abs(result - reference))),
            }
        )
    result, seconds = _timed(lambda: all_pairs_shortest_paths(csr, method="landmark"))
    overestimate = result - reference
    rows.append(
        {
            "method": "landmark",
            "landmarks": 32,
            "seconds": round(seconds, 4),
            "mean_abs_error": float(np.mean(np.abs(overestimate))),
        }
    )
    return rows


def _undirected_edges(csr: CSRGraph):
    heads = np.repeat(np.arange(csr.num_vertices, dtype=np.int64), csr.degrees())
    upper = heads < csr.indices
    return heads, heads[upper], csr.indices[upper], csr.weights[upper]


def _tight_counts(distances: np.ndarray, uu, vv, ww) -> np.ndarray:
    """Per undirected edge: sources whose shortest-path forest uses it."""
    counts = np.zeros(uu.size, dtype=np.int64)
    chunk = 512
    for begin in range(0, uu.size, chunk):
        u = uu[begin : begin + chunk]
        v = vv[begin : begin + chunk]
        w = ww[begin : begin + chunk]
        du = distances[:, u]
        dv = distances[:, v]
        counts[begin : begin + chunk] = ((du + w == dv) | (dv + w == du)).sum(axis=0)
    return counts


def warm_tick_section(csr: CSRGraph, size: int, args, rng) -> dict:
    """Incremental repair vs cold recompute over sparse weight jitters."""
    n = csr.num_vertices
    engine = IncrementalAPSP()
    first, first_seconds = _timed(lambda: engine.update(csr, kernel="numpy"))

    heads, uu, vv, ww = _undirected_edges(csr)
    counts = _tight_counts(first, uu, vv, ww)
    pool_size = min(max(10 * args.delta_edges, 50), uu.size)
    quiet_pool = np.argsort(counts, kind="stable")[:pool_size]
    # Arc -> undirected-edge id, so per-tick weights rebuild in one gather.
    keys = np.minimum(heads, csr.indices) * np.int64(n) + np.maximum(heads, csr.indices)
    arc_edge = np.searchsorted(uu * np.int64(n) + vv, keys)

    ticks = []
    incremental_total = cold_total = 0.0
    for tick in range(args.ticks):
        picked = rng.choice(quiet_pool, size=min(args.delta_edges, quiet_pool.size), replace=False)
        edge_weights = ww.copy()
        edge_weights[picked] *= rng.uniform(0.98, 1.02, size=picked.size)
        perturbed = CSRGraph(csr.indptr, csr.indices, edge_weights[arc_edge])
        repaired, inc_seconds = _timed(lambda: engine.update(perturbed, kernel="numpy"))
        cold, cold_seconds = _timed(
            lambda: all_pairs_shortest_paths(perturbed, kernel="numpy")
        )
        assert np.array_equal(repaired, cold), (
            f"incremental repair diverged from cold dijkstra at size {size}, tick {tick}"
        )
        incremental_total += inc_seconds
        cold_total += cold_seconds
        ticks.append(
            {
                "tick": tick,
                "incremental_seconds": round(inc_seconds, 4),
                "cold_seconds": round(cold_seconds, 4),
                "speedup": round(cold_seconds / inc_seconds, 2),
                "changed_edges": engine.stats.last_changed_edges,
                "affected_rows": engine.stats.last_recomputed_rows,
            }
        )
    return {
        "num_vertices": n,
        "delta_edges": args.delta_edges,
        "first_tick_seconds": round(first_seconds, 4),
        "ticks": ticks,
        "byte_identical_every_tick": True,
        "aggregate_speedup": round(cold_total / incremental_total, 2),
        "engine_stats": engine.stats.as_dict(),
    }


def landmark_quality_section(similarity, dissimilarity, tmfg, args) -> dict:
    """ARI-vs-time curve of the landmark mode against the exact DBHT cut."""
    exact = dbht(tmfg, similarity, dissimilarity, apsp_method="dijkstra", kernel="numpy")
    exact_labels = exact.cut(NUM_CLUSTERS)
    exact_distances = exact.shortest_paths
    exact_seconds = exact.step_seconds["apsp"]
    grid = sorted(args.landmark_grid)
    points = []
    previous_error = np.inf
    for count in grid:
        result = dbht(
            tmfg,
            similarity,
            dissimilarity,
            apsp_method="landmark",
            landmarks=count,
            kernel="numpy",
        )
        labels = result.cut(NUM_CLUSTERS)
        error = float(np.mean(np.abs(result.shortest_paths - exact_distances)))
        # Nested landmark prefixes tighten the bound pointwise, so the mean
        # error is monotone by construction; a violation is a bug.
        assert error <= previous_error + 1e-12, (
            f"landmark error increased from {previous_error} to {error} at L={count}"
        )
        previous_error = error
        points.append(
            {
                "landmarks": count,
                "apsp_seconds": round(result.step_seconds["apsp"], 4),
                "ari_vs_exact": round(float(adjusted_rand_index(labels, exact_labels)), 4),
                "mean_abs_distance_error": error,
            }
        )
    return {
        "num_vertices": tmfg.num_vertices,
        "num_clusters": NUM_CLUSTERS,
        "exact_apsp_seconds": round(exact_seconds, 4),
        "points": points,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="500,1000,2000,5000",
        help="comma-separated vertex counts to sweep",
    )
    parser.add_argument("--ticks", type=int, default=5, help="warm ticks per size")
    parser.add_argument(
        "--delta-edges", type=int, default=20, help="edges perturbed per warm tick"
    )
    parser.add_argument(
        "--landmark-grid",
        default="4,8,16,32",
        help="landmark counts for the quality-vs-time curve (up to the "
        "default landmark count; single-cut ARI gets noisy past it)",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=3.0,
        help="required aggregate warm-tick speedup at the largest size",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", default=None, help="override the report path")
    args = parser.parse_args(argv)
    args.landmark_grid = [int(part) for part in str(args.landmark_grid).split(",")]
    sizes = [int(part) for part in str(args.sizes).split(",")]

    rng = np.random.default_rng(args.seed)
    report = {
        "benchmark": "apsp_scaling",
        "prefix": PREFIX,
        "sizes": sizes,
        "cold": [],
        "warm_ticks": [],
    }
    largest_artifacts = None
    for size in sizes:
        similarity, dissimilarity, tmfg, csr = _build(size, args.seed)
        print(f"-- size {size}: graph built ({csr.num_edges} edges)", flush=True)
        report["cold"].append({"num_vertices": size, "methods": cold_section(csr, size)})
        report["warm_ticks"].append(warm_tick_section(csr, size, args, rng))
        if size == max(sizes):
            largest_artifacts = (similarity, dissimilarity, tmfg)

    similarity, dissimilarity, tmfg = largest_artifacts
    report["landmark_quality"] = landmark_quality_section(
        similarity, dissimilarity, tmfg, args
    )

    import benchlib

    benchlib.write_report("scaling.json", report, override=args.json)
    gate = report["warm_ticks"][-1]
    assert gate["aggregate_speedup"] >= args.min_warm_speedup, (
        f"warm-tick incremental APSP is only {gate['aggregate_speedup']}x over cold "
        f"at {gate['num_vertices']} vertices (required {args.min_warm_speedup}x)"
    )
    return report


# -- pytest entry point (the original Section VII-A figure benchmark) --------


def test_scaling_with_data_size(benchmark, config, emit):
    from repro.experiments.figures import scaling_with_data_size

    result = benchmark.pedantic(
        scaling_with_data_size,
        kwargs={"config": config, "sizes": (80, 140, 220, 340), "prefix": 10},
        rounds=1,
        iterations=1,
    )
    emit("scaling_with_data_size", result)
    # Super-linear but clearly polynomial scaling (the paper reports ~n^2.2).
    assert 1.2 <= result["exponent"] <= 3.2


if __name__ == "__main__":
    main()
