"""Result-cache serving benchmark: cold vs dedup vs warm ``cluster_many``.

Models the repetitive serving workload the cache exists for: one batch of
``--jobs`` byte-identical ``--assets``-asset similarity matrices (the same
window re-requested over and over), clustered three ways:

* **cold** — cache off, dedup off: every job is a full
  similarity→TMFG→APSP→DBHT fit (the pre-cache serving path);
* **dedup** — cache off, dedup on: ``cluster_many`` fingerprints the jobs
  before dispatch and fits each distinct job once;
* **warm** — cache on, second call: every job is a cache hit.

The acceptance bound (default ≥10x at 50 x 200 assets) is asserted on the
warm path, and every warm payload must be byte-identical to the priming
call's.  Prints one JSON document (and writes it with ``--json``)::

    PYTHONPATH=src python benchmarks/bench_cache.py
    PYTHONPATH=src python benchmarks/bench_cache.py --assets 60 --jobs 8 --json out.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.api import ClusteringConfig, cluster_many
from repro.cache import clear_result_caches, get_result_cache
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset

DEFAULT_ASSETS = 200
DEFAULT_JOBS = 50
DEFAULT_MIN_SPEEDUP = 10.0
NUM_CLUSTERS = 4
PREFIX = 10


def _similarity(num_assets: int, seed: int = 42) -> np.ndarray:
    dataset = make_time_series_dataset(
        num_objects=num_assets, length=128, num_classes=NUM_CLUSTERS, noise=1.1, seed=seed
    )
    similarity, _ = similarity_and_dissimilarity(dataset.data)
    return similarity


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--assets", type=int, default=DEFAULT_ASSETS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="required cold/warm ratio (acceptance bound)")
    parser.add_argument("--json", default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    matrices = [_similarity(args.assets)] * args.jobs
    plain = ClusteringConfig(precomputed=True, num_clusters=NUM_CLUSTERS, prefix=PREFIX)
    cached = plain.replace(cache=True)

    # Warm-up (imports, kernel registry) outside every timed region.
    clear_result_caches()
    cluster_many(matrices[:1], plain)

    start = time.perf_counter()
    cold_results = cluster_many(matrices, plain, dedupe=False)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cluster_many(matrices, plain)
    dedup_seconds = time.perf_counter() - start

    clear_result_caches()
    priming_results = cluster_many(matrices, cached)
    start = time.perf_counter()
    warm_results = cluster_many(matrices, cached)
    warm_seconds = time.perf_counter() - start
    stats = get_result_cache().stats

    byte_identical = all(
        warm.to_json() == primed.to_json()
        for warm, primed in zip(warm_results, priming_results)
    )
    labels_match = all(
        np.array_equal(warm.labels, cold.labels)
        for warm, cold in zip(warm_results, cold_results)
    )
    report = {
        "benchmark": "result_cache",
        "num_assets": args.assets,
        "jobs": args.jobs,
        "cold_seconds": round(cold_seconds, 6),
        "dedup_seconds": round(dedup_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup_dedup": round(cold_seconds / dedup_seconds, 2),
        "speedup_warm": round(cold_seconds / warm_seconds, 2),
        "min_speedup": args.min_speedup,
        "byte_identical_payloads": byte_identical,
        "labels_match_cold": labels_match,
        "cache_stats": stats.as_dict(),
    }
    import benchlib

    benchlib.write_report("cache.json", report, override=args.json)
    assert byte_identical, "warm payloads diverged from the priming call"
    assert labels_match, "warm labels diverged from the cold run"
    assert report["speedup_warm"] >= args.min_speedup, (
        f"warm serving is only {report['speedup_warm']}x over cold "
        f"(required {args.min_speedup}x)"
    )
    return report


if __name__ == "__main__":
    main()
