"""Ablation: APSP backend (per-source Dijkstra vs SciPy's C implementation).

Figure 5 shows that once the TMFG construction is batched, the all-pairs
shortest-path computation becomes the bottleneck of PAR-TDBHT; the paper
notes the end-to-end time "could potentially be improved by using a more
sophisticated APSP implementation".  This ablation quantifies that head-room
by swapping the pure-Python Dijkstra loop for SciPy's C implementation of
the same computation (identical distances).
"""

import numpy as np
import pytest

from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture(scope="module")
def distance_graph():
    dataset = load_ucr_like(8, scale=0.035, noise=1.2, seed=5)
    similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
    tmfg = construct_tmfg(similarity, prefix=10, build_bubble_tree=False)
    graph = WeightedGraph(tmfg.graph.num_vertices)
    for u, v, _ in tmfg.graph.edges():
        graph.add_edge(u, v, float(dissimilarity[u, v]))
    return graph


def test_ablation_apsp_dijkstra(benchmark, distance_graph):
    distances = benchmark.pedantic(
        all_pairs_shortest_paths,
        args=(distance_graph,),
        kwargs={"method": "dijkstra"},
        rounds=3,
        iterations=1,
    )
    assert distances.shape[0] == distance_graph.num_vertices


def test_ablation_apsp_scipy(benchmark, distance_graph):
    scipy_distances = benchmark.pedantic(
        all_pairs_shortest_paths,
        args=(distance_graph,),
        kwargs={"method": "scipy"},
        rounds=3,
        iterations=1,
    )
    dijkstra_distances = all_pairs_shortest_paths(distance_graph, method="dijkstra")
    np.testing.assert_allclose(scipy_distances, dijkstra_distances, rtol=1e-9, atol=1e-9)
