"""Figure 9: K-MEANS-S sensitivity to the number of nearest neighbours.

Paper shape: the quality of spectral k-means varies widely (and oscillates)
with the neighbour count beta, and the best beta differs per data set —
unlike DBHT, which has no such parameter.
"""

import numpy as np

from repro.experiments.figures import figure9_spectral_sensitivity


def test_figure9_spectral_sensitivity(benchmark, config, emit):
    result = benchmark.pedantic(
        figure9_spectral_sensitivity, args=(config,), rounds=1, iterations=1
    )
    emit("figure9_spectral_sensitivity", result)
    by_dataset = {}
    for dataset_id, beta, ari in result["rows"]:
        by_dataset.setdefault(dataset_id, []).append(ari)
    # On a reasonable fraction of the data sets the choice of beta changes
    # the ARI noticeably (the paper's sensitivity claim).
    spreads = [max(values) - min(values) for values in by_dataset.values() if len(values) > 1]
    assert spreads, "no data set had more than one beta"
    assert float(np.mean(spreads)) >= 0.01
