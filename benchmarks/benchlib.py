"""Shared output plumbing for the ``bench_*.py`` scripts.

Every benchmark that emits machine-readable output writes it under
``benchmarks/results/`` through :func:`write_report`, so the sweep/report
tooling has exactly one directory to look in.  A script's ``--json PATH``
flag still overrides the destination (pass it as ``override``).

Every report is stamped with run provenance (git commit, hostname, CPU
count) so a number in ``results/`` can always be traced back to the code
and machine that produced it.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def results_path(name: str) -> Path:
    """``benchmarks/results/<name>`` (creating the directory if needed)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / name


def _git_sha() -> Optional[str]:
    """The repo's HEAD commit, or ``None`` outside a checkout / without git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def provenance() -> dict:
    """Where and on what this benchmark ran: commit, host, CPU budget."""
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
    }


def write_report(name: str, report: dict, override: Optional[str] = None) -> Path:
    """Write ``report`` as JSON to the results dir (or ``override``).

    The document is stamped with a ``provenance`` block (git SHA,
    hostname, cpu_count) unless the report already carries one.  Prints
    the document to stdout as well — the scripts' historical behaviour —
    and returns the path written.
    """
    if "provenance" not in report:
        report = {**report, "provenance": provenance()}
    path = Path(override) if override else results_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(report, indent=2)
    path.write_text(text + "\n", encoding="utf-8")
    print(text)
    return path
