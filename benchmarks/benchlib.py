"""Shared output plumbing for the ``bench_*.py`` scripts.

Every benchmark that emits machine-readable output writes it under
``benchmarks/results/`` through :func:`write_report`, so the sweep/report
tooling has exactly one directory to look in.  A script's ``--json PATH``
flag still overrides the destination (pass it as ``override``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def results_path(name: str) -> Path:
    """``benchmarks/results/<name>`` (creating the directory if needed)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / name


def write_report(name: str, report: dict, override: Optional[str] = None) -> Path:
    """Write ``report`` as JSON to the results dir (or ``override``).

    Prints the document to stdout as well — the scripts' historical
    behaviour — and returns the path written.
    """
    path = Path(override) if override else results_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(report, indent=2)
    path.write_text(text + "\n", encoding="utf-8")
    print(text)
    return path
