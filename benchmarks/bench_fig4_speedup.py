"""Figure 4: self-relative speedup vs thread count per prefix size.

Paper shape: larger prefix sizes scale better (up to ~37x on 48 cores with
hyper-threading for prefix 200 on Crop); prefix 1 scales poorly because only
one vertex is inserted per round.  The reproduction predicts speedups from
the measured work/span of each phase (see DESIGN.md).
"""

from repro.experiments.figures import figure4_speedup


def test_figure4_speedup(benchmark, config, emit):
    result = benchmark.pedantic(
        figure4_speedup, kwargs={"config": config, "dataset_id": 17}, rounds=1, iterations=1
    )
    emit("figure4_speedup", result)
    curves = result["curves"]
    smallest_prefix = min(curves)
    largest_prefix = max(curves)
    # The paper's shape: larger prefixes scale substantially better than the
    # exact TMFG (prefix 1), and every curve starts at 1 on a single thread.
    assert curves[largest_prefix][-1] >= 1.5 * curves[smallest_prefix][-1]
    for curve in curves.values():
        assert abs(curve[0] - 1.0) < 1e-6
        assert curve[-1] >= 1.0
