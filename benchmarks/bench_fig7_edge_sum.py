"""Figure 7: kept edge weight relative to the sequential TMFG.

Paper shape: prefix-based TMFGs keep 92-100.3% of the sequential TMFG's
edge weight (97-100.3% for prefixes up to 50); the PMFG keeps slightly more.
"""

from repro.experiments.figures import figure7_edge_sum


import numpy as np


def test_figure7_edge_sum(benchmark, config, emit):
    result = benchmark.pedantic(figure7_edge_sum, args=(config,), rounds=1, iterations=1)
    emit("figure7_edge_sum", result)
    by_prefix = {}
    for dataset_id, variant, ratio in result["rows"]:
        if variant.startswith("prefix"):
            prefix = int(variant.split()[1])
            by_prefix.setdefault(prefix, []).append(ratio)
            # Hard floor: even the most aggressive prefix keeps most of the
            # weight (the paper reports >=92% at full scale; the reduced
            # synthetic scale makes large prefixes relatively more aggressive).
            assert 0.7 <= ratio <= 1.05, (dataset_id, variant, ratio)
        else:  # PMFG reference keeps at least as much weight as the TMFG
            assert ratio >= 0.97, (dataset_id, variant, ratio)
    means = {prefix: float(np.mean(values)) for prefix, values in by_prefix.items()}
    # Shape: small prefixes stay close to the exact TMFG, and the kept weight
    # decreases (weakly) as the prefix grows.
    if 2 in means:
        assert means[2] >= 0.97
    ordered = [means[prefix] for prefix in sorted(means)]
    assert ordered[0] >= ordered[-1] - 1e-9
