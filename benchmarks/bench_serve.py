"""Serving-throughput benchmark: micro-batching + dedupe vs batch-size-1.

Closed-loop load generation against a live in-process
:class:`~repro.serve.server.ClusteringServer`: ``--clients`` threads each
run a blocking request loop (send, wait, send again) over a repetitive
workload — every client POSTs the same matrix, the shape of traffic the
batching queue exists for.  Two server configurations are measured:

* **unbatched** — ``max_wait_ms=0``, ``max_batch_size=1``, cache and
  dedupe off: every request is an independent full fit (the baseline a
  naive HTTP wrapper around the estimator would give you);
* **batched** — the real serving path: size-or-deadline micro-batching
  into ``cluster_many`` so concurrent identical requests are fitted once
  per batch (the request config keeps the cache off, so the speedup
  measured is batching+dedupe alone, not result-cache hits).

Reports RPS and p50/p95/p99 latency per mode as one JSON document and
asserts the acceptance bound (batched ≥ ``--min-speedup``x unbatched
throughput, default 3x), plus byte-identity of a served result against
the same fit made directly through ``TMFGClusterer``.

A second section compares the two matrix transports — JSON float lists vs
the raw ``application/x-repro-matrix`` wire frames — at each
``--transport-sizes`` asset count (default 200 and 1000).  The server
caches, so after one warm-up fit every request is transport-bound: what is
measured is encode + socket + decode + fingerprint, which is exactly the
tax the binary format removes.  The binary/JSON RPS ratio at the largest
size is gated by ``--min-binary-speedup`` (default 1.5x), and the two
transports' ``result`` payloads are asserted byte-identical::

A third section (``--replica-sweep 1,2,4``) measures the multi-process
fleet: aggregate RPS/p99 of a cache-hit closed loop against ``repro serve
--workers N`` at each replica count, with distinct matrices spread over
the consistent-hash ring.  Scaling bounds (2 replicas ≥ 1.7x, 4 ≥ 2.5x
the 1-replica fleet) are asserted only on hosts with at least that many
cores; the report always records the measured numbers plus ``cpu_count``.
The sweep also asserts routed-vs-direct byte identity of the ``result``
payload on both transports through a shared ``--cache-dir``::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --assets 80 --clients 8 --requests 12 --json out.json
    PYTHONPATH=src python benchmarks/bench_serve.py --binary   # batched-vs-unbatched loop over binary bodies
    PYTHONPATH=src python benchmarks/bench_serve.py --replica-sweep 1,2,4
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api import ClusteringConfig, TMFGClusterer
from repro.cache import clear_result_caches
from repro.datasets.synthetic import make_time_series_dataset
from repro.serve import (
    WIRE_CONTENT_TYPE,
    ClusteringServer,
    ServeClient,
    ServerBusy,
    build_fleet,
)

DEFAULT_ASSETS = 120
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 10  # per client
DEFAULT_MIN_SPEEDUP = 3.0
DEFAULT_TRANSPORT_SIZES = "200,1000"
DEFAULT_MIN_BINARY_SPEEDUP = 1.5
NUM_CLUSTERS = 4
PREFIX = 10

#: Request headers that ship and request the binary transport.
BINARY_HEADERS = {"Content-Type": WIRE_CONTENT_TYPE, "Accept": WIRE_CONTENT_TYPE}

#: The transport comparison's per-request config: a cheap method, so the
#: (cached) fit never dominates what is being measured — the transport.
TRANSPORT_CONFIG = {"method": "kmeans", "num_clusters": NUM_CLUSTERS, "seed": 0}

#: Replica-sweep acceptance bounds: aggregate RPS at N replicas over the
#: 1-replica fleet.  Only asserted when the host actually has >= N cores —
#: N python replicas cannot outrun one on a single-core box, and a bench
#: that asserts otherwise just measures the machine, not the fleet.
FLEET_GATES = {2: 1.7, 4: 2.5}


def _series(num_assets: int, seed: int = 42) -> np.ndarray:
    return make_time_series_dataset(
        num_objects=num_assets, length=96, num_classes=NUM_CLUSTERS, noise=1.1, seed=seed
    ).data


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    index = min(len(sorted_ms) - 1, max(0, int(round(q * (len(sorted_ms) - 1)))))
    return sorted_ms[index]


def _drive(
    host: str,
    port: int,
    body: bytes,
    headers: Optional[Dict[str, str]],
    clients: int,
    requests_per_client: int,
) -> Dict[str, Any]:
    """Closed-loop load: each client thread sends its next request only
    after the previous response arrives.  ``body`` is pre-encoded (JSON or
    binary) so the loop measures the server, not per-iteration encoding."""
    latencies_ms: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop() -> None:
        local: List[float] = []
        try:
            with ServeClient(host, port, timeout=300.0) as client:
                barrier.wait(timeout=60)
                for _ in range(requests_per_client):
                    start = time.perf_counter()
                    while True:
                        try:
                            client.request("POST", "/cluster", body, headers)
                            break
                        except ServerBusy as busy:
                            time.sleep(max(busy.retry_after, 0.05))
                    local.append((time.perf_counter() - start) * 1000.0)
        except BaseException as error:  # pragma: no cover - reported below
            with lock:
                errors.append(error)
            return
        with lock:
            latencies_ms.extend(local)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[0]!r}") from errors[0]
    ordered = sorted(latencies_ms)
    completed = len(ordered)
    return {
        "clients": clients,
        "requests": completed,
        "wall_seconds": round(wall_seconds, 4),
        "rps": round(completed / wall_seconds, 2) if wall_seconds > 0 else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 2),
        "p95_ms": round(_percentile(ordered, 0.95), 2),
        "p99_ms": round(_percentile(ordered, 0.99), 2),
        "mean_ms": round(sum(ordered) / completed, 2) if completed else 0.0,
    }


def _measure(
    mode: str,
    matrix: np.ndarray,
    request_config: Dict[str, Any],
    clients: int,
    requests_per_client: int,
    server_kwargs: Dict[str, Any],
    binary: bool = False,
) -> Dict[str, Any]:
    clear_result_caches()
    server = ClusteringServer(port=0, **server_kwargs)
    handle = server.start_in_background()
    try:
        with ServeClient(handle.host, handle.port) as warmup:
            warmup.wait_healthy(30)
            warmup.cluster(matrix, config=request_config, binary=binary)  # JIT/warm-up fit
            if binary:
                body = warmup.encode_cluster_body_binary(matrix, request_config)
                headers: Optional[Dict[str, str]] = dict(BINARY_HEADERS)
            else:
                body = warmup.encode_cluster_body(matrix, request_config)
                headers = None
        report = _drive(
            handle.host, handle.port, body, headers, clients, requests_per_client
        )
        with ServeClient(handle.host, handle.port) as scrape:
            metrics = scrape.metrics()
        report["batching"] = metrics["batching"]
        report["mode"] = mode
        report["transport"] = "binary" if binary else "json"
        return report
    finally:
        handle.stop()


def _measure_transports(
    sizes: List[int],
    clients: int,
    requests_per_client: int,
) -> List[Dict[str, Any]]:
    """JSON-vs-binary closed-loop RPS/latency at each asset count.

    One server per size with the result cache ON: the first request per
    transport warms the cache (both transports fingerprint to the *same*
    entry), after which every request pays only encode + HTTP + decode +
    fingerprint — the path the binary format exists to shrink.
    """
    rows: List[Dict[str, Any]] = []
    for num_assets in sizes:
        matrix = _series(num_assets)
        clear_result_caches()
        server = ClusteringServer(
            port=0,
            default_config=ClusteringConfig(cache=True),
            max_batch_size=clients,
            max_wait_ms=2.0,
            fit_workers=2,
        )
        handle = server.start_in_background()
        try:
            with ServeClient(handle.host, handle.port) as client:
                client.wait_healthy(30)
                envelope_json = client.cluster(matrix, config=TRANSPORT_CONFIG)
                envelope_binary = client.cluster(matrix, config=TRANSPORT_CONFIG, binary=True)
                # The serving stats are per-request timings; the result
                # payload is the contract and must not depend on transport.
                result_identical = json.dumps(envelope_json["result"]) == json.dumps(
                    envelope_binary["result"]
                )
                json_body = client.encode_cluster_body(matrix, TRANSPORT_CONFIG)
                binary_body = client.encode_cluster_body_binary(matrix, TRANSPORT_CONFIG)
            json_stats = _drive(
                handle.host, handle.port, json_body, None, clients, requests_per_client
            )
            binary_stats = _drive(
                handle.host, handle.port, binary_body, dict(BINARY_HEADERS),
                clients, requests_per_client,
            )
        finally:
            handle.stop()
        rows.append(
            {
                "num_assets": num_assets,
                "request_config": TRANSPORT_CONFIG,
                "json_body_bytes": len(json_body),
                "binary_body_bytes": len(binary_body),
                "body_bloat": round(len(json_body) / len(binary_body), 2),
                "json": json_stats,
                "binary": binary_stats,
                "binary_speedup_rps": (
                    round(binary_stats["rps"] / json_stats["rps"], 2)
                    if json_stats["rps"] > 0
                    else float("inf")
                ),
                "result_byte_identical": result_identical,
            }
        )
    return rows


def _drive_fleet(
    host: str,
    port: int,
    bodies: List[bytes],
    clients: int,
    requests_per_client: int,
) -> Dict[str, Any]:
    """Closed-loop load over *distinct* pre-encoded JSON bodies.

    Identical bodies all hash to one replica (that is the point of the
    affinity ring), so a fleet sweep must mix distinct matrices to spread
    load; each client walks the body list from its own offset so the
    per-replica arrival order differs without any shared state."""
    latencies_ms: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop(index: int) -> None:
        local: List[float] = []
        try:
            with ServeClient(host, port, timeout=300.0) as client:
                barrier.wait(timeout=60)
                for i in range(requests_per_client):
                    body = bodies[(index + i) % len(bodies)]
                    start = time.perf_counter()
                    while True:
                        try:
                            client.request("POST", "/cluster", body)
                            break
                        except ServerBusy as busy:
                            time.sleep(max(busy.retry_after, 0.05))
                    local.append((time.perf_counter() - start) * 1000.0)
        except BaseException as error:  # pragma: no cover - reported below
            with lock:
                errors.append(error)
            return
        with lock:
            latencies_ms.extend(local)

    threads = [
        threading.Thread(target=client_loop, args=(index,)) for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start
    if errors:
        raise RuntimeError(f"fleet load generation failed: {errors[0]!r}") from errors[0]
    ordered = sorted(latencies_ms)
    completed = len(ordered)
    return {
        "clients": clients,
        "requests": completed,
        "wall_seconds": round(wall_seconds, 4),
        "rps": round(completed / wall_seconds, 2) if wall_seconds > 0 else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 2),
        "p99_ms": round(_percentile(ordered, 0.99), 2),
    }


def _measure_fleet_sweep(
    replica_counts: List[int],
    num_assets: int,
    distinct: int,
    clients: int,
    requests_per_client: int,
) -> List[Dict[str, Any]]:
    """Aggregate RPS/p99 vs replica count behind the consistent-hash router.

    Cache-hit workload: every distinct matrix is POSTed once to warm its
    home replica, then the closed loop replays the same bodies — each
    request pays HTTP + JSON decode + fingerprint + cache lookup on the
    replica, the per-core cost horizontal replicas exist to multiply."""
    matrices = [_series(num_assets, seed=900 + i) for i in range(distinct)]
    encoder = ServeClient()
    bodies = [encoder.encode_cluster_body(m, TRANSPORT_CONFIG) for m in matrices]
    rows: List[Dict[str, Any]] = []
    for workers in replica_counts:
        fleet = build_fleet(
            workers, ["--max-wait-ms", "2", "--fit-workers", "2"],
            port=0, stagger_seconds=0.1,
        )
        handle = fleet.start_in_background()
        try:
            with ServeClient(handle.host, handle.port, timeout=300.0) as warm:
                warm.wait_healthy(120)
                for body in bodies:
                    warm.request("POST", "/cluster", body)
            stats = _drive_fleet(
                handle.host, handle.port, bodies, clients, requests_per_client
            )
            with ServeClient(handle.host, handle.port) as scrape:
                metrics = scrape.metrics()
        finally:
            handle.stop()
        stats["workers"] = workers
        stats["routed_total"] = {
            name: doc["routed_total"] for name, doc in metrics["replicas"].items()
        }
        stats["restarts_total"] = metrics["fleet"]["restarts_total"]
        stats["failovers_total"] = metrics["fleet"]["failovers_total"]
        rows.append(stats)
    base_rps = rows[0]["rps"] if rows else 0.0
    for row in rows:
        row["speedup_vs_single"] = (
            round(row["rps"] / base_rps, 2) if base_rps > 0 else float("inf")
        )
    return rows


def _fleet_identity_check(matrix: np.ndarray) -> Dict[str, bool]:
    """Routed-vs-direct byte identity through a shared ``--cache-dir``.

    The direct single-process server fits and stores the entry; the fleet
    replicas (separate processes) serve the *same disk entry*, so the
    ``result`` payload — per-fit timings included — must match the direct
    response byte-for-byte on both transports."""
    with tempfile.TemporaryDirectory(prefix="bench-fleet-cache-") as cache_dir:
        clear_result_caches()
        direct_server = ClusteringServer(
            port=0,
            default_config=ClusteringConfig(cache=True, cache_dir=cache_dir),
            max_wait_ms=2.0,
        )
        handle = direct_server.start_in_background()
        try:
            with ServeClient(handle.host, handle.port) as client:
                direct_json = client.cluster(matrix, config=TRANSPORT_CONFIG)
                direct_binary = client.cluster(matrix, config=TRANSPORT_CONFIG, binary=True)
        finally:
            handle.stop()
        clear_result_caches()
        fleet = build_fleet(
            2, ["--cache-dir", cache_dir, "--max-wait-ms", "2"],
            port=0, stagger_seconds=0.1,
        )
        fleet_handle = fleet.start_in_background()
        try:
            with ServeClient(fleet_handle.host, fleet_handle.port) as client:
                client.wait_healthy(120)
                routed_json = client.cluster(matrix, config=TRANSPORT_CONFIG)
                routed_binary = client.cluster(matrix, config=TRANSPORT_CONFIG, binary=True)
        finally:
            fleet_handle.stop()
    return {
        "json_result_byte_identical": (
            json.dumps(routed_json["result"]) == json.dumps(direct_json["result"])
        ),
        "binary_result_byte_identical": (
            json.dumps(routed_binary["result"]) == json.dumps(direct_binary["result"])
        ),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--assets", type=int, default=DEFAULT_ASSETS)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="requests per client (closed loop)")
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="required batched/unbatched RPS ratio (acceptance bound)")
    parser.add_argument("--fit-workers", type=int, default=1,
                        help="fit threads in BOTH modes (default 1, so the measured "
                        "ratio isolates batching+dedupe from pool parallelism)")
    parser.add_argument("--max-wait-ms", type=float, default=40.0,
                        help="flush deadline of the batched mode (default 40ms, wide "
                        "enough to coalesce all clients' arrivals)")
    parser.add_argument("--binary", action="store_true",
                        help="drive the batched/unbatched comparison over binary wire "
                        "bodies instead of JSON")
    parser.add_argument("--transport-sizes", default=DEFAULT_TRANSPORT_SIZES,
                        help="comma-separated asset counts for the JSON-vs-binary "
                        f"transport comparison (default {DEFAULT_TRANSPORT_SIZES}; "
                        "empty string skips it)")
    parser.add_argument("--min-binary-speedup", type=float, default=DEFAULT_MIN_BINARY_SPEEDUP,
                        help="required binary/JSON RPS ratio at the largest transport "
                        f"size (default {DEFAULT_MIN_BINARY_SPEEDUP}x)")
    parser.add_argument("--replica-sweep", default="",
                        help="comma-separated replica counts for the multi-process "
                        "fleet sweep behind the consistent-hash router (e.g. 1,2,4; "
                        "empty string skips it)")
    parser.add_argument("--fleet-distinct", type=int, default=16,
                        help="distinct matrices the fleet sweep spreads over the "
                        "hash ring (default 16)")
    parser.add_argument("--no-fleet-gate", action="store_true",
                        help="record the fleet sweep without asserting the scaling "
                        "bounds (they are also skipped automatically on hosts with "
                        "fewer cores than replicas)")
    parser.add_argument("--json", default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    matrix = _series(args.assets)
    request_config = {"num_clusters": NUM_CLUSTERS, "prefix": PREFIX}
    # Cache off in the server default (cache is operator-controlled, not a
    # request field): the measured win is micro-batching + in-batch
    # dedupe, not repeat-traffic cache hits (bench_cache.py covers those).
    default_config = ClusteringConfig()

    unbatched = _measure(
        "unbatched",
        matrix,
        request_config,
        args.clients,
        args.requests,
        dict(
            default_config=default_config,
            max_batch_size=1,
            max_wait_ms=0.0,
            fit_workers=args.fit_workers,
        ),
        binary=args.binary,
    )
    batched = _measure(
        "batched",
        matrix,
        request_config,
        args.clients,
        args.requests,
        dict(
            default_config=default_config,
            max_batch_size=args.clients,
            max_wait_ms=args.max_wait_ms,
            fit_workers=args.fit_workers,
        ),
        binary=args.binary,
    )

    transport_sizes = [int(s) for s in args.transport_sizes.split(",") if s.strip()]
    transport = (
        _measure_transports(transport_sizes, args.clients, args.requests)
        if transport_sizes
        else []
    )

    # Byte-identity acceptance: serve one request with the cache on, then
    # make the same fit directly — same process, shared cache, so the
    # direct fit serves the stored entry and the bytes must match exactly.
    clear_result_caches()
    cached_default = ClusteringConfig(cache=True)
    server = ClusteringServer(port=0, default_config=cached_default, max_wait_ms=5.0)
    handle = server.start_in_background()
    try:
        with ServeClient(handle.host, handle.port) as client:
            envelope = client.cluster(matrix, config={"num_clusters": NUM_CLUSTERS, "prefix": PREFIX})
    finally:
        handle.stop()
    direct = (
        TMFGClusterer(cached_default.replace(num_clusters=NUM_CLUSTERS, prefix=PREFIX))
        .fit(matrix)
        .result_
    )
    byte_identical = json.dumps(envelope["result"]) == direct.to_json()

    replica_counts = [int(s) for s in args.replica_sweep.split(",") if s.strip()]
    fleet_sweep = (
        _measure_fleet_sweep(
            replica_counts, args.assets, args.fleet_distinct,
            args.clients, args.requests,
        )
        if replica_counts
        else []
    )
    fleet_identity = _fleet_identity_check(matrix) if replica_counts else None
    cores = os.cpu_count() or 1
    for row in fleet_sweep:
        gate = FLEET_GATES.get(row["workers"])
        row["gate"] = gate
        row["gate_applied"] = (
            gate is not None and not args.no_fleet_gate and cores >= row["workers"]
        )

    speedup = (
        batched["rps"] / unbatched["rps"] if unbatched["rps"] > 0 else float("inf")
    )
    report = {
        "benchmark": "serve_throughput",
        "num_assets": args.assets,
        "workload": "repetitive (all clients POST the same matrix)",
        "transport_mode": "binary" if args.binary else "json",
        "unbatched": unbatched,
        "batched": batched,
        "speedup_rps": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "byte_identical_to_direct_fit": byte_identical,
        "transport": {
            "workload": "cache-hit (transport-bound: encode + HTTP + decode + fingerprint)",
            "clients": args.clients,
            "requests_per_client": args.requests,
            "min_binary_speedup": args.min_binary_speedup,
            "sizes": transport,
        },
        "fleet": {
            "workload": (
                "cache-hit closed loop over distinct matrices, hash-spread "
                "across replicas behind the consistent-hash router"
            ),
            "cpu_count": os.cpu_count(),
            "clients": args.clients,
            "requests_per_client": args.requests,
            "distinct_matrices": args.fleet_distinct,
            "gates": {str(workers): gate for workers, gate in FLEET_GATES.items()},
            "sweep": fleet_sweep,
            "identity": fleet_identity,
        },
    }
    import benchlib

    benchlib.write_report("serve.json", report, override=args.json)
    assert byte_identical, "served payload diverged from the direct estimator fit"
    assert speedup >= args.min_speedup, (
        f"micro-batching gave only {speedup:.2f}x over batch-size-1 serving "
        f"(required {args.min_speedup}x)"
    )
    for row in transport:
        assert row["result_byte_identical"], (
            f"binary and JSON transports served different result payloads at "
            f"{row['num_assets']} assets"
        )
    if transport:
        largest = max(transport, key=lambda row: row["num_assets"])
        assert largest["binary_speedup_rps"] >= args.min_binary_speedup, (
            f"binary transport gave only {largest['binary_speedup_rps']:.2f}x over JSON "
            f"at {largest['num_assets']} assets (required {args.min_binary_speedup}x)"
        )
    if fleet_identity is not None:
        assert fleet_identity["json_result_byte_identical"], (
            "the routed JSON response diverged from the direct single-replica response"
        )
        assert fleet_identity["binary_result_byte_identical"], (
            "the routed binary response diverged from the direct single-replica response"
        )
    for row in fleet_sweep:
        if row["gate_applied"]:
            assert row["speedup_vs_single"] >= row["gate"], (
                f"{row['workers']} replicas gave only {row['speedup_vs_single']:.2f}x "
                f"the single-replica RPS (required {row['gate']}x on this "
                f"{cores}-core host)"
            )
    return report


if __name__ == "__main__":
    main()
