"""Serving-throughput benchmark: micro-batching + dedupe vs batch-size-1.

Closed-loop load generation against a live in-process
:class:`~repro.serve.server.ClusteringServer`: ``--clients`` threads each
run a blocking request loop (send, wait, send again) over a repetitive
workload — every client POSTs the same matrix, the shape of traffic the
batching queue exists for.  Two server configurations are measured:

* **unbatched** — ``max_wait_ms=0``, ``max_batch_size=1``, cache and
  dedupe off: every request is an independent full fit (the baseline a
  naive HTTP wrapper around the estimator would give you);
* **batched** — the real serving path: size-or-deadline micro-batching
  into ``cluster_many`` so concurrent identical requests are fitted once
  per batch (the request config keeps the cache off, so the speedup
  measured is batching+dedupe alone, not result-cache hits).

Reports RPS and p50/p95/p99 latency per mode as one JSON document and
asserts the acceptance bound (batched ≥ ``--min-speedup``x unbatched
throughput, default 3x), plus byte-identity of a served result against
the same fit made directly through ``TMFGClusterer``::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --assets 80 --clients 8 --requests 12 --json out.json
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from typing import Any, Dict, List

import numpy as np

from repro.api import ClusteringConfig, TMFGClusterer
from repro.cache import clear_result_caches
from repro.datasets.synthetic import make_time_series_dataset
from repro.serve import ClusteringServer, ServeClient, ServerBusy

DEFAULT_ASSETS = 120
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS = 10  # per client
DEFAULT_MIN_SPEEDUP = 3.0
NUM_CLUSTERS = 4
PREFIX = 10


def _series(num_assets: int, seed: int = 42) -> np.ndarray:
    return make_time_series_dataset(
        num_objects=num_assets, length=96, num_classes=NUM_CLUSTERS, noise=1.1, seed=seed
    ).data


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    index = min(len(sorted_ms) - 1, max(0, int(round(q * (len(sorted_ms) - 1)))))
    return sorted_ms[index]


def _drive(
    host: str,
    port: int,
    matrix: np.ndarray,
    config: Dict[str, Any],
    clients: int,
    requests_per_client: int,
) -> Dict[str, Any]:
    """Closed-loop load: each client thread sends its next request only
    after the previous response arrives."""
    latencies_ms: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_loop() -> None:
        local: List[float] = []
        try:
            with ServeClient(host, port, timeout=300.0) as client:
                # Encode once: replaying the bytes keeps the loop measuring
                # the server, not per-iteration json.dumps of the matrix.
                body = client.encode_cluster_body(matrix, config)
                barrier.wait(timeout=60)
                for _ in range(requests_per_client):
                    start = time.perf_counter()
                    while True:
                        try:
                            client.request("POST", "/cluster", body)
                            break
                        except ServerBusy as busy:
                            time.sleep(max(busy.retry_after, 0.05))
                    local.append((time.perf_counter() - start) * 1000.0)
        except BaseException as error:  # pragma: no cover - reported below
            with lock:
                errors.append(error)
            return
        with lock:
            latencies_ms.extend(local)

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start
    if errors:
        raise RuntimeError(f"load generation failed: {errors[0]!r}") from errors[0]
    ordered = sorted(latencies_ms)
    completed = len(ordered)
    return {
        "clients": clients,
        "requests": completed,
        "wall_seconds": round(wall_seconds, 4),
        "rps": round(completed / wall_seconds, 2) if wall_seconds > 0 else 0.0,
        "p50_ms": round(_percentile(ordered, 0.50), 2),
        "p95_ms": round(_percentile(ordered, 0.95), 2),
        "p99_ms": round(_percentile(ordered, 0.99), 2),
        "mean_ms": round(sum(ordered) / completed, 2) if completed else 0.0,
    }


def _measure(
    mode: str,
    matrix: np.ndarray,
    request_config: Dict[str, Any],
    clients: int,
    requests_per_client: int,
    server_kwargs: Dict[str, Any],
) -> Dict[str, Any]:
    clear_result_caches()
    server = ClusteringServer(port=0, **server_kwargs)
    handle = server.start_in_background()
    try:
        with ServeClient(handle.host, handle.port) as warmup:
            warmup.wait_healthy(30)
            warmup.cluster(matrix, config=request_config)  # JIT/warm-up fit
        report = _drive(
            handle.host, handle.port, matrix, request_config, clients, requests_per_client
        )
        with ServeClient(handle.host, handle.port) as scrape:
            metrics = scrape.metrics()
        report["batching"] = metrics["batching"]
        report["mode"] = mode
        return report
    finally:
        handle.stop()


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--assets", type=int, default=DEFAULT_ASSETS)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        help="requests per client (closed loop)")
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="required batched/unbatched RPS ratio (acceptance bound)")
    parser.add_argument("--fit-workers", type=int, default=1,
                        help="fit threads in BOTH modes (default 1, so the measured "
                        "ratio isolates batching+dedupe from pool parallelism)")
    parser.add_argument("--max-wait-ms", type=float, default=40.0,
                        help="flush deadline of the batched mode (default 40ms, wide "
                        "enough to coalesce all clients' arrivals)")
    parser.add_argument("--json", default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    matrix = _series(args.assets)
    request_config = {"num_clusters": NUM_CLUSTERS, "prefix": PREFIX}
    # Cache off in the server default (cache is operator-controlled, not a
    # request field): the measured win is micro-batching + in-batch
    # dedupe, not repeat-traffic cache hits (bench_cache.py covers those).
    default_config = ClusteringConfig()

    unbatched = _measure(
        "unbatched",
        matrix,
        request_config,
        args.clients,
        args.requests,
        dict(
            default_config=default_config,
            max_batch_size=1,
            max_wait_ms=0.0,
            fit_workers=args.fit_workers,
        ),
    )
    batched = _measure(
        "batched",
        matrix,
        request_config,
        args.clients,
        args.requests,
        dict(
            default_config=default_config,
            max_batch_size=args.clients,
            max_wait_ms=args.max_wait_ms,
            fit_workers=args.fit_workers,
        ),
    )

    # Byte-identity acceptance: serve one request with the cache on, then
    # make the same fit directly — same process, shared cache, so the
    # direct fit serves the stored entry and the bytes must match exactly.
    clear_result_caches()
    cached_default = ClusteringConfig(cache=True)
    server = ClusteringServer(port=0, default_config=cached_default, max_wait_ms=5.0)
    handle = server.start_in_background()
    try:
        with ServeClient(handle.host, handle.port) as client:
            envelope = client.cluster(matrix, config={"num_clusters": NUM_CLUSTERS, "prefix": PREFIX})
    finally:
        handle.stop()
    direct = (
        TMFGClusterer(cached_default.replace(num_clusters=NUM_CLUSTERS, prefix=PREFIX))
        .fit(matrix)
        .result_
    )
    byte_identical = json.dumps(envelope["result"]) == direct.to_json()

    speedup = (
        batched["rps"] / unbatched["rps"] if unbatched["rps"] > 0 else float("inf")
    )
    report = {
        "benchmark": "serve_throughput",
        "num_assets": args.assets,
        "workload": "repetitive (all clients POST the same matrix)",
        "unbatched": unbatched,
        "batched": batched,
        "speedup_rps": round(speedup, 2),
        "min_speedup": args.min_speedup,
        "byte_identical_to_direct_fit": byte_identical,
    }
    import benchlib

    benchlib.write_report("serve.json", report, override=args.json)
    assert byte_identical, "served payload diverged from the direct estimator fit"
    assert speedup >= args.min_speedup, (
        f"micro-batching gave only {speedup:.2f}x over batch-size-1 serving "
        f"(required {args.min_speedup}x)"
    )
    return report


if __name__ == "__main__":
    main()
