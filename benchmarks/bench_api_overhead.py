"""Estimator-layer overhead: ``TMFGClusterer`` vs direct ``tmfg_dbht``.

The estimator API wraps the functional pipeline in a config object, a
registry lookup, and a result wrapper; none of that may cost real time.
This benchmark measures both paths end to end on a 200-asset correlation
matrix (similarity precomputed, so both sides time exactly the same
pipeline work) and asserts the wrapper stays within 2% of the direct call.

Run standalone (prints one JSON document and enforces the bound)::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py

or under pytest-benchmark like the other ``bench_*`` scripts.
"""

import json
import time

import numpy as np
import pytest

from repro.api import ClusteringConfig, TMFGClusterer
from repro.core.pipeline import tmfg_dbht
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset

NUM_ASSETS = 200
NUM_CLUSTERS = 4
PREFIX = 10
REPEATS = 7
MAX_OVERHEAD = 0.02


def _similarity(n: int = NUM_ASSETS, seed: int = 42) -> np.ndarray:
    dataset = make_time_series_dataset(
        num_objects=n, length=128, num_classes=NUM_CLUSTERS, noise=1.1, seed=seed
    )
    similarity, _ = similarity_and_dissimilarity(dataset.data)
    return similarity


def _run_direct(similarity: np.ndarray) -> np.ndarray:
    return tmfg_dbht(similarity, prefix=PREFIX).cut(NUM_CLUSTERS)


def _run_estimator(similarity: np.ndarray) -> np.ndarray:
    config = ClusteringConfig(
        prefix=PREFIX, num_clusters=NUM_CLUSTERS, precomputed=True
    )
    return TMFGClusterer(config).fit_predict(similarity)


def _best_of(func, similarity, repeats: int = REPEATS) -> float:
    """Minimum wall-clock over ``repeats`` runs (the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func(similarity)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def similarity():
    return _similarity()


def test_bench_direct_pipeline(benchmark, similarity):
    labels = benchmark.pedantic(_run_direct, args=(similarity,), rounds=2, iterations=1)
    assert len(labels) == NUM_ASSETS


def test_bench_estimator_layer(benchmark, similarity):
    labels = benchmark.pedantic(_run_estimator, args=(similarity,), rounds=2, iterations=1)
    assert len(labels) == NUM_ASSETS


def main() -> dict:
    similarity = _similarity()
    # Warm up both paths (imports, kernel registry, numpy buffers).
    direct_labels = _run_direct(similarity)
    estimator_labels = _run_estimator(similarity)

    direct_seconds = _best_of(_run_direct, similarity)
    estimator_seconds = _best_of(_run_estimator, similarity)
    overhead = estimator_seconds / direct_seconds - 1.0

    report = {
        "benchmark": "api_overhead",
        "num_assets": NUM_ASSETS,
        "prefix": PREFIX,
        "repeats": REPEATS,
        "direct_seconds": round(direct_seconds, 6),
        "estimator_seconds": round(estimator_seconds, 6),
        "overhead_fraction": round(overhead, 6),
        "max_overhead_fraction": MAX_OVERHEAD,
        "identical_labels": bool(np.array_equal(direct_labels, estimator_labels)),
    }
    import benchlib

    benchlib.write_report("api_overhead.json", report)
    assert report["identical_labels"], "estimator output diverged from tmfg_dbht"
    assert overhead < MAX_OVERHEAD, (
        f"estimator layer adds {overhead:.2%} over direct tmfg_dbht "
        f"(budget {MAX_OVERHEAD:.0%})"
    )
    return report


if __name__ == "__main__":
    main()
