"""Appendix example (Figs. 12-13): prefix 3 recovers the ground truth that
prefix 1 misses on the 6-point correlation matrix."""

from repro.experiments.figures import appendix_prefix_example


def test_appendix_prefix_example(benchmark, emit):
    result = benchmark.pedantic(appendix_prefix_example, rounds=1, iterations=1)
    emit("appendix_prefix_example", result)
    assert result["ari_by_prefix"][3] == 1.0
    assert result["ari_by_prefix"][1] < 1.0
