"""Figure 10: stock clusters vs ICB industries on the synthetic market.

Paper shape: PAR-TDBHT (prefix 30) recovers industry structure well above
chance (paper ARI 0.36 on real data, 0.28 for the exact TMFG); several
clusters are dominated by a single industry.
"""

from repro.experiments.figures import figure10_stock_clusters


def test_figure10_stock_clusters(benchmark, config, emit):
    result = benchmark.pedantic(
        figure10_stock_clusters, args=(config,), rounds=1, iterations=1
    )
    emit("figure10_stock_clusters", result)
    # Clustering quality is well above chance on the synthetic market.
    assert result["ari_prefix"] > 0.15
    assert result["ari_exact"] > 0.15
    counts = result["counts"]
    # At least a few clusters are dominated (>=60%) by a single industry.
    dominated = sum(
        1
        for cluster in range(counts.shape[0])
        if counts[cluster].sum() > 0
        and counts[cluster].max() >= 0.6 * counts[cluster].sum()
    )
    assert dominated >= 3
