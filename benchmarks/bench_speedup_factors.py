"""Section VII-A: speedup of PAR-TDBHT over the sequential baselines.

Paper shape: PAR-TDBHT is orders of magnitude faster than PMFG-DBHT and
much faster than SEQ-TDBHT (the unoptimised original pipeline); absolute
factors differ because the baselines here are Python re-implementations
rather than the authors' MATLAB code.
"""

from repro.experiments.figures import speedup_factors


def test_speedup_factors(benchmark, config, emit):
    result = benchmark.pedantic(speedup_factors, args=(config,), rounds=1, iterations=1)
    emit("speedup_factors", result)
    for dataset_id, seq_vs_par1, seq_vs_par10, pmfg_vs_par1, pmfg_vs_par10 in result["rows"]:
        # The sequential/original pipelines are slower than the batched one.
        assert pmfg_vs_par1 > 1.0, dataset_id
        assert pmfg_vs_par10 > 1.0, dataset_id
        assert seq_vs_par10 > 0.5, dataset_id
