"""Figure 8: clustering quality (ARI) of every method on every data set.

Paper shape: PAR-TDBHT variants usually beat COMP and AVG, are competitive
with K-MEANS, and K-MEANS-S (with a well-chosen neighbour count) is the
strongest baseline on most data sets.
"""

import numpy as np

from repro.experiments.figures import figure8_quality


def test_figure8_quality(benchmark, config, emit):
    result = benchmark.pedantic(figure8_quality, args=(config,), rounds=1, iterations=1)
    emit("figure8_quality", result)
    by_method = {}
    for _, method, ari in result["rows"]:
        by_method.setdefault(method, []).append(ari)
    mean_ari = {method: float(np.mean(values)) for method, values in by_method.items()}
    # The paper's headline quality claim: exact TMFG + DBHT beats complete
    # and average linkage on average across the data sets.
    assert mean_ari["PAR-TDBHT-1"] > mean_ari["COMP"] - 0.02
    assert mean_ari["PAR-TDBHT-1"] > mean_ari["AVG"] - 0.02
