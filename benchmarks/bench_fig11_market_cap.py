"""Figure 11: market capitalisation by sector and by DBHT cluster.

Paper shape: median market caps are similar across sectors, but the most
"mixed" clusters contain systematically smaller companies (their prices are
noisier, so they are harder to place).
"""

import numpy as np

from repro.experiments.figures import figure11_market_cap


def test_figure11_market_cap(benchmark, config, emit):
    result = benchmark.pedantic(
        figure11_market_cap, args=(config,), rounds=1, iterations=1
    )
    emit("figure11_market_cap", result)
    sector_medians = [row[3] for row in result["rows"] if row[0] == "sector"]
    cluster_medians = [row[3] for row in result["rows"] if row[0] == "cluster"]
    assert len(sector_medians) == 11
    assert len(cluster_medians) >= 2
    # Sector medians are comparatively homogeneous; cluster medians spread at
    # least as much (some clusters collect the small caps).
    sector_spread = max(sector_medians) / max(min(sector_medians), 1e-12)
    cluster_spread = max(cluster_medians) / max(min(cluster_medians), 1e-12)
    assert cluster_spread >= 1.0
    assert np.isfinite(sector_spread)
