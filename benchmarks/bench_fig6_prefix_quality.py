"""Figure 6: clustering quality (ARI) of PAR-TDBHT for every prefix size.

Paper shape: quality with prefix > 1 is usually close to the exact TMFG,
with larger degradation on the smaller data sets where the prefix is a large
fraction of the graph (a trend that is more pronounced at this reproduction's
reduced data scale).
"""

import numpy as np

from repro.experiments.figures import figure6_prefix_quality


def test_figure6_prefix_quality(benchmark, config, emit):
    result = benchmark.pedantic(
        figure6_prefix_quality, args=(config,), rounds=1, iterations=1
    )
    emit("figure6_prefix_quality", result)
    rows = result["rows"]
    assert len(rows) == len(config.dataset_ids) * len(config.prefix_sizes)
    # Averaged over data sets, the exact TMFG (prefix 1) should be at least
    # as good as the most aggressive prefix.
    by_prefix = {}
    for _, prefix, ari in rows:
        by_prefix.setdefault(prefix, []).append(ari)
    mean_ari = {prefix: float(np.mean(values)) for prefix, values in by_prefix.items()}
    assert mean_ari[min(mean_ari)] >= mean_ari[max(mean_ari)] - 0.05
