"""Table II: data-set registry and generated stand-in sizes."""

from repro.experiments.figures import table2_datasets


def test_table2_datasets(benchmark, config, emit):
    result = benchmark.pedantic(table2_datasets, args=(config,), rounds=1, iterations=1)
    emit("table2_datasets", result)
    assert len(result["rows"]) == len(config.dataset_ids)
