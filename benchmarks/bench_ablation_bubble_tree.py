"""Ablation: bubble-tree construction, on-the-fly vs post-hoc.

The paper builds the bubble tree during TMFG construction in O(n) extra
work; the original DBHT enumerates all triangles of the finished graph and
tests each for being separating (quadratic work).  Both yield the same
bubbles; this benchmark measures the gap.
"""

import pytest

from repro.baselines.classic_dbht import build_bubble_tree_from_graph
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like


@pytest.fixture(scope="module")
def similarity():
    dataset = load_ucr_like(11, scale=0.08, noise=1.2, seed=3)
    matrix, _ = similarity_and_dissimilarity(dataset.data)
    return matrix


def test_ablation_bubble_tree_on_the_fly(benchmark, similarity):
    result = benchmark.pedantic(
        construct_tmfg,
        args=(similarity,),
        kwargs={"prefix": 1, "build_bubble_tree": True},
        rounds=3,
        iterations=1,
    )
    assert result.bubble_tree.num_bubbles == similarity.shape[0] - 3


def test_ablation_bubble_tree_post_hoc(benchmark, similarity):
    tmfg = construct_tmfg(similarity, prefix=1, build_bubble_tree=True)
    generic = benchmark.pedantic(
        build_bubble_tree_from_graph, args=(tmfg.graph,), rounds=3, iterations=1
    )
    assert generic.num_bubbles == tmfg.bubble_tree.num_bubbles
    assert {frozenset(b.vertices) for b in tmfg.bubble_tree.bubbles} == set(generic.bubbles)
