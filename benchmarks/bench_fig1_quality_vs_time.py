"""Figure 1: sequential runtime vs clustering quality.

Paper shape: PMFG+DBHT and TMFG+DBHT are slower than average/complete
linkage but produce better clusters on most data sets.
"""

from repro.experiments.figures import figure1_quality_vs_time


def test_figure1_quality_vs_time(benchmark, config, emit):
    result = benchmark.pedantic(
        figure1_quality_vs_time, args=(config,), rounds=1, iterations=1
    )
    emit("figure1_quality_vs_time", result)
    rows = result["rows"]
    # Every slow data set ran all four methods.
    assert len(rows) == 4 * len(config.slow_dataset_ids)
    # The TMFG+DBHT pipeline is much faster than PMFG+DBHT on every data set
    # (the PMFG planarity-test loop dominates), reproducing the Fig. 1 x-axis gap.
    by_dataset = {}
    for dataset_id, _, method, seconds, ari in rows:
        by_dataset.setdefault(dataset_id, {})[method] = (seconds, ari)
    for dataset_id, methods in by_dataset.items():
        assert methods["PMFG-DBHT"][0] > methods["PAR-TDBHT-1"][0]
