"""Ablation: bubble-tree edge direction, linear-work vs BFS-per-triangle.

The paper's Algorithm 3 computes all edge directions in Theta(n) work using
the bubble-tree invariant, replacing the original Theta(n^2) BFS-based
computation.  Both produce identical directions; this benchmark measures the
gap.
"""

import pytest

from repro.core.direction import compute_directions, compute_directions_bfs
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like


@pytest.fixture(scope="module")
def tmfg():
    dataset = load_ucr_like(8, scale=0.035, noise=1.2, seed=2)
    similarity, _ = similarity_and_dissimilarity(dataset.data)
    return construct_tmfg(similarity, prefix=10)


def test_ablation_direction_linear(benchmark, tmfg):
    fast = benchmark.pedantic(
        compute_directions, args=(tmfg.bubble_tree, tmfg.graph), rounds=3, iterations=1
    )
    assert len(fast.towards_child) == tmfg.bubble_tree.num_bubbles - 1


def test_ablation_direction_bfs(benchmark, tmfg):
    slow = benchmark.pedantic(
        compute_directions_bfs, args=(tmfg.bubble_tree, tmfg.graph), rounds=3, iterations=1
    )
    fast = compute_directions(tmfg.bubble_tree, tmfg.graph)
    assert slow.towards_child == fast.towards_child
