"""Micro-benchmarks of the individual pipeline components.

Unlike the figure reproductions (which run once), these use pytest-benchmark
with several rounds so the relative cost of the pipeline stages (TMFG
construction at different prefixes, APSP, direction, assignment, hierarchy)
can be tracked across code changes.
"""

import pytest

from repro.baselines.hac import linkage
from repro.core.assignment import assign_vertices
from repro.core.dbht import dbht
from repro.core.direction import compute_directions
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture(scope="module")
def matrices():
    dataset = load_ucr_like(6, scale=0.03, noise=1.2, seed=4)
    return similarity_and_dissimilarity(dataset.data)


@pytest.fixture(scope="module")
def prepared(matrices):
    similarity, dissimilarity = matrices
    tmfg = construct_tmfg(similarity, prefix=10)
    distance_graph = WeightedGraph(tmfg.graph.num_vertices)
    for u, v, _ in tmfg.graph.edges():
        distance_graph.add_edge(u, v, float(dissimilarity[u, v]))
    shortest_paths = all_pairs_shortest_paths(distance_graph)
    directions = compute_directions(tmfg.bubble_tree, tmfg.graph)
    return tmfg, distance_graph, shortest_paths, directions


@pytest.mark.parametrize("prefix", [1, 10, 50])
def test_bench_tmfg_construction(benchmark, matrices, prefix):
    similarity, _ = matrices
    result = benchmark(construct_tmfg, similarity, prefix=prefix, build_bubble_tree=True)
    assert result.graph.num_edges == 3 * similarity.shape[0] - 6


def test_bench_apsp(benchmark, prepared):
    _, distance_graph, _, _ = prepared
    distances = benchmark(all_pairs_shortest_paths, distance_graph)
    assert distances.shape[0] == distance_graph.num_vertices


def test_bench_direction(benchmark, prepared):
    tmfg, _, _, _ = prepared
    result = benchmark(compute_directions, tmfg.bubble_tree, tmfg.graph)
    assert result.towards_child


def test_bench_assignment(benchmark, matrices, prepared):
    similarity, _ = matrices
    tmfg, _, shortest_paths, directions = prepared
    result = benchmark(
        assign_vertices, tmfg.bubble_tree, directions, similarity, shortest_paths
    )
    assert len(result.group) == similarity.shape[0]


def test_bench_full_dbht(benchmark, matrices):
    similarity, dissimilarity = matrices
    tmfg = construct_tmfg(similarity, prefix=10)
    result = benchmark.pedantic(
        dbht, args=(tmfg, similarity, dissimilarity), rounds=2, iterations=1
    )
    assert result.dendrogram.is_complete


def test_bench_complete_linkage(benchmark, matrices):
    _, dissimilarity = matrices
    merges = benchmark(linkage, dissimilarity, "complete")
    assert merges.shape[0] == dissimilarity.shape[0] - 1
