"""Figure 5: runtime breakdown across algorithm steps (ECG5000 stand-in).

Paper shape: with a small prefix, TMFG construction dominates; with a larger
prefix its share shrinks and APSP becomes the bottleneck; the bubble-tree
step is negligible throughout.
"""

from repro.experiments.figures import figure5_breakdown


def test_figure5_breakdown(benchmark, config, emit):
    result = benchmark.pedantic(
        figure5_breakdown, kwargs={"config": config, "dataset_id": 6}, rounds=1, iterations=1
    )
    emit("figure5_breakdown", result)
    shares = {}
    for prefix, step, seconds, fraction in result["rows"]:
        shares[(prefix, step)] = fraction
    smallest = min(config.prefix_sizes)
    largest = max(config.prefix_sizes)
    # The TMFG share shrinks as the prefix grows.
    assert shares[(largest, "tmfg")] <= shares[(smallest, "tmfg")]
    # The bubble-tree step is a small fraction of the total for every prefix.
    for prefix in config.prefix_sizes:
        assert shares[(prefix, "bubble-tree")] < 0.25
