"""Shared fixtures for the benchmark suite.

Each benchmark reproduces one table or figure of the paper: it runs the
corresponding entry point from :mod:`repro.experiments.figures` exactly once
(via ``benchmark.pedantic``) so that ``pytest benchmarks/ --benchmark-only``
reports how long each reproduction takes, and it writes the produced
rows/series both to stdout and to ``benchmarks/results/<name>.txt`` so the
data behind EXPERIMENTS.md can be regenerated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Experiment configuration shared by all figure benchmarks.

    Set ``REPRO_BENCH_SCALE`` to scale the synthetic data sets up or down
    (e.g. ``REPRO_BENCH_SCALE=0.1`` for a larger, slower, more faithful run).
    """
    base = default_config()
    scale = os.environ.get("REPRO_BENCH_SCALE")
    if scale:
        base = ExperimentConfig(scale=float(scale))
    return base


@pytest.fixture(scope="session")
def emit():
    """Write a figure reproduction's rows to stdout and to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, result: dict) -> str:
        text = format_table(result["headers"], result["rows"], title=result["title"])
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit
