"""Streaming per-tick timings: warm-started vs cold rebuilds.

The streaming subsystem's acceptance bar: at 200 assets, a warm tick
(incremental rolling-correlation update + warm-started TMFG + DBHT) must
take at most 0.7x the wall-clock of a cold tick (from-scratch correlation
recomputation + cold TMFG + DBHT).  Both paths produce identical flat cuts
— warm starts are verified per round — which this module asserts per tick
before timing anything.

Run standalone to print one JSON document with the per-tick timings::

    PYTHONPATH=src python benchmarks/bench_streaming.py

or under pytest-benchmark like the other ``bench_*`` scripts::

    pytest benchmarks/bench_streaming.py --benchmark-only
"""

import json

import numpy as np
import pytest

from repro.datasets.similarity import detrended_log_returns
from repro.datasets.stocks import generate_regime_switching_stream
from repro.streaming.runner import StreamingPipeline

NUM_ASSETS = 200
WINDOW = 250
HOP = 5
NUM_TICKS = 12
NUM_DAYS = WINDOW + HOP * (NUM_TICKS + 1)
NUM_CLUSTERS = 8


def _stream_returns(seed: int = 31) -> np.ndarray:
    stream = generate_regime_switching_stream(
        num_stocks=NUM_ASSETS,
        num_days=NUM_DAYS,
        num_regimes=2,
        regime_length=NUM_DAYS // 2,
        seed=seed,
    )
    return stream.returns


def _run(returns: np.ndarray, warm: bool) -> "StreamingPipeline":
    pipeline = StreamingPipeline(
        returns,
        window=WINDOW,
        hop=HOP,
        num_clusters=NUM_CLUSTERS,
        warm_start=warm,
        max_ticks=NUM_TICKS,
    )
    return pipeline.run()


def streaming_report(seed: int = 31) -> dict:
    """Warm-vs-cold per-tick timings plus the equivalence check."""
    returns = _stream_returns(seed)
    warm = _run(returns, warm=True)
    cold = _run(returns, warm=False)
    assert warm.num_ticks == cold.num_ticks == NUM_TICKS
    for warm_tick, cold_tick in zip(warm.ticks, cold.ticks):
        assert np.array_equal(warm_tick.labels, cold_tick.labels), (
            f"warm/cold cuts diverge at tick {warm_tick.tick}"
        )
    # The first tick fills the whole window and builds without hints on
    # both paths; the steady-state comparison starts at tick 1.
    warm_seconds = [t.seconds for t in warm.ticks[1:]]
    cold_seconds = [t.seconds for t in cold.ticks[1:]]
    warm_mean = float(np.mean(warm_seconds))
    cold_mean = float(np.mean(cold_seconds))
    return {
        "assets": NUM_ASSETS,
        "window": WINDOW,
        "hop": HOP,
        "ticks": NUM_TICKS,
        "clusters": NUM_CLUSTERS,
        "cuts_identical": True,
        "warm_tick_seconds": warm_seconds,
        "cold_tick_seconds": cold_seconds,
        "warm_mean_tick_seconds": warm_mean,
        "cold_mean_tick_seconds": cold_mean,
        "warm_over_cold_ratio": warm_mean / cold_mean,
        "meets_0.7x_target": warm_mean <= 0.7 * cold_mean,
        "warm_round_replay_rate": warm.warm_stats.round_replay_rate,
        "warm_full_replay_rate": warm.warm_stats.full_replay_rate,
        "warm_mean_step_seconds": warm.mean_step_seconds(),
        "cold_mean_step_seconds": cold.mean_step_seconds(),
    }


@pytest.fixture(scope="module")
def returns():
    return _stream_returns()


@pytest.mark.benchmark(group="streaming")
def test_warm_streaming(benchmark, returns):
    benchmark.pedantic(lambda: _run(returns, warm=True), rounds=1, iterations=1)


@pytest.mark.benchmark(group="streaming")
def test_cold_streaming(benchmark, returns):
    benchmark.pedantic(lambda: _run(returns, warm=False), rounds=1, iterations=1)


if __name__ == "__main__":
    import benchlib

    benchlib.write_report("streaming.json", streaming_report())
