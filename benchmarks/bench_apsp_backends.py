"""APSP engine comparison: python/numpy kernels x serial/thread/process backends.

The acceptance bar for the CSR refactor is end-to-end: on a 500-vertex TMFG
the numpy CSR kernel must beat the seed implementation (per-source Dijkstra
over the adjacency-list graph) by at least 3x, with byte-identical
distances.  This module measures every kernel x backend combination plus the
adjacency-list baseline.

Run under pytest-benchmark like the other ``bench_*`` scripts (``pytest
benchmarks/bench_apsp_backends.py --benchmark-only --benchmark-json=out.json``
gives the standard pytest-benchmark JSON), or standalone::

    PYTHONPATH=src python benchmarks/bench_apsp_backends.py

which prints one JSON document with the per-configuration timings and
speedups over the seed baseline.
"""

import json
import time

import numpy as np
import pytest

from repro.core.tmfg import construct_tmfg
from repro.graph.shortest_paths import all_pairs_shortest_paths, dijkstra
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.scheduler import make_backend

NUM_VERTICES = 500
KERNELS = ("python", "numpy")
BACKENDS = ("serial", "thread", "process")


def _build_distance_graph(n: int = NUM_VERTICES, seed: int = 3) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    similarity = np.corrcoef(rng.normal(size=(n, 128)))
    tmfg = construct_tmfg(similarity, prefix=10, build_bubble_tree=False)
    dissimilarity = np.sqrt(np.maximum(2.0 * (1.0 - similarity), 0.0))
    np.fill_diagonal(dissimilarity, 0.0)
    graph = WeightedGraph(n)
    for u, v, _ in tmfg.graph.edges():
        graph.add_edge(u, v, float(dissimilarity[u, v]))
    return graph


def _seed_apsp(graph: WeightedGraph) -> np.ndarray:
    """The seed implementation: one adjacency-list Dijkstra per source."""
    return np.vstack([dijkstra(graph, source) for source in range(graph.num_vertices)])


@pytest.fixture(scope="module")
def distance_graph():
    return _build_distance_graph()


@pytest.fixture(scope="module")
def csr_graph(distance_graph):
    return distance_graph.to_csr()


def test_bench_apsp_seed_baseline(benchmark, distance_graph):
    distances = benchmark.pedantic(
        _seed_apsp, args=(distance_graph,), rounds=2, iterations=1
    )
    assert distances.shape == (NUM_VERTICES, NUM_VERTICES)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_apsp_kernel_backend(benchmark, distance_graph, csr_graph, kernel, backend_name):
    backend = make_backend(backend_name, num_workers=2)
    try:
        distances = benchmark.pedantic(
            all_pairs_shortest_paths,
            args=(csr_graph,),
            kwargs={"backend": backend, "kernel": kernel},
            rounds=2,
            iterations=1,
        )
    finally:
        backend.close()
    reference = _seed_apsp(distance_graph)
    np.testing.assert_array_equal(distances, reference)


def main() -> dict:
    graph = _build_distance_graph()
    csr = graph.to_csr()

    start = time.perf_counter()
    reference = _seed_apsp(graph)
    seed_seconds = time.perf_counter() - start

    results = [
        {
            "name": "seed-adjacency-dijkstra",
            "kernel": "python",
            "backend": "seed",
            "seconds": round(seed_seconds, 4),
            "speedup_vs_seed": 1.0,
            "identical": True,
        }
    ]
    for kernel in KERNELS:
        for backend_name in BACKENDS:
            backend = make_backend(backend_name, num_workers=2)
            try:
                all_pairs_shortest_paths(csr, backend=backend, kernel=kernel)  # warm-up
                start = time.perf_counter()
                distances = all_pairs_shortest_paths(csr, backend=backend, kernel=kernel)
                seconds = time.perf_counter() - start
            finally:
                backend.close()
            results.append(
                {
                    "name": f"csr-{kernel}-{backend_name}",
                    "kernel": kernel,
                    "backend": backend_name,
                    "seconds": round(seconds, 4),
                    "speedup_vs_seed": round(seed_seconds / seconds, 2),
                    "identical": bool(np.array_equal(distances, reference)),
                }
            )
    report = {
        "benchmark": "apsp_backends",
        "num_vertices": NUM_VERTICES,
        "num_edges": graph.num_edges,
        "results": results,
    }
    import benchlib

    benchlib.write_report("apsp_backends.json", report)
    return report


if __name__ == "__main__":
    main()
