"""Figure 3: runtime of every method on every data set.

Paper shape: PMFG-DBHT and SEQ-TDBHT are orders of magnitude slower than
PAR-TDBHT; COMP and AVG are faster than PAR-TDBHT (DBHT uses complete
linkage as a subroutine and adds the filtered-graph construction).
"""

from repro.experiments.figures import figure3_runtime


def test_figure3_runtime(benchmark, config, emit):
    result = benchmark.pedantic(figure3_runtime, args=(config,), rounds=1, iterations=1)
    emit("figure3_runtime", result)
    rows = result["rows"]
    assert rows, "figure 3 produced no rows"
    # On the subsampled slow data sets, the sequential TMFG+DBHT stand-in is
    # slower than the batched PAR-TDBHT on the same (full-size) data set.
    seconds = {}
    for dataset_id, method, measured, _, _ in rows:
        seconds[(dataset_id, method)] = measured
    for dataset_id in config.slow_dataset_ids:
        slow = seconds.get((dataset_id, "SEQ-TDBHT (subsampled)"))
        fast = seconds.get((dataset_id, f"PAR-TDBHT-{config.default_prefix}"))
        if slow is not None and fast is not None:
            assert slow > 0 and fast > 0
