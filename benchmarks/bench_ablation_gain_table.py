"""Ablation: gain-table maintenance strategy.

The paper notes that, unlike the original TMFG implementation (which rescans
every face to find the ones whose best vertex was just inserted), the
optimised construction only touches the affected faces.  This ablation runs
the TMFG construction with both gain tables and compares the amount of
recomputation and the wall-clock time; the resulting graphs are identical.
"""

import numpy as np
import pytest

from repro.core.gains import GainTable, RescanGainTable
from repro.core import tmfg as tmfg_module
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.ucr_like import load_ucr_like
from repro.experiments.reporting import format_table


@pytest.fixture(scope="module")
def similarity():
    dataset = load_ucr_like(6, scale=0.03, noise=1.2, seed=1)
    matrix, _ = similarity_and_dissimilarity(dataset.data)
    return matrix


def _construct_with_table(similarity, table_cls):
    """Run TMFG construction with a specific gain-table implementation."""
    original = tmfg_module.GainTable
    tmfg_module.GainTable = table_cls
    try:
        return construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
    finally:
        tmfg_module.GainTable = original


def test_ablation_gain_table_optimized(benchmark, similarity, emit):
    result = benchmark.pedantic(
        _construct_with_table, args=(similarity, GainTable), rounds=1, iterations=1
    )
    rescan = _construct_with_table(similarity, RescanGainTable)
    optimized_edges = {(u, v) for u, v, _ in result.graph.edges()}
    rescan_edges = {(u, v) for u, v, _ in rescan.graph.edges()}
    assert optimized_edges == rescan_edges
    emit(
        "ablation_gain_table",
        {
            "title": "Ablation: gain-table maintenance (identical graphs)",
            "headers": ["strategy", "edges", "edge weight sum"],
            "rows": [
                ("affected-faces only", len(optimized_edges), result.graph.edge_weight_sum()),
                ("rescan all faces", len(rescan_edges), rescan.graph.edge_weight_sum()),
            ],
        },
    )


def test_ablation_gain_table_rescan(benchmark, similarity):
    rescan = benchmark.pedantic(
        _construct_with_table, args=(similarity, RescanGainTable), rounds=1, iterations=1
    )
    assert rescan.graph.num_edges == 3 * similarity.shape[0] - 6
