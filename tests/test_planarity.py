"""Tests for the Left-Right planarity test, cross-checked against networkx."""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tmfg import construct_tmfg
from repro.graph.planarity import is_planar, is_planar_with_extra_edge
from repro.graph.weighted_graph import WeightedGraph


def _networkx_planar(edges, n):
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    result, _ = nx.check_planarity(graph)
    return result


K5_EDGES = list(itertools.combinations(range(5), 2))
K33_EDGES = [(i, j + 3) for i in range(3) for j in range(3)]


class TestKnownGraphs:
    def test_k4_is_planar(self):
        assert is_planar(list(itertools.combinations(range(4), 2)), num_vertices=4)

    def test_k5_is_not_planar(self):
        assert not is_planar(K5_EDGES, num_vertices=5)

    def test_k33_is_not_planar(self):
        assert not is_planar(K33_EDGES, num_vertices=6)

    def test_k5_minus_one_edge_is_planar(self):
        assert is_planar(K5_EDGES[:-1], num_vertices=5)

    def test_k33_minus_one_edge_is_planar(self):
        assert is_planar(K33_EDGES[:-1], num_vertices=6)

    def test_cycle_is_planar(self):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        assert is_planar(edges, num_vertices=20)

    def test_empty_graph_is_planar(self):
        assert is_planar([], num_vertices=10)

    def test_disconnected_graph_with_nonplanar_component(self):
        edges = [(u + 10, v + 10) for u, v in K5_EDGES] + [(0, 1), (1, 2)]
        assert not is_planar(edges, num_vertices=15)

    def test_k5_subdivision_is_not_planar(self):
        # Subdivide every edge of K5 with a fresh vertex.
        edges = []
        next_vertex = 5
        for u, v in K5_EDGES:
            edges.append((u, next_vertex))
            edges.append((next_vertex, v))
            next_vertex += 1
        assert not is_planar(edges, num_vertices=next_vertex)

    def test_large_planar_grid(self):
        # A 12 x 12 grid graph is planar.
        def node(i, j):
            return i * 12 + j

        edges = []
        for i in range(12):
            for j in range(12):
                if i + 1 < 12:
                    edges.append((node(i, j), node(i + 1, j)))
                if j + 1 < 12:
                    edges.append((node(i, j), node(i, j + 1)))
        assert is_planar(edges, num_vertices=144)

    def test_grid_plus_k5_gadget_is_not_planar(self):
        edges = [(i, j) for i, j in K5_EDGES]
        for i in range(5, 50):
            edges.append((i - 1, i))
        assert not is_planar(edges, num_vertices=50)

    def test_accepts_weighted_graph_input(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        assert is_planar(graph)

    def test_edge_list_requires_num_vertices(self):
        with pytest.raises(ValueError):
            is_planar([(0, 1)])

    def test_extra_edge_helper(self):
        edges = K5_EDGES[:-1]
        assert not is_planar_with_extra_edge(5, edges, K5_EDGES[-1])
        assert is_planar_with_extra_edge(5, edges[:-1], edges[-1])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_dense_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 16))
        p = float(rng.uniform(0.2, 0.8))
        edges = [
            (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p
        ]
        assert is_planar(edges, num_vertices=n) == _networkx_planar(edges, n)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sparse_graphs(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(20, 60))
        m = int(rng.integers(n, 3 * n))
        edges = set()
        while len(edges) < m:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        edges = sorted(edges)
        assert is_planar(edges, num_vertices=n) == _networkx_planar(edges, n)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_property_random_graphs(self, data):
        n = data.draw(st.integers(min_value=4, max_value=12))
        possible = list(itertools.combinations(range(n), 2))
        edges = data.draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
        assert is_planar(edges, num_vertices=n) == _networkx_planar(edges, n)


class TestTMFGPlanarity:
    @pytest.mark.parametrize("prefix", [1, 5, 25])
    def test_tmfg_output_is_planar(self, small_matrices, prefix):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=False)
        assert is_planar(result.graph)
        assert _networkx_planar([(u, v) for u, v, _ in result.graph.edges()], similarity.shape[0])

    def test_tmfg_plus_any_edge_is_not_planar(self, small_tmfg):
        # The TMFG is maximal planar: adding any missing edge breaks planarity.
        graph = small_tmfg.graph
        edges = [(u, v) for u, v, _ in graph.edges()]
        n = graph.num_vertices
        missing = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not graph.has_edge(u, v)
        ][:10]
        for extra in missing:
            assert not is_planar_with_extra_edge(n, edges, extra)
