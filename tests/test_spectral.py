"""Tests for the spectral-embedding k-means baseline (K-MEANS-S)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.spectral import knn_affinity, spectral_embedding, spectral_kmeans
from repro.datasets.synthetic import make_gaussian_blobs
from repro.metrics.ari import adjusted_rand_index


@pytest.fixture(scope="module")
def blobs():
    return make_gaussian_blobs(
        num_objects=120, num_features=5, num_classes=3, separation=6.0, noise=0.8, seed=7
    )


class TestAffinity:
    def test_symmetric(self, blobs):
        affinity = knn_affinity(blobs.data, 8)
        np.testing.assert_array_equal(affinity, affinity.T)

    def test_zero_diagonal(self, blobs):
        affinity = knn_affinity(blobs.data, 8)
        assert np.all(np.diag(affinity) == 0.0)

    def test_minimum_degree_is_k(self, blobs):
        k = 6
        affinity = knn_affinity(blobs.data, k)
        assert np.all(affinity.sum(axis=1) >= k)

    def test_invalid_neighbor_count_rejected(self, blobs):
        with pytest.raises(ValueError):
            knn_affinity(blobs.data, 0)
        with pytest.raises(ValueError):
            knn_affinity(blobs.data, blobs.data.shape[0])


class TestEmbedding:
    def test_shape(self, blobs):
        embedding = spectral_embedding(blobs.data, num_components=3, num_neighbors=8)
        assert embedding.shape == (blobs.data.shape[0], 3)

    def test_rows_are_unit_norm(self, blobs):
        embedding = spectral_embedding(blobs.data, num_components=3, num_neighbors=8)
        norms = np.linalg.norm(embedding, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_well_separated_classes_are_separated_in_embedding(self, blobs):
        embedding = spectral_embedding(blobs.data, num_components=3, num_neighbors=8)
        # Average within-class distance should be much smaller than
        # between-class distance in the embedded space.
        within = []
        between = []
        for i in range(0, 120, 7):
            for j in range(i + 1, 120, 7):
                distance = np.linalg.norm(embedding[i] - embedding[j])
                if blobs.labels[i] == blobs.labels[j]:
                    within.append(distance)
                else:
                    between.append(distance)
        assert np.mean(within) < 0.5 * np.mean(between)


class TestSpectralKMeans:
    def test_recovers_blobs(self, blobs):
        result = spectral_kmeans(blobs.data, 3, num_neighbors=8, seed=0)
        assert adjusted_rand_index(blobs.labels, result.labels) > 0.9

    def test_sensitive_to_neighbor_count(self, blobs):
        # The paper's Fig. 9 point: quality varies with beta.  We only check
        # the sweep runs and produces a spread of scores.
        scores = [
            adjusted_rand_index(
                blobs.labels,
                spectral_kmeans(blobs.data, 3, num_neighbors=beta, seed=0).labels,
            )
            for beta in (2, 8, 40)
        ]
        assert len(scores) == 3
        assert max(scores) <= 1.0
