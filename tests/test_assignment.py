"""Tests for the DBHT vertex assignment (Lines 1-23 of Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import assign_vertices
from repro.core.direction import compute_directions
from repro.core.tmfg import construct_tmfg
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.weighted_graph import WeightedGraph

from tests.conftest import random_similarity_matrix


def _prepare(similarity, dissimilarity, prefix=1):
    tmfg = construct_tmfg(similarity, prefix=prefix)
    directions = compute_directions(tmfg.bubble_tree, tmfg.graph)
    distance_graph = WeightedGraph(tmfg.graph.num_vertices)
    for u, v, _ in tmfg.graph.edges():
        distance_graph.add_edge(u, v, float(dissimilarity[u, v]))
    shortest_paths = all_pairs_shortest_paths(distance_graph)
    assignment = assign_vertices(
        tmfg.bubble_tree, directions, similarity, shortest_paths
    )
    return tmfg, directions, shortest_paths, assignment


class TestAssignmentStructure:
    @pytest.mark.parametrize("prefix", [1, 8])
    def test_every_vertex_gets_a_group_and_bubble(self, small_matrices, prefix):
        similarity, dissimilarity = small_matrices
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity, prefix)
        assert np.all(assignment.group >= 0)
        assert np.all(assignment.bubble >= 0)
        assert len(assignment.group) == similarity.shape[0]

    def test_groups_are_converging_bubbles(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        converging = set(directions.converging_bubbles(tmfg.bubble_tree))
        assert set(np.unique(assignment.group)) <= converging
        assert set(assignment.converging_bubbles) == converging

    def test_bubble_assignment_contains_the_vertex(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, _, _, assignment = _prepare(similarity, dissimilarity)
        tree = tmfg.bubble_tree
        for vertex in range(similarity.shape[0]):
            bubble = tree.bubble(int(assignment.bubble[vertex]))
            assert vertex in bubble.vertices

    def test_directly_assigned_vertices_are_in_their_converging_bubble(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, _, _, assignment = _prepare(similarity, dissimilarity)
        tree = tmfg.bubble_tree
        for vertex in range(similarity.shape[0]):
            if assignment.assigned_directly[vertex]:
                bubble = tree.bubble(int(assignment.group[vertex]))
                assert vertex in bubble.vertices

    def test_directly_assigned_iff_member_of_a_converging_bubble(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        tree = tmfg.bubble_tree
        converging = set(directions.converging_bubbles(tree))
        member_of_converging = set()
        for bubble_id in converging:
            member_of_converging |= set(tree.bubble(bubble_id).vertices)
        for vertex in range(similarity.shape[0]):
            assert assignment.assigned_directly[vertex] == (vertex in member_of_converging)

    def test_chi_assignment_maximises_attachment(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        tree = tmfg.bubble_tree
        converging = directions.converging_bubbles(tree)
        for vertex in range(similarity.shape[0]):
            if not assignment.assigned_directly[vertex]:
                continue
            scores = {}
            for bubble_id in converging:
                members = tree.bubble(bubble_id).vertices
                if vertex in members:
                    scores[bubble_id] = sum(
                        similarity[vertex, u] for u in members if u != vertex
                    )
            chosen = int(assignment.group[vertex])
            assert scores[chosen] == pytest.approx(max(scores.values()))

    def test_indirect_assignment_uses_reachable_bubble(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        tree = tmfg.bubble_tree
        reach = directions.reachable_converging_bubbles(tree)
        for vertex in range(similarity.shape[0]):
            if assignment.assigned_directly[vertex]:
                continue
            reachable = set()
            for bubble_id in tree.bubbles_of_vertex(vertex):
                reachable |= reach[bubble_id]
            # The chosen group must be reachable whenever any reachable
            # converging bubble has directly-attached vertices.
            if reachable:
                assert int(assignment.group[vertex]) in reachable

    def test_subgroups_partition_the_vertices(self, medium_matrices):
        similarity, dissimilarity = medium_matrices
        _, _, _, assignment = _prepare(similarity, dissimilarity, prefix=5)
        subgroups = assignment.subgroups()
        all_vertices = sorted(v for members in subgroups.values() for v in members)
        assert all_vertices == list(range(similarity.shape[0]))

    def test_groups_partition_the_vertices(self, medium_matrices):
        similarity, dissimilarity = medium_matrices
        _, _, _, assignment = _prepare(similarity, dissimilarity, prefix=5)
        groups = assignment.groups()
        all_vertices = sorted(v for members in groups.values() for v in members)
        assert all_vertices == list(range(similarity.shape[0]))


class TestSmallCases:
    def test_four_vertices_single_bubble(self):
        similarity = random_similarity_matrix(4, seed=0)
        dissimilarity = np.abs(similarity.max() - similarity)
        np.fill_diagonal(dissimilarity, 0.0)
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        assert tmfg.bubble_tree.num_bubbles == 1
        assert set(np.unique(assignment.group)) == {0}
        assert set(np.unique(assignment.bubble)) == {0}

    def test_five_vertices_two_bubbles(self):
        similarity = random_similarity_matrix(5, seed=1)
        dissimilarity = np.abs(similarity.max() - similarity)
        np.fill_diagonal(dissimilarity, 0.0)
        tmfg, directions, _, assignment = _prepare(similarity, dissimilarity)
        assert tmfg.bubble_tree.num_bubbles == 2
        assert np.all(assignment.group >= 0)
