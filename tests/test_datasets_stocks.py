"""Tests for the synthetic stock market generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.similarity import correlation_matrix, detrended_log_returns
from repro.datasets.stocks import (
    ICB_INDUSTRIES,
    cluster_sector_counts,
    generate_stock_market,
    market_cap_by_group,
)


@pytest.fixture(scope="module")
def market():
    return generate_stock_market(num_stocks=120, num_days=200, seed=3)


class TestGenerator:
    def test_shapes(self, market):
        assert market.prices.shape == (120, 200)
        assert market.sectors.shape == (120,)
        assert market.market_caps.shape == (120,)
        assert len(market.tickers) == 120

    def test_eleven_sectors_all_present(self, market):
        assert len(ICB_INDUSTRIES) == 11
        assert set(np.unique(market.sectors)) == set(range(11))

    def test_prices_are_positive(self, market):
        assert np.all(market.prices > 0)

    def test_market_caps_are_positive(self, market):
        assert np.all(market.market_caps > 0)

    def test_deterministic_for_seed(self):
        a = generate_stock_market(num_stocks=60, num_days=100, seed=7)
        b = generate_stock_market(num_stocks=60, num_days=100, seed=7)
        np.testing.assert_array_equal(a.prices, b.prices)
        np.testing.assert_array_equal(a.sectors, b.sectors)

    def test_too_few_stocks_rejected(self):
        with pytest.raises(ValueError):
            generate_stock_market(num_stocks=10, num_days=100)

    def test_sector_name_lookup(self, market):
        assert market.sector_name(0) in {name for _, name in ICB_INDUSTRIES}

    def test_intra_sector_correlation_exceeds_inter_sector(self, market):
        returns = detrended_log_returns(market.prices)
        correlation = correlation_matrix(returns)
        same = []
        different = []
        for i in range(0, 120, 2):
            for j in range(i + 1, 120, 2):
                if market.sectors[i] == market.sectors[j]:
                    same.append(correlation[i, j])
                else:
                    different.append(correlation[i, j])
        assert np.mean(same) > np.mean(different) + 0.05


class TestAnalysisHelpers:
    def test_cluster_sector_counts_shape(self, market):
        labels = np.arange(120) % 5
        counts = cluster_sector_counts(labels, market.sectors)
        assert counts.shape == (5, 11)
        assert counts.sum() == 120

    def test_cluster_sector_counts_mismatched_lengths_rejected(self, market):
        with pytest.raises(ValueError):
            cluster_sector_counts([0, 1], market.sectors)

    def test_market_cap_by_group_partitions_all_stocks(self, market):
        groups = market_cap_by_group(market.market_caps, market.sectors)
        assert sum(len(values) for values in groups.values()) == 120

    def test_market_cap_by_group_values_match(self, market):
        groups = market_cap_by_group(market.market_caps, market.sectors)
        for sector, caps in groups.items():
            expected = market.market_caps[market.sectors == sector]
            np.testing.assert_array_equal(np.sort(caps), np.sort(expected))
