"""Tests for the synthetic stock market generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.similarity import correlation_matrix, detrended_log_returns
from repro.datasets.stocks import (
    ICB_INDUSTRIES,
    cluster_sector_counts,
    generate_regime_switching_stream,
    generate_stock_market,
    market_cap_by_group,
)


@pytest.fixture(scope="module")
def market():
    return generate_stock_market(num_stocks=120, num_days=200, seed=3)


class TestGenerator:
    def test_shapes(self, market):
        assert market.prices.shape == (120, 200)
        assert market.sectors.shape == (120,)
        assert market.market_caps.shape == (120,)
        assert len(market.tickers) == 120

    def test_eleven_sectors_all_present(self, market):
        assert len(ICB_INDUSTRIES) == 11
        assert set(np.unique(market.sectors)) == set(range(11))

    def test_prices_are_positive(self, market):
        assert np.all(market.prices > 0)

    def test_market_caps_are_positive(self, market):
        assert np.all(market.market_caps > 0)

    def test_deterministic_for_seed(self):
        a = generate_stock_market(num_stocks=60, num_days=100, seed=7)
        b = generate_stock_market(num_stocks=60, num_days=100, seed=7)
        np.testing.assert_array_equal(a.prices, b.prices)
        np.testing.assert_array_equal(a.sectors, b.sectors)

    def test_too_few_stocks_rejected(self):
        with pytest.raises(ValueError):
            generate_stock_market(num_stocks=10, num_days=100)

    def test_sector_name_lookup(self, market):
        assert market.sector_name(0) in {name for _, name in ICB_INDUSTRIES}

    def test_intra_sector_correlation_exceeds_inter_sector(self, market):
        returns = detrended_log_returns(market.prices)
        correlation = correlation_matrix(returns)
        same = []
        different = []
        for i in range(0, 120, 2):
            for j in range(i + 1, 120, 2):
                if market.sectors[i] == market.sectors[j]:
                    same.append(correlation[i, j])
                else:
                    different.append(correlation[i, j])
        assert np.mean(same) > np.mean(different) + 0.05


class TestAnalysisHelpers:
    def test_cluster_sector_counts_shape(self, market):
        labels = np.arange(120) % 5
        counts = cluster_sector_counts(labels, market.sectors)
        assert counts.shape == (5, 11)
        assert counts.sum() == 120

    def test_cluster_sector_counts_mismatched_lengths_rejected(self, market):
        with pytest.raises(ValueError):
            cluster_sector_counts([0, 1], market.sectors)

    def test_market_cap_by_group_partitions_all_stocks(self, market):
        groups = market_cap_by_group(market.market_caps, market.sectors)
        assert sum(len(values) for values in groups.values()) == 120

    def test_market_cap_by_group_values_match(self, market):
        groups = market_cap_by_group(market.market_caps, market.sectors)
        for sector, caps in groups.items():
            expected = market.market_caps[market.sectors == sector]
            np.testing.assert_array_equal(np.sort(caps), np.sort(expected))


class TestRegimeSwitchingStream:
    @pytest.fixture(scope="class")
    def stream(self):
        return generate_regime_switching_stream(
            num_stocks=66, num_days=450, num_regimes=3, regime_length=150, seed=5
        )

    def test_shapes_and_regime_schedule(self, stream):
        assert stream.returns.shape == (66, 450)
        assert stream.regimes.shape == (450,)
        assert stream.num_stocks == 66 and stream.num_days == 450
        assert stream.num_regimes == 3
        assert stream.sector_groups.shape == (3, len(ICB_INDUSTRIES))
        np.testing.assert_array_equal(stream.regime_boundaries(), [150, 300])
        np.testing.assert_array_equal(np.unique(stream.regimes), [0, 1, 2])

    def test_deterministic_for_fixed_seed(self, stream):
        again = generate_regime_switching_stream(
            num_stocks=66, num_days=450, num_regimes=3, regime_length=150, seed=5
        )
        np.testing.assert_array_equal(stream.returns, again.returns)
        np.testing.assert_array_equal(stream.sector_groups, again.sector_groups)

    def test_correlation_structure_changes_across_regimes(self, stream):
        first = correlation_matrix(stream.returns[:, stream.regimes == 0])
        second = correlation_matrix(stream.returns[:, stream.regimes == 1])
        off_diagonal = ~np.eye(66, dtype=bool)
        assert np.abs(first - second)[off_diagonal].mean() > 0.05

    def test_same_group_stocks_correlate_more_within_regime(self, stream):
        for regime in range(stream.num_regimes):
            correlation = correlation_matrix(
                stream.returns[:, stream.regimes == regime]
            )
            groups = stream.sector_groups[regime][stream.sectors]
            same = np.equal.outer(groups, groups)
            np.fill_diagonal(same, False)
            off_diagonal = ~np.eye(len(groups), dtype=bool)
            assert correlation[same].mean() > correlation[~same & off_diagonal].mean() + 0.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_regime_switching_stream(num_stocks=10)
        with pytest.raises(ValueError):
            generate_regime_switching_stream(num_regimes=0)
        with pytest.raises(ValueError):
            generate_regime_switching_stream(regime_length=1)
        with pytest.raises(ValueError):
            generate_regime_switching_stream(group_coupling=1.5)
