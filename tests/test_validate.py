"""Tests for the pipeline-output validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import tmfg_dbht
from repro.core.tmfg import construct_tmfg
from repro.core.validate import (
    ValidationError,
    validate_dbht_result,
    validate_pipeline_result,
    validate_tmfg_result,
)


@pytest.fixture(scope="module")
def pipeline_result(small_matrices_session):
    similarity, dissimilarity = small_matrices_session
    return tmfg_dbht(similarity, dissimilarity, prefix=6)


@pytest.fixture(scope="module")
def small_matrices_session():
    from repro.datasets.similarity import similarity_and_dissimilarity
    from repro.datasets.synthetic import make_time_series_dataset

    dataset = make_time_series_dataset(50, 40, 3, noise=1.0, seed=19)
    return similarity_and_dissimilarity(dataset.data)


class TestValidTMFG:
    def test_valid_tmfg_passes(self, small_matrices_session):
        similarity, _ = small_matrices_session
        tmfg = construct_tmfg(similarity, prefix=3)
        checks = validate_tmfg_result(tmfg)
        assert "edge count is 3n-6" in checks
        assert "bubble tree invariants hold" in checks

    def test_missing_edge_detected(self, small_matrices_session):
        similarity, _ = small_matrices_session
        tmfg = construct_tmfg(similarity, prefix=3)
        # Corrupt the result: drop an edge by rebuilding the graph.
        from repro.graph.weighted_graph import WeightedGraph

        smaller = WeightedGraph(tmfg.graph.num_vertices)
        edges = list(tmfg.graph.edges())[:-1]
        for u, v, w in edges:
            smaller.add_edge(u, v, w)
        tmfg.graph = smaller
        with pytest.raises(ValidationError):
            validate_tmfg_result(tmfg)

    def test_duplicated_insertion_detected(self, small_matrices_session):
        similarity, _ = small_matrices_session
        tmfg = construct_tmfg(similarity, prefix=3)
        tmfg.insertion_order[0] = tmfg.insertion_order[1]
        with pytest.raises(ValidationError):
            validate_tmfg_result(tmfg)


class TestValidDBHT:
    def test_valid_result_passes(self, pipeline_result):
        checks = validate_dbht_result(pipeline_result.dbht)
        assert "dendrogram is complete" in checks
        assert "groups are converging bubbles" in checks

    def test_leaf_count_mismatch_detected(self, pipeline_result):
        with pytest.raises(ValidationError):
            validate_dbht_result(pipeline_result.dbht, num_vertices=3)

    def test_non_monotone_heights_detected(self, pipeline_result):
        dendrogram = pipeline_result.dendrogram
        root = dendrogram.root
        original = dendrogram.node(root).height
        try:
            dendrogram.set_height(root, -1.0)
            with pytest.raises(ValidationError):
                validate_dbht_result(pipeline_result.dbht)
        finally:
            dendrogram.set_height(root, original)

    def test_bad_group_assignment_detected(self, pipeline_result):
        assignment = pipeline_result.dbht.assignment
        original = int(assignment.group[0])
        try:
            assignment.group[0] = -1
            with pytest.raises(ValidationError):
                validate_dbht_result(pipeline_result.dbht)
        finally:
            assignment.group[0] = original


class TestPipelineValidation:
    def test_full_pipeline_passes(self, pipeline_result):
        checks = validate_pipeline_result(pipeline_result)
        assert "step timings cover all phases" in checks
        assert len(checks) >= 7

    def test_missing_step_timing_detected(self, pipeline_result):
        removed = pipeline_result.step_seconds.pop("apsp")
        try:
            with pytest.raises(ValidationError):
                validate_pipeline_result(pipeline_result)
        finally:
            pipeline_result.step_seconds["apsp"] = removed
