"""Tests for the observability layer: tracing, the event log, Prometheus
exposition, and trace reconstruction.

Coverage runs bottom-up: tracer/span mechanics in isolation, the
JSON-lines event log and its schema validation, the Prometheus renderer
and fleet merge, then integration through a live single server (echo
block, byte-identity, text exposition), the ``repro trace`` CLI, a real
traced two-replica fleet, and trace propagation across a failover.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np
import pytest

from repro.api import ClusteringConfig
from repro.cache import clear_result_caches
from repro.cli import main as cli_main
from repro.obs.events import (
    TraceEventLog,
    iter_trace_events,
    load_trace_events,
    validate_event,
)
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    merge_histogram_dicts,
    merge_metrics_documents,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ECHO_HEADER,
    TRACE_ID_HEADER,
    Tracer,
    current_span,
    new_span_id,
    new_trace_id,
    trace_span,
    valid_trace_id,
)
from repro.obs.traceview import (
    format_kind_table,
    format_waterfall,
    group_traces,
    kind_breakdown,
    trace_summary,
)
from repro.serve import ServeClient, build_fleet
from repro.serve.fleet.ring import rendezvous_rank, request_affinity_key
from repro.serve.fleet.router import FleetRouter
from repro.serve.fleet.supervisor import ReplicaInfo
from repro.serve.server import ClusteringServer


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_caches()
    yield
    clear_result_caches()


def _matrix(seed: int = 0, n: int = 16):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 40))


def _collecting_tracer():
    """A tracer whose closed spans land in the returned list."""
    tracer = Tracer()
    closed = []
    tracer.add_sink(lambda span: closed.append(span.to_dict()))
    return tracer, closed


# ---------------------------------------------------------------------------
# Tracer / span mechanics
# ---------------------------------------------------------------------------


class TestTracer:
    def test_ids_are_well_formed(self):
        assert valid_trace_id(new_trace_id()) is not None
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        assert new_trace_id() != new_trace_id()

    def test_valid_trace_id_rejects_garbage(self):
        assert valid_trace_id(None) is None
        assert valid_trace_id("") is None
        assert valid_trace_id("has space") is None
        assert valid_trace_id("x" * 10) is None
        assert valid_trace_id("\r\ninjected") is None
        assert valid_trace_id("DEADBEEF") == "deadbeef"
        assert valid_trace_id("a-b-c") == "a-b-c"

    def test_trace_span_is_noop_without_ambient_trace(self):
        assert current_span() is None
        span = trace_span("anything", key="value")
        assert span is NOOP_SPAN
        # Every operation is swallowed without error.
        with span:
            span.set_attribute("k", 1)
            span.set_error("nope")
            assert span.child("c") is span

    def test_ambient_nesting_builds_a_tree(self):
        tracer, closed = _collecting_tracer()
        with tracer.start_span("root") as root:
            assert current_span() is root
            with trace_span("child", depth=1) as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with trace_span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
        assert current_span() is None
        assert [event["kind"] for event in closed] == ["grandchild", "child", "root"]
        assert len({event["trace_id"] for event in closed}) == 1

    def test_exception_flags_error_and_still_closes(self):
        tracer, closed = _collecting_tracer()
        with pytest.raises(RuntimeError):
            with tracer.start_span("boom"):
                raise RuntimeError("kaput")
        assert current_span() is None
        (event,) = closed
        assert event["error"] is True
        assert event["attributes"]["exception"] == "RuntimeError"

    def test_end_is_idempotent(self):
        tracer, closed = _collecting_tracer()
        span = tracer.start_span("once")
        span.end()
        span.end()
        assert len(closed) == 1

    def test_emit_records_premeasured_span(self):
        tracer, closed = _collecting_tracer()
        tracer.emit(
            "synthesized",
            trace_id="feedface00000001",
            parent_id="aabbccdd",
            duration_seconds=0.25,
            started_at=1000.0,
            batch_size=4,
        )
        (event,) = closed
        assert event["kind"] == "synthesized"
        assert event["duration_ms"] == pytest.approx(250.0)
        assert event["start_unix"] == pytest.approx(1000.0)
        assert event["attributes"]["batch_size"] == 4

    def test_collect_drain_discard(self):
        tracer, _ = _collecting_tracer()
        tracer.collect("aaaa")
        with tracer.start_span("kept", trace_id="aaaa"):
            pass
        with tracer.start_span("uncollected", trace_id="bbbb"):
            pass
        drained = tracer.drain("aaaa")
        assert [event["kind"] for event in drained] == ["kept"]
        assert tracer.drain("aaaa") == []  # drained once, gone
        tracer.collect("cccc")
        tracer.discard("cccc")
        with tracer.start_span("late", trace_id="cccc"):
            pass
        assert tracer.drain("cccc") == []

    def test_sample_rate_validation_and_decisions(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        assert Tracer(sample_rate=1.0).should_sample() is True
        assert Tracer(sample_rate=0.0).should_sample() is False


class TestInstrumentationSites:
    def test_estimator_fit_emits_library_spans(self):
        from repro.api.estimators import make_estimator

        tracer, closed = _collecting_tracer()
        with tracer.start_span("root"):
            estimator = make_estimator(
                "tmfg-dbht", ClusteringConfig(num_clusters=2, cache=True)
            )
            estimator.fit(_matrix(n=12))
        kinds = {event["kind"] for event in closed}
        assert "estimator.fit" in kinds
        assert "kernel.apsp" in kinds
        assert "cache.get" in kinds and "cache.put" in kinds
        # Everything shares the root's trace.
        assert len({event["trace_id"] for event in closed}) == 1

    def test_untraced_fit_emits_nothing(self):
        from repro.api.estimators import make_estimator

        _tracer, closed = _collecting_tracer()
        make_estimator("tmfg-dbht", ClusteringConfig(num_clusters=2)).fit(_matrix(n=12))
        assert closed == []

    def test_shm_share_span(self):
        from repro.parallel import shm

        if not shm.shared_memory_available():
            pytest.skip("no usable shared memory on this platform")
        tracer, closed = _collecting_tracer()
        with tracer.start_span("root"):
            with shm.SharedMatrixArena() as arena:
                arena.share(np.zeros((4, 4)))
        share_events = [e for e in closed if e["kind"] == "shm.share"]
        assert len(share_events) == 1
        assert share_events[0]["attributes"]["nbytes"] == 128


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = TraceEventLog(path)
        tracer = Tracer()
        tracer.add_sink(log.record)
        with tracer.start_span("outer", n=3):
            with trace_span("inner"):
                pass
        log.close()
        events = load_trace_events(path)
        assert [event["kind"] for event in events] == ["inner", "outer"]
        assert events[1]["attributes"] == {"n": 3}
        assert log.written == 2 and log.dropped == 0

    def test_validate_event_names_the_breach(self):
        good = {
            "schema": 1, "trace_id": "a", "span_id": "b", "parent_id": None,
            "kind": "k", "start_unix": 0.0, "duration_ms": 1.0, "error": False,
            "pid": 1, "attributes": {},
        }
        assert validate_event(dict(good)) == good
        with pytest.raises(ValueError, match="missing field 'kind'"):
            validate_event({k: v for k, v in good.items() if k != "kind"})
        with pytest.raises(ValueError, match="field 'duration_ms' has type"):
            validate_event({**good, "duration_ms": "fast"})
        with pytest.raises(ValueError, match="schema 99 unsupported"):
            validate_event({**good, "schema": 99})
        with pytest.raises(ValueError, match="empty kind"):
            validate_event({**good, "kind": ""})
        with pytest.raises(ValueError, match="must be an object"):
            validate_event([good])

    def test_reader_reports_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "k"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: .*missing field"):
            list(iter_trace_events(str(path)))

    def test_rate_limit_drops_beyond_budget(self, tmp_path):
        path = str(tmp_path / "capped.jsonl")
        log = TraceEventLog(path, rate_limit=3)
        tracer = Tracer()
        tracer.add_sink(log.record)
        for _ in range(10):
            with tracer.start_span("tick"):
                pass
        log.close()
        # All 10 land in the same wall-clock second in practice; allow the
        # window to roll once without weakening the bound.
        assert log.dropped >= 4
        assert log.written + log.dropped == 10
        assert len(load_trace_events(path)) == log.written

    def test_unwritable_path_degrades_to_dropped_counter(self, tmp_path):
        log = TraceEventLog(str(tmp_path / "no" / "such" / "dir" / "x.jsonl"))
        tracer = Tracer()
        tracer.add_sink(log.record)
        with tracer.start_span("tick"):
            pass  # must not raise
        assert log.dropped == 1 and log.written == 0


# ---------------------------------------------------------------------------
# Prometheus rendering and merging
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_wants_prometheus_negotiation(self):
        assert wants_prometheus("/metrics?format=prometheus", None)
        assert wants_prometheus("/metrics?format=openmetrics", "application/json")
        assert not wants_prometheus("/metrics?format=json", "text/plain")
        assert not wants_prometheus("/metrics", None)
        assert wants_prometheus("/metrics", "text/plain")
        assert not wants_prometheus("/metrics", "application/json, text/plain")

    def test_merge_histograms_is_bucketwise_exact(self):
        a = {"count": 2, "sum_ms": 30.0, "max_ms": 20.0,
             "bucket_bounds_ms": [10.0, 100.0], "bucket_counts": [1, 1]}
        b = {"count": 1, "sum_ms": 5.0, "max_ms": 5.0,
             "bucket_bounds_ms": [10.0, 100.0], "bucket_counts": [1, 0]}
        merged = merge_histogram_dicts([a, b])
        assert merged["count"] == 3
        assert merged["sum_ms"] == pytest.approx(35.0)
        assert merged["max_ms"] == pytest.approx(20.0)
        assert merged["bucket_counts"] == [2, 1]
        with pytest.raises(ValueError, match="different bucket bounds"):
            merge_histogram_dicts([a, {**b, "bucket_bounds_ms": [1.0]}])

    def test_render_has_one_type_line_per_family(self):
        payload = {
            "uptime_seconds": 1.5,
            "draining": False,
            "queue_depth": 0,
            "requests_total": {"POST /cluster": 4, "GET /metrics": 1},
            "responses_total": {"200": 5},
            "errors_total": 0,
            "rejected_total": 0,
            "latency": {
                "request": {"count": 4, "sum_ms": 40.0, "max_ms": 15.0,
                            "bucket_bounds_ms": [10.0, 100.0],
                            "bucket_counts": [2, 2]},
            },
            "spans": {
                "estimator.fit": {"count": 2, "sum_ms": 20.0, "max_ms": 12.0,
                                  "bucket_bounds_ms": [10.0, 100.0],
                                  "bucket_counts": [1, 1]},
            },
            "batching": {"batches": 3, "largest_batch": 2},
            "cache": {"hits": 2, "misses": 2, "hit_rate": 0.5},
        }
        text = render_prometheus(payload)
        assert text.endswith("\n")
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert len(families) == len(set(families))
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert 'repro_requests_total{route="POST /cluster"} 4' in text
        # Cumulative buckets in seconds, closed with +Inf == count.
        assert 'repro_request_latency_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_request_latency_seconds_bucket{le="+Inf"} 4' in text
        assert 'repro_span_duration_seconds_bucket{kind="estimator.fit",le="+Inf"} 2' in text
        assert "repro_cache_hits_total 2" in text

    def test_merge_metrics_documents_sums_replicas(self):
        histogram = {"count": 1, "sum_ms": 10.0, "max_ms": 10.0,
                     "bucket_bounds_ms": [100.0], "bucket_counts": [1]}
        doc = {
            "queue_depth": 1,
            "requests_total": {"POST /cluster": 2},
            "responses_total": {"200": 2},
            "errors_total": 1,
            "rejected_total": 0,
            "latency": {"request": dict(histogram)},
            "spans": {"serve.queue": dict(histogram)},
            "batching": {"batches": 1},
            "cache": {"hits": 1},
        }
        merged = merge_metrics_documents([doc, json.loads(json.dumps(doc))])
        assert merged["replica_count"] == 2
        assert merged["requests_total"]["POST /cluster"] == 4
        assert merged["errors_total"] == 2
        assert merged["latency"]["request"]["count"] == 2
        assert merged["spans"]["serve.queue"]["bucket_counts"] == [2]
        assert merged["cache"]["hits"] == 2
        assert merge_metrics_documents([{}])["cache"] is None


# ---------------------------------------------------------------------------
# Trace reconstruction / rendering
# ---------------------------------------------------------------------------


def _event(kind, trace_id, span_id, parent_id=None, start=0.0, dur=1.0,
           error=False, pid=1):
    return {
        "schema": 1, "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "kind": kind, "start_unix": start,
        "duration_ms": dur, "error": error, "pid": pid, "attributes": {},
    }


class TestTraceview:
    def test_group_and_summarize(self):
        events = [
            _event("request", "t1", "a", start=100.0, dur=10.0),
            _event("fit", "t1", "b", parent_id="a", start=100.002, dur=6.0, pid=2),
            _event("request", "t2", "c", start=50.0, dur=2.0, error=True),
        ]
        traces = group_traces(events)
        assert list(traces) == ["t2", "t1"]  # oldest first
        summary = trace_summary("t1", traces["t1"])
        assert summary["spans"] == 2
        assert summary["root_kinds"] == ["request"]
        assert summary["pids"] == [1, 2]
        assert summary["duration_ms"] == pytest.approx(10.0)
        assert trace_summary("t2", traces["t2"])["errors"] == 1

    def test_waterfall_indents_children_and_flags_errors(self):
        events = [
            _event("server.request", "t1", "a", start=100.0, dur=10.0),
            _event("serve.batch_fit", "t1", "b", parent_id="a",
                   start=100.001, dur=8.0),
            _event("estimator.fit", "t1", "c", parent_id="b",
                   start=100.002, dur=7.0, error=True),
            _event("orphan.kind", "t1", "d", parent_id="gone",
                   start=100.003, dur=1.0),
        ]
        text = format_waterfall("t1", events)
        lines = text.splitlines()
        assert "trace t1" in lines[0] and "spans=4" in lines[0]
        assert any(line.lstrip().startswith("server.request") for line in lines)
        assert any("    estimator.fit" in line and line.rstrip().endswith("!")
                   for line in lines)
        assert any(line.lstrip().startswith("orphan.kind") for line in lines)
        assert all("|" in line for line in lines[1:])  # every row has a bar

    def test_kind_breakdown_sorted_by_total(self):
        events = [
            _event("fast", "t", "a", dur=1.0),
            _event("slow", "t", "b", dur=100.0),
            _event("fast", "t", "c", dur=2.0, error=True),
        ]
        rows = kind_breakdown(events)
        assert [row["kind"] for row in rows] == ["slow", "fast"]
        fast = rows[1]
        assert fast["count"] == 2 and fast["errors"] == 1
        assert fast["mean_ms"] == pytest.approx(1.5)
        table = format_kind_table(rows)
        assert "slow" in table and "fast" in table
        assert format_kind_table([]) == "no spans"


# ---------------------------------------------------------------------------
# Single-server integration
# ---------------------------------------------------------------------------


class TestServerTracing:
    def _start(self, **kwargs):
        server = ClusteringServer(
            port=0,
            default_config=ClusteringConfig(cache=True, num_clusters=3, prefix=2),
            max_wait_ms=5.0,
            **kwargs,
        )
        return server, server.start_in_background()

    def test_echoed_trace_covers_the_request_path(self, tmp_path):
        log_path = str(tmp_path / "trace.jsonl")
        _server, handle = self._start(trace_log=log_path)
        series = _matrix()
        try:
            with ServeClient(handle.host, handle.port) as client:
                traced = client.cluster(series, trace=True)
                untraced = client.cluster(_matrix(seed=1))
        finally:
            handle.stop()
        assert "trace" not in untraced
        block = traced["trace"]
        assert valid_trace_id(block["trace_id"])
        kinds = [span["kind"] for span in block["spans"]]
        for kind in ("serve.queue", "serve.batch_fit", "batch.cluster_many",
                     "estimator.fit", "cache.get", "cache.put"):
            assert kind in kinds, f"missing {kind} in {kinds}"
        assert all(span["trace_id"] == block["trace_id"] for span in block["spans"])
        # The log additionally holds the server.request root (it closes
        # after the envelope is rendered, so it is log-only).
        events = load_trace_events(log_path)
        log_kinds = {e["kind"] for e in events if e["trace_id"] == block["trace_id"]}
        assert "server.request" in log_kinds
        root = next(e for e in events if e["kind"] == "server.request"
                    and e["trace_id"] == block["trace_id"])
        assert root["span_id"] == block["root_span_id"]
        assert root["attributes"]["status"] == 200
        # Child work is contained in the request observation (epsilon for
        # rounding; queue+fit are sequential within the request).
        queue = next(s for s in block["spans"] if s["kind"] == "serve.queue")
        fit = next(s for s in block["spans"] if s["kind"] == "serve.batch_fit")
        assert queue["duration_ms"] + fit["duration_ms"] <= root["duration_ms"] + 50.0

    def test_responses_byte_identical_with_tracing_off_vs_on(self, tmp_path):
        series = _matrix()
        _server, handle = self._start()  # tracing off entirely
        try:
            with ServeClient(handle.host, handle.port) as client:
                plain = client.cluster(series)
        finally:
            handle.stop()
        # Both servers share the process-wide result cache, so the traced
        # server serves the exact stored result: any byte difference below
        # could only come from the tracing layer touching the payload.
        _server2, handle2 = self._start(trace_log=str(tmp_path / "t.jsonl"))
        try:
            with ServeClient(handle2.host, handle2.port) as client:
                on_but_unasked = client.cluster(series)
        finally:
            handle2.stop()
        assert "trace" not in on_but_unasked
        assert json.dumps(plain["result"]) == json.dumps(on_but_unasked["result"])

    def test_prometheus_endpoint_and_span_histograms(self, tmp_path):
        _server, handle = self._start(trace_log=str(tmp_path / "t.jsonl"))
        try:
            with ServeClient(handle.host, handle.port) as client:
                client.cluster(_matrix(), trace=True)
                json_metrics = client.metrics()
                text = client.metrics_prometheus()
        finally:
            handle.stop()
        assert "estimator.fit" in json_metrics["spans"]
        assert json_metrics["spans"]["estimator.fit"]["count"] >= 1
        assert "bucket_counts" in json_metrics["latency"]["request"]
        assert "# TYPE repro_span_duration_seconds histogram" in text
        assert 'repro_span_duration_seconds_bucket{kind="estimator.fit"' in text
        assert "# TYPE repro_request_latency_seconds histogram" in text
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert len(families) == len(set(families))

    def test_client_trace_flag_off_sends_no_headers(self, tmp_path):
        # With no trace log and no client trace id the request must ride
        # the zero-cost path: no span kinds accumulate in the metrics.
        _server, handle = self._start()
        try:
            with ServeClient(handle.host, handle.port) as client:
                client.cluster(_matrix())
                metrics = client.metrics()
        finally:
            handle.stop()
        assert metrics["spans"] == {}


# ---------------------------------------------------------------------------
# `repro trace` CLI
# ---------------------------------------------------------------------------


class TestTraceCli:
    def _write_log(self, tmp_path):
        path = tmp_path / "log.jsonl"
        events = [
            _event("server.request", "t1", "a", start=100.0, dur=10.0),
            _event("estimator.fit", "t1", "b", parent_id="a",
                   start=100.001, dur=8.0),
            _event("server.request", "t2", "c", start=200.0, dur=3.0),
        ]
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events), encoding="utf-8"
        )
        return str(path)

    def test_text_output(self, tmp_path, capsys):
        assert cli_main(["trace", self._write_log(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace t1" in out and "trace t2" in out
        assert "estimator.fit" in out
        assert "3 event(s), 2 trace(s)" in out

    def test_single_trace_and_limit(self, tmp_path, capsys):
        log = self._write_log(tmp_path)
        assert cli_main(["trace", log, "--trace", "t2"]) == 0
        out = capsys.readouterr().out
        assert "trace t2" in out and "trace t1" not in out
        assert cli_main(["trace", log, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        # Most recent trace wins the limit slot.
        assert "trace t2" in out and "trace t1" not in out

    def test_json_output(self, tmp_path, capsys):
        assert cli_main(["trace", self._write_log(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["events"] == 3
        assert {t["trace_id"] for t in document["traces"]} == {"t1", "t2"}
        t1 = next(t for t in document["traces"] if t["trace_id"] == "t1")
        assert t1["spans"] == 2 and len(t1["spans_detail"]) == 2
        assert any(row["kind"] == "estimator.fit" for row in document["kinds"])

    def test_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.jsonl")
        assert cli_main(["trace", missing]) == 2
        log = self._write_log(tmp_path)
        assert cli_main(["trace", log, "--trace", "nope"]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert cli_main(["trace", str(empty)]) == 1
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n", encoding="utf-8")
        assert cli_main(["trace", str(bad)]) == 2


# ---------------------------------------------------------------------------
# Fleet integration: a traced request spans router and replica processes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_fleet(tmp_path_factory):
    """A 2-replica fleet writing all spans to one shared trace log."""
    log_path = str(tmp_path_factory.mktemp("fleet-obs") / "trace.jsonl")
    router = build_fleet(
        2,
        ["--clusters", "2", "--method", "kmeans", "--max-wait-ms", "2",
         "--trace-log", log_path],
        port=0,
        stagger_seconds=0.05,
        backoff_base_seconds=0.2,
        trace_log=log_path,
    )
    handle = router.start_in_background()
    yield router, log_path
    handle.stop()


class TestFleetTracing:
    def test_one_trace_spans_router_and_replica(self, traced_fleet):
        router, log_path = traced_fleet
        with ServeClient("127.0.0.1", router.port) as client:
            client.wait_healthy(60)
            envelope = client.cluster(_matrix(), trace=True)
        block = envelope["trace"]
        trace_id = block["trace_id"]
        events = [e for e in load_trace_events(log_path)
                  if e["trace_id"] == trace_id]
        kinds = {event["kind"] for event in events}
        for kind in ("router.request", "router.attempt", "server.request",
                     "serve.queue", "serve.batch_fit", "batch.cluster_many",
                     "estimator.fit"):
            assert kind in kinds, f"missing {kind} in {sorted(kinds)}"
        # Two processes contributed to the one trace.
        assert len({event["pid"] for event in events}) >= 2
        # The replica's request hangs off the router's attempt span.
        attempt = next(e for e in events if e["kind"] == "router.attempt")
        request = next(e for e in events if e["kind"] == "server.request")
        assert request["parent_id"] == attempt["span_id"]
        root = next(e for e in events if e["kind"] == "router.request")
        assert attempt["parent_id"] == root["span_id"]
        # The hop is contained in the router's observation.
        assert request["duration_ms"] <= root["duration_ms"] + 50.0
        # And `repro trace` can reconstruct the whole thing as one tree.
        waterfall = format_waterfall(trace_id, sorted(
            events, key=lambda event: event["start_unix"]))
        assert "router.request" in waterfall
        assert "  router.attempt" in waterfall

    def test_fleet_prometheus_merges_replicas(self, traced_fleet):
        router, _log_path = traced_fleet
        with ServeClient("127.0.0.1", router.port) as client:
            client.wait_healthy(60)
            client.cluster(_matrix(seed=3))
            # Give the router a scrape cycle to pick up fresh replica stats.
            json_metrics = client.metrics()
            text = client.metrics_prometheus()
        assert json_metrics["fleet"]["workers"] == 2
        assert "# TYPE repro_fleet_workers gauge" in text
        assert "repro_fleet_workers 2" in text
        assert "# TYPE repro_replica_count gauge" in text
        assert "repro_fleet_routed_total{replica=" in text
        families = [line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")]
        assert len(families) == len(set(families))


# ---------------------------------------------------------------------------
# Failover: one trace, two attempts, two replicas
# ---------------------------------------------------------------------------


_CANNED = (
    b"HTTP/1.1 200 OK\r\n"
    b"content-type: application/json\r\n"
    b"content-length: 17\r\n"
    b"connection: close\r\n"
    b"\r\n"
    b'{"canned": true}\n'
)


class _FakeSupervisor:
    """The supervisor surface the router needs, with no real processes."""

    def __init__(self, replicas):
        self.workers = len(replicas)
        self._replicas = list(replicas)

    async def start(self):
        pass

    async def wait_ready(self, count=None, timeout=120.0):
        pass

    async def stop(self):
        pass

    def ready_replicas(self):
        return list(self._replicas)

    @property
    def restarts_total(self):
        return 0

    def status(self):
        return [
            {"id": r.replica_id, "state": "ready", "port": r.port, "pid": r.pid,
             "spawns": 1, "restarts": 0, "last_exit_code": None}
            for r in self._replicas
        ]


class _CannedReplica:
    """A TCP server answering every request with fixed raw HTTP bytes."""

    def __init__(self, raw_response: bytes):
        self.raw_response = raw_response
        self.requests = []
        self._server = socket.create_server(("127.0.0.1", 0))
        self.port = self._server.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                chunks = b""
                conn.settimeout(5.0)
                while b"\r\n\r\n" not in chunks:
                    chunks += conn.recv(65536)
                head, _, rest = chunks.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                while len(rest) < length:
                    rest += conn.recv(65536)
                self.requests.append((head, rest))
                conn.sendall(self.raw_response)

    def close(self):
        self._server.close()


class _DyingReplica:
    """Accepts a connection and slams it shut mid-exchange."""

    def __init__(self):
        self._server = socket.create_server(("127.0.0.1", 0))
        self.port = self._server.getsockname()[1]
        self.connections = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            self.connections += 1
            conn.close()  # the router sees a reset/EOF mid-exchange

    def close(self):
        self._server.close()


def _raw_post(port: int, body: bytes, headers: dict) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=30.0) as conn:
        head = f"POST /cluster HTTP/1.1\r\nhost: x\r\ncontent-length: {len(body)}\r\n"
        for name, value in headers.items():
            head += f"{name}: {value}\r\n"
        conn.sendall(head.encode() + b"\r\n" + body)
        conn.shutdown(socket.SHUT_WR)
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return raw
            raw += chunk


class TestFailoverTracePropagation:
    def test_failover_keeps_one_trace_with_two_attempts(self, tmp_path):
        log_path = str(tmp_path / "failover.jsonl")
        survivor = _CannedReplica(_CANNED)
        dying = _DyingReplica()
        body = b'{"matrix": [[0.0, 1.0], [1.0, 0.0]]}'
        key = request_affinity_key(body, "application/json")
        # Name the dying replica so the ring routes this body to it first.
        first = rendezvous_rank(key, ["r-a", "r-b"])[0]
        replicas = [
            ReplicaInfo(first, dying.port, None),
            ReplicaInfo("r-b" if first == "r-a" else "r-a", survivor.port, None),
        ]
        trace_id = "feedface00000001"
        router = FleetRouter(
            _FakeSupervisor(replicas), port=0, trace_log=log_path
        )
        handle = router.start_in_background()
        try:
            raw = _raw_post(
                handle.port, body,
                {"content-type": "application/json", TRACE_ID_HEADER: trace_id},
            )
            assert raw == _CANNED
            assert router.failovers_total == 1
        finally:
            handle.stop()
            survivor.close()
            dying.close()
        events = load_trace_events(log_path)
        assert events, "router wrote no trace events"
        assert {event["trace_id"] for event in events} == {trace_id}
        attempts = [e for e in events if e["kind"] == "router.attempt"]
        assert len(attempts) == 2
        assert sorted(a["error"] for a in attempts) == [False, True]
        failed = next(a for a in attempts if a["error"])
        succeeded = next(a for a in attempts if not a["error"])
        assert failed["attributes"]["replica"] == first
        assert failed["attributes"]["attempt"] == 1
        assert succeeded["attributes"]["attempt"] == 2
        root = next(e for e in events if e["kind"] == "router.request")
        assert {a["parent_id"] for a in attempts} == {root["span_id"]}
        assert dying.connections == 1
        # The surviving replica saw the continued context: same trace id,
        # re-parented to the second attempt's span.
        head, _body = survivor.requests[0]
        header_text = head.decode().lower()
        assert f"{TRACE_ID_HEADER}: {trace_id}" in header_text
        assert f"{PARENT_SPAN_HEADER}: {succeeded['span_id']}" in header_text

    def test_untraced_failover_writes_nothing(self, tmp_path):
        log_path = str(tmp_path / "silent.jsonl")
        survivor = _CannedReplica(_CANNED)
        router = FleetRouter(
            _FakeSupervisor([ReplicaInfo("only", survivor.port, None)]),
            port=0, trace_log=log_path, trace_sample=0.0,
        )
        handle = router.start_in_background()
        try:
            raw = _raw_post(handle.port, b'{"matrix": [[0]]}',
                            {"content-type": "application/json"})
            assert raw == _CANNED
        finally:
            handle.stop()
            survivor.close()
        import os
        assert not os.path.exists(log_path) or load_trace_events(log_path) == []
