"""Property tests: the CSR engine is a drop-in for the adjacency-list path.

The refactor's contract is exact equivalence, not approximate: APSP
distances from the CSR kernels must be *byte-identical* to the
adjacency-list reference Dijkstra, TMFG construction must produce the same
edge sets under either gain-update kernel, and the full ``tmfg_dbht``
pipeline must yield identical labels and dendrogram heights either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import tmfg_dbht
from repro.core.tmfg import construct_tmfg
from repro.graph.csr import CSRGraph
from repro.graph.shortest_paths import all_pairs_shortest_paths, dijkstra
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.kernels import available_kernels, kernel_scope
from repro.parallel.scheduler import ProcessBackend, ThreadBackend

SEEDS = [0, 1, 2, 3, 4]


def _random_graph(n: int, density: float, seed: int) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.uniform(0.1, 5.0)))
    return graph


def _random_similarity(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-1.0, 1.0, size=(n, n))
    similarity = (raw + raw.T) / 2.0
    np.fill_diagonal(similarity, 1.0)
    return similarity


class TestCSRStructure:
    def test_roundtrip_preserves_graph(self):
        graph = _random_graph(20, 0.3, 0)
        thawed = graph.to_csr().to_weighted_graph()
        assert set(graph.edges()) == set(thawed.edges())

    def test_neighbors_sorted_and_symmetric(self):
        graph = _random_graph(15, 0.4, 1)
        csr = graph.to_csr()
        assert csr.num_edges == graph.num_edges
        for u in range(15):
            neighbors, weights = csr.neighbors(u)
            assert list(neighbors) == sorted(graph.neighbor_ids(u))
            for v, w in zip(neighbors, weights):
                assert w == graph.weight(u, int(v))

    def test_weighted_degrees_match(self):
        graph = _random_graph(25, 0.3, 2)
        np.testing.assert_allclose(
            graph.to_csr().weighted_degrees(), graph.weighted_degrees()
        )

    def test_reweighted_swaps_weights_keeps_topology(self):
        graph = _random_graph(12, 0.5, 3)
        matrix = np.abs(_random_similarity(12, 4)) + 1.0
        reweighted = graph.to_csr().reweighted(matrix)
        assert {(u, v) for u, v, _ in reweighted.edges()} == {
            (u, v) for u, v, _ in graph.edges()
        }
        for u, v, weight in reweighted.edges():
            assert weight == matrix[u, v]

    def test_reweighted_symmetrizes_near_asymmetric_matrices(self):
        # Regression: matrix validators accept asymmetry within float
        # tolerance; both arc directions must still get the upper-triangle
        # entry so the graph stays undirected and kernels stay identical.
        graph = _random_graph(10, 0.5, 6)
        matrix = np.abs(_random_similarity(10, 7)) + 1.0
        matrix = np.triu(matrix) + np.triu(matrix, 1).T
        perturbed = matrix.copy()
        perturbed[np.tril_indices(10, -1)] += 5e-9
        csr = graph.to_csr().reweighted(perturbed)
        for u in range(10):
            neighbors, weights = csr.neighbors(u)
            for v, w in zip(neighbors, weights):
                assert w == matrix[min(u, int(v)), max(u, int(v))]
        python_result = all_pairs_shortest_paths(csr, kernel="python")
        numpy_result = all_pairs_shortest_paths(csr, kernel="numpy")
        np.testing.assert_array_equal(python_result, numpy_result)

    def test_reweighted_rejects_wrong_shape(self):
        csr = _random_graph(6, 0.5, 5).to_csr()
        with pytest.raises(ValueError):
            csr.reweighted(np.zeros((3, 3)))

    def test_empty_and_isolated_vertices(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 2.0)
        csr = graph.to_csr()
        assert csr.degree(2) == 0
        assert csr.num_edges == 1
        empty = WeightedGraph(0).to_csr()
        assert empty.num_vertices == 0

    def test_negative_weights_caught_at_freeze(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, -1.0)
        csr = graph.to_csr()
        assert csr.has_negative_weights()
        with pytest.raises(ValueError):
            dijkstra(csr, 0)
        with pytest.raises(ValueError):
            all_pairs_shortest_paths(csr)


class TestAPSPEquivalence:
    """CSR kernels vs the adjacency-list reference: byte-identical."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_kernels_byte_identical_on_random_graphs(self, seed, kernel):
        graph = _random_graph(30, 0.2, seed)
        reference = np.vstack([dijkstra(graph, s) for s in range(30)])
        result = all_pairs_shortest_paths(graph.to_csr(), kernel=kernel)
        np.testing.assert_array_equal(result, reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_kernels_byte_identical_on_tmfg(self, seed):
        similarity = _random_similarity(40, seed)
        tmfg = construct_tmfg(similarity, prefix=5, build_bubble_tree=False)
        dissimilarity = similarity.max() - similarity
        np.fill_diagonal(dissimilarity, 0.0)
        csr = tmfg.graph.to_csr().reweighted(dissimilarity)
        python_result = all_pairs_shortest_paths(csr, kernel="python")
        numpy_result = all_pairs_shortest_paths(csr, kernel="numpy")
        np.testing.assert_array_equal(python_result, numpy_result)

    def test_backends_byte_identical(self):
        graph = _random_graph(25, 0.3, 7)
        serial = all_pairs_shortest_paths(graph)
        thread_backend = ThreadBackend(num_workers=4)
        process_backend = ProcessBackend(num_workers=2)
        try:
            threaded = all_pairs_shortest_paths(graph, backend=thread_backend)
            processed = all_pairs_shortest_paths(graph, backend=process_backend)
        finally:
            thread_backend.close()
            process_backend.close()
        np.testing.assert_array_equal(serial, threaded)
        np.testing.assert_array_equal(serial, processed)

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_trailing_isolated_vertices(self, kernel):
        # Regression: an isolated *last* vertex must not truncate the
        # previous vertex's relaxation segment in the numpy kernel.
        graph = WeightedGraph(4)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(1, 2, 1.0)
        result = all_pairs_shortest_paths(graph.to_csr(), kernel=kernel)
        expected = np.vstack([dijkstra(graph, s) for s in range(4)])
        np.testing.assert_array_equal(result, expected)
        assert result[1, 0] == 2.0
        assert np.isinf(result[3, 0])

    @pytest.mark.parametrize("kernel", ["python", "numpy"])
    def test_out_of_range_sources_rejected(self, kernel):
        from repro.graph.shortest_paths import shortest_paths_from_sources

        csr = _random_graph(5, 0.5, 0).to_csr()
        with pytest.raises(IndexError):
            shortest_paths_from_sources(csr, [-1], kernel=kernel)
        with pytest.raises(IndexError):
            shortest_paths_from_sources(csr, [5], kernel=kernel)

    def test_string_backend_accepted(self):
        graph = _random_graph(15, 0.4, 11)
        serial = all_pairs_shortest_paths(graph)
        named = all_pairs_shortest_paths(graph, backend="thread")
        np.testing.assert_array_equal(serial, named)

    def test_both_kernels_registered(self):
        assert available_kernels("apsp") == ["numpy", "python"]
        assert available_kernels("gain_update") == ["numpy", "python"]


class TestTMFGEquivalence:
    """Gain-update kernels: identical TMFG edge sets on random inputs."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("prefix", [1, 4, 10])
    def test_edge_sets_identical(self, seed, prefix):
        similarity = _random_similarity(30, seed)
        python_tmfg = construct_tmfg(
            similarity, prefix=prefix, build_bubble_tree=False, kernel="python"
        )
        numpy_tmfg = construct_tmfg(
            similarity, prefix=prefix, build_bubble_tree=False, kernel="numpy"
        )
        assert python_tmfg.edges == numpy_tmfg.edges
        assert python_tmfg.rounds == numpy_tmfg.rounds


class TestPipelineEquivalence:
    """Full tmfg_dbht: labels and dendrogram heights identical on each path."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_labels_and_heights_identical(self, seed):
        similarity = _random_similarity(24, seed)
        with kernel_scope("python"):
            python_result = tmfg_dbht(similarity, prefix=3)
        with kernel_scope("numpy"):
            numpy_result = tmfg_dbht(similarity, prefix=3)
        for k in (2, 3, 5):
            np.testing.assert_array_equal(
                python_result.cut(k), numpy_result.cut(k)
            )
        python_heights = [
            node.height for node in python_result.dendrogram.internal_nodes()
        ]
        numpy_heights = [
            node.height for node in numpy_result.dendrogram.internal_nodes()
        ]
        assert python_heights == numpy_heights
