"""Tests for the figure-reproduction entry points (quick configuration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    APPENDIX_CORRELATION,
    appendix_prefix_example,
    figure4_speedup,
    figure5_breakdown,
    figure6_prefix_quality,
    figure7_edge_sum,
    load_dataset,
    table2_datasets,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        scale=0.015,
        noise=1.2,
        outlier_fraction=0.05,
        dataset_ids=(6, 11),
        slow_dataset_ids=(11,),
        max_slow_objects=40,
        prefix_sizes=(1, 5),
        thread_counts=(1, 4, 16),
        spectral_neighbor_counts=(5, 10),
        stock_count=60,
        stock_days=100,
        seed=2,
    )


class TestTable2:
    def test_lists_requested_datasets(self, tiny_config):
        result = table2_datasets(tiny_config)
        assert len(result["rows"]) == 2
        ids = [row[0] for row in result["rows"]]
        assert ids == [6, 11]

    def test_paper_sizes_reported(self, tiny_config):
        result = table2_datasets(tiny_config)
        ecg = next(row for row in result["rows"] if row[0] == 6)
        assert ecg[2] == 5000 and ecg[3] == 140 and ecg[4] == 5


class TestFigure4:
    def test_speedup_curves_have_expected_shape(self, tiny_config):
        result = figure4_speedup(tiny_config, dataset_id=6)
        curves = result["curves"]
        assert set(curves) == {1, 5}
        for prefix, curve in curves.items():
            assert len(curve) == len(tiny_config.thread_counts)
            assert curve[0] == pytest.approx(1.0)
            # Speedup never decreases when adding (non-hyperthreaded) threads.
            assert curve[1] >= curve[0]

    def test_larger_prefix_scales_at_least_as_well(self, tiny_config):
        result = figure4_speedup(tiny_config, dataset_id=6)
        curves = result["curves"]
        assert curves[5][-1] >= curves[1][-1] * 0.9


class TestFigure5:
    def test_breakdown_covers_all_steps(self, tiny_config):
        result = figure5_breakdown(tiny_config, dataset_id=6)
        steps = {row[1] for row in result["rows"]}
        assert steps == {"tmfg", "apsp", "bubble-tree", "hierarchy"}

    def test_fractions_sum_to_one_per_prefix(self, tiny_config):
        result = figure5_breakdown(tiny_config, dataset_id=6)
        for prefix in tiny_config.prefix_sizes:
            fractions = [row[3] for row in result["rows"] if row[0] == prefix]
            assert sum(fractions) == pytest.approx(1.0, abs=1e-6)


class TestFigure6And7:
    def test_prefix_quality_rows(self, tiny_config):
        result = figure6_prefix_quality(tiny_config)
        assert len(result["rows"]) == 2 * len(tiny_config.prefix_sizes)
        for _, _, ari in result["rows"]:
            assert -1.0 <= ari <= 1.0

    def test_edge_sum_ratios_near_one(self, tiny_config):
        result = figure7_edge_sum(tiny_config)
        for _, variant, ratio in result["rows"]:
            assert 0.8 <= ratio <= 1.1, variant
        # prefix 1 is the reference, so its ratio is exactly 1.
        assert all(
            ratio == pytest.approx(1.0)
            for _, variant, ratio in result["rows"]
            if variant == "prefix 1"
        )


class TestAppendixExample:
    def test_matrix_matches_figure12(self):
        assert APPENDIX_CORRELATION.shape == (6, 6)
        assert APPENDIX_CORRELATION[1, 3] == pytest.approx(0.9)
        assert APPENDIX_CORRELATION[2, 5] == pytest.approx(0.42)
        np.testing.assert_allclose(APPENDIX_CORRELATION, APPENDIX_CORRELATION.T)

    def test_prefix3_recovers_ground_truth_prefix1_does_not(self):
        result = appendix_prefix_example()
        assert result["ari_by_prefix"][3] == pytest.approx(1.0)
        assert result["ari_by_prefix"][1] < 1.0


class TestDatasetCache:
    def test_load_dataset_caches(self, tiny_config):
        first = load_dataset(tiny_config, 6)
        second = load_dataset(tiny_config, 6)
        assert first is second
