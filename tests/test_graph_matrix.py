"""Tests for matrix validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.matrix import (
    MatrixValidationError,
    correlation_like,
    validate_dissimilarity_matrix,
    validate_similarity_matrix,
)


class TestValidateSimilarity:
    def test_accepts_symmetric_matrix(self):
        matrix = np.array([[1.0, 0.5, 0.2, 0.1],
                           [0.5, 1.0, 0.3, 0.2],
                           [0.2, 0.3, 1.0, 0.4],
                           [0.1, 0.2, 0.4, 1.0]])
        result = validate_similarity_matrix(matrix)
        assert result.shape == (4, 4)

    def test_rejects_non_square(self):
        with pytest.raises(MatrixValidationError):
            validate_similarity_matrix(np.zeros((3, 4)))

    def test_rejects_too_small(self):
        with pytest.raises(MatrixValidationError):
            validate_similarity_matrix(np.eye(3))

    def test_rejects_asymmetric(self):
        matrix = np.eye(5)
        matrix[0, 1] = 0.9
        with pytest.raises(MatrixValidationError):
            validate_similarity_matrix(matrix)

    def test_rejects_nan(self):
        matrix = np.eye(5)
        matrix[2, 3] = matrix[3, 2] = np.nan
        with pytest.raises(MatrixValidationError):
            validate_similarity_matrix(matrix)

    def test_returns_float_array(self):
        matrix = np.eye(4, dtype=int)
        assert validate_similarity_matrix(matrix).dtype == float

    def test_custom_min_size(self):
        assert validate_similarity_matrix(np.eye(2), min_size=2).shape == (2, 2)


class TestValidateDissimilarity:
    def test_accepts_valid_matrix(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert validate_dissimilarity_matrix(matrix).shape == (2, 2)

    def test_rejects_negative_entries(self):
        matrix = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(MatrixValidationError):
            validate_dissimilarity_matrix(matrix)

    def test_rejects_size_mismatch(self):
        with pytest.raises(MatrixValidationError):
            validate_dissimilarity_matrix(np.zeros((3, 3)), size=4)

    def test_tiny_negative_values_clipped(self):
        matrix = np.array([[0.0, -1e-12], [-1e-12, 0.0]])
        result = validate_dissimilarity_matrix(matrix)
        assert np.all(result >= 0.0)

    def test_rejects_infinite(self):
        matrix = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(MatrixValidationError):
            validate_dissimilarity_matrix(matrix)


class TestCorrelationLike:
    def test_correlation_matrix_is_detected(self):
        matrix = np.array([[1.0, 0.3], [0.3, 1.0]])
        assert correlation_like(matrix)

    def test_non_unit_diagonal_rejected(self):
        matrix = np.array([[2.0, 0.3], [0.3, 2.0]])
        assert not correlation_like(matrix)

    def test_out_of_range_rejected(self):
        matrix = np.array([[1.0, 1.5], [1.5, 1.0]])
        assert not correlation_like(matrix)

    def test_non_square_rejected(self):
        assert not correlation_like(np.zeros((2, 3)))
