"""Tests for triangular-face helpers."""

from __future__ import annotations

import pytest

from repro.graph.faces import VertexFacePair, child_faces, triangle_corners, triangle_key


class TestTriangleKey:
    def test_order_invariant(self):
        assert triangle_key(1, 2, 3) == triangle_key(3, 1, 2)

    def test_duplicate_corners_rejected(self):
        with pytest.raises(ValueError):
            triangle_key(1, 1, 2)

    def test_corners_sorted(self):
        assert triangle_corners(triangle_key(5, 2, 9)) == (2, 5, 9)

    def test_corners_rejects_non_triangle(self):
        with pytest.raises(ValueError):
            triangle_corners(frozenset({1, 2}))


class TestChildFaces:
    def test_creates_three_faces_containing_vertex(self):
        faces = child_faces(triangle_key(0, 1, 2), 7)
        assert len(faces) == 3
        assert all(7 in face for face in faces)

    def test_children_cover_all_corner_pairs(self):
        faces = child_faces(triangle_key(0, 1, 2), 7)
        pairs = {frozenset(face - {7}) for face in faces}
        assert pairs == {frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})}

    def test_vertex_already_in_face_rejected(self):
        with pytest.raises(ValueError):
            child_faces(triangle_key(0, 1, 2), 1)


class TestVertexFacePair:
    def test_sort_key_orders_by_gain_first(self):
        low = VertexFacePair(vertex=1, face=triangle_key(0, 1, 2), gain=0.5)
        high = VertexFacePair(vertex=9, face=triangle_key(0, 1, 3), gain=0.9)
        assert high.sort_key() > low.sort_key()

    def test_sort_key_breaks_ties_by_smaller_vertex(self):
        a = VertexFacePair(vertex=3, face=triangle_key(0, 1, 2), gain=0.5)
        b = VertexFacePair(vertex=5, face=triangle_key(0, 1, 2), gain=0.5)
        assert a.sort_key() > b.sort_key()
