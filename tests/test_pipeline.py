"""Tests for the one-call public pipeline (tmfg_dbht)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import tmfg_dbht
from repro.experiments.figures import APPENDIX_CORRELATION, APPENDIX_GROUND_TRUTH
from repro.metrics.ari import adjusted_rand_index
from repro.parallel.cost_model import WorkSpanTracker


class TestPipeline:
    def test_returns_all_artifacts(self, small_matrices):
        similarity, dissimilarity = small_matrices
        result = tmfg_dbht(similarity, dissimilarity, prefix=5)
        assert result.tmfg.graph.num_edges == 3 * similarity.shape[0] - 6
        assert result.dendrogram.is_complete
        assert set(result.step_seconds) == {"tmfg", "apsp", "bubble-tree", "hierarchy"}

    def test_derives_dissimilarity_from_correlation(self, small_matrices):
        similarity, _ = small_matrices
        result = tmfg_dbht(similarity, prefix=1)
        assert result.dendrogram.is_complete

    def test_derives_dissimilarity_from_generic_similarity(self):
        rng = np.random.default_rng(0)
        raw = rng.uniform(0.0, 5.0, size=(12, 12))
        similarity = (raw + raw.T) / 2
        result = tmfg_dbht(similarity, prefix=1)
        assert result.dendrogram.is_complete

    def test_custom_tracker_is_used(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tracker = WorkSpanTracker()
        result = tmfg_dbht(similarity, dissimilarity, prefix=2, tracker=tracker)
        assert result.tracker is tracker
        assert tracker.total_work > 0

    def test_cut_shortcut_matches_dbht_cut(self, small_matrices):
        similarity, dissimilarity = small_matrices
        result = tmfg_dbht(similarity, dissimilarity, prefix=1)
        np.testing.assert_array_equal(result.cut(3), result.dbht.cut(3))


class TestAppendixExample:
    """The worked example of the appendix (Figs. 12 and 13)."""

    def test_prefix_one_insertion_order(self):
        result = tmfg_dbht(APPENDIX_CORRELATION, prefix=1)
        order = [(v, tuple(sorted(f))) for v, f in result.tmfg.insertion_order]
        assert result.tmfg.initial_clique == (0, 1, 3, 4)
        assert order == [(5, (0, 3, 4)), (2, (0, 4, 5))]

    def test_prefix_three_insertion_order(self):
        result = tmfg_dbht(APPENDIX_CORRELATION, prefix=3)
        order = dict(
            (v, tuple(sorted(f))) for v, f in result.tmfg.insertion_order
        )
        assert order[2] == (0, 1, 4)
        assert order[5] == (0, 3, 4)

    def test_prefix_three_recovers_ground_truth(self):
        result = tmfg_dbht(APPENDIX_CORRELATION, prefix=3)
        labels = result.cut(2)
        assert adjusted_rand_index(APPENDIX_GROUND_TRUTH, labels) == pytest.approx(1.0)

    def test_prefix_one_does_not_recover_ground_truth(self):
        result = tmfg_dbht(APPENDIX_CORRELATION, prefix=1)
        labels = result.cut(2)
        assert adjusted_rand_index(APPENDIX_GROUND_TRUTH, labels) < 1.0
