"""Tests for the micro-batching clustering service (`repro.serve`).

Unit-level: the size-or-deadline batcher, admission control, latency
histograms.  Integration-level: a real server on an ephemeral port,
concurrent identical + distinct POSTs deduping (asserted through the
``/metrics`` counters), byte-identity with direct estimator fits, 429
under saturation, and clean graceful shutdown.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.api import ClusteringConfig, TMFGClusterer
from repro.cache import clear_result_caches, get_result_cache
from repro.datasets.synthetic import make_time_series_dataset
from repro.serve import (
    ClusteringServer,
    LatencyHistogram,
    MicroBatcher,
    QueueFull,
    ServeClient,
    ServerBusy,
    ServiceStopping,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_caches()
    yield
    clear_result_caches()


@pytest.fixture(scope="module")
def series():
    """Raw series small enough for sub-100ms fits."""
    return make_time_series_dataset(
        num_objects=36, length=32, num_classes=3, noise=1.0, seed=19
    ).data


def _other_series(seed: int) -> np.ndarray:
    return make_time_series_dataset(
        num_objects=36, length=32, num_classes=3, noise=1.0, seed=seed
    ).data


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------


def _run(coroutine):
    return asyncio.run(coroutine)


class _RecordingRunner:
    """Runner double: records each (config, matrices) call it serves."""

    def __init__(self, delay: float = 0.0, fail: bool = False):
        self.calls = []
        self.delay = delay
        self.fail = fail

    async def __call__(self, config, matrices):
        self.calls.append((config, [np.asarray(m) for m in matrices]))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail:
            raise RuntimeError("runner exploded")
        return [("fit", config.method, int(np.asarray(m).sum())) for m in matrices]


class TestMicroBatcher:
    def test_flushes_on_max_batch_size(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(runner, max_batch_size=3, max_wait_ms=10_000)
            batcher.start()
            config = ClusteringConfig()
            futures = [batcher.submit(np.full((2, 2), i), config) for i in range(3)]
            results = await asyncio.wait_for(asyncio.gather(*futures), timeout=5)
            await batcher.stop()
            return runner.calls, results

        calls, results = _run(scenario())
        # One flush, one runner call, well before the (huge) deadline.
        assert len(calls) == 1
        assert len(calls[0][1]) == 3
        for i, (result, info) in enumerate(results):
            assert result == ("fit", "tmfg-dbht", i * 4)
            assert info["batch_size"] == 3
            assert info["batch_distinct"] == 3

    def test_flushes_on_deadline_with_partial_batch(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(runner, max_batch_size=64, max_wait_ms=30)
            batcher.start()
            start = asyncio.get_running_loop().time()
            future = batcher.submit(np.ones((2, 2)), ClusteringConfig())
            await asyncio.wait_for(future, timeout=5)
            elapsed = asyncio.get_running_loop().time() - start
            await batcher.stop()
            return runner.calls, elapsed

        calls, elapsed = _run(scenario())
        assert len(calls) == 1 and len(calls[0][1]) == 1
        assert elapsed >= 0.02  # waited for (most of) the 30ms deadline

    def test_mixed_configs_split_into_one_runner_call_each(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(runner, max_batch_size=4, max_wait_ms=10_000)
            batcher.start()
            a, b = ClusteringConfig(prefix=1), ClusteringConfig(prefix=2)
            futures = [
                batcher.submit(np.ones((2, 2)), a),
                batcher.submit(np.ones((2, 2)), b),
                batcher.submit(np.ones((2, 2)), a),
                batcher.submit(np.ones((2, 2)), b),
            ]
            results = await asyncio.wait_for(asyncio.gather(*futures), timeout=5)
            await batcher.stop()
            return runner.calls, results

        calls, results = _run(scenario())
        assert [len(matrices) for _config, matrices in calls] == [2, 2]
        assert {config.prefix for config, _m in calls} == {1, 2}
        # The batch is still accounted as one: 4 requests, 2 distinct jobs.
        assert all(info["batch_size"] == 4 for _r, info in results)
        assert all(info["batch_distinct"] == 2 for _r, info in results)

    def test_queue_full_rejects_and_counts(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(
                runner, max_batch_size=64, max_wait_ms=10_000, max_queue_depth=2
            )
            batcher.start()
            config = ClusteringConfig()
            kept = [batcher.submit(np.ones((2, 2)), config) for _ in range(2)]
            with pytest.raises(QueueFull):
                batcher.submit(np.ones((2, 2)), config)
            rejected = batcher.stats.rejected
            await batcher.stop()  # drain answers the two admitted jobs
            results = await asyncio.gather(*kept)
            return rejected, results

        rejected, results = _run(scenario())
        assert rejected == 1
        assert len(results) == 2

    def test_stop_drains_admitted_work_then_refuses(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(runner, max_batch_size=64, max_wait_ms=10_000)
            batcher.start()
            future = batcher.submit(np.ones((2, 2)), ClusteringConfig())
            await batcher.stop(drain=True)
            result, _info = future.result()
            with pytest.raises(ServiceStopping):
                batcher.submit(np.ones((2, 2)), ClusteringConfig())
            return result

        assert _run(scenario())[0] == "fit"

    def test_stop_without_drain_fails_queued_requests(self):
        async def scenario():
            runner = _RecordingRunner()
            batcher = MicroBatcher(runner, max_batch_size=64, max_wait_ms=10_000)
            batcher.start()
            future = batcher.submit(np.ones((2, 2)), ClusteringConfig())
            await batcher.stop(drain=False)
            return future

        future = _run(scenario())
        with pytest.raises(ServiceStopping):
            future.result()

    def test_runner_failure_propagates_to_every_request(self):
        async def scenario():
            runner = _RecordingRunner(fail=True)
            batcher = MicroBatcher(runner, max_batch_size=2, max_wait_ms=10_000)
            batcher.start()
            futures = [
                batcher.submit(np.ones((2, 2)), ClusteringConfig()) for _ in range(2)
            ]
            gathered = await asyncio.gather(*futures, return_exceptions=True)
            await batcher.stop()
            return gathered

        gathered = _run(scenario())
        assert all(isinstance(g, RuntimeError) for g in gathered)

    def test_knob_validation(self):
        runner = _RecordingRunner()
        with pytest.raises(ValueError):
            MicroBatcher(runner, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(runner, max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(runner, max_queue_depth=0)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestLatencyHistogram:
    def test_quantiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for ms in [1, 2, 3, 4, 5, 6, 7, 8, 9, 100]:
            histogram.observe(ms / 1000.0)
        summary = histogram.as_dict()
        assert summary["count"] == 10
        assert 1.0 <= summary["p50_ms"] <= 10.0
        assert summary["p99_ms"] <= summary["max_ms"] == 100.0
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    def test_empty_histogram_is_all_zero(self):
        histogram = LatencyHistogram()
        summary = histogram.as_dict()
        assert summary == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
            "sum_ms": 0.0,
            "bucket_bounds_ms": list(histogram.bounds_ms),
            "bucket_counts": [0] * (len(histogram.bounds_ms) + 1),
        }

    def test_raw_buckets_support_exact_merging(self):
        histogram = LatencyHistogram(bounds_ms=[10.0, 100.0])
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(0.5)  # overflow bucket
        summary = histogram.as_dict()
        assert summary["bucket_counts"] == [1, 1, 1]
        assert summary["sum_ms"] == pytest.approx(555.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_ms=[5.0, 1.0])


# ---------------------------------------------------------------------------
# Server integration (real sockets, ephemeral ports)
# ---------------------------------------------------------------------------


def _start_server(**kwargs) -> "tuple":
    defaults = dict(
        port=0,
        default_config=ClusteringConfig(cache=True, num_clusters=3, prefix=2),
        max_batch_size=16,
        max_wait_ms=20.0,
        fit_workers=2,
    )
    defaults.update(kwargs)
    server = ClusteringServer(**defaults)
    handle = server.start_in_background()
    return server, handle


class TestServerIntegration:
    def test_health_metrics_and_basic_request(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["version"]
                envelope = client.cluster(series)
                assert envelope["result"]["num_clusters"] == 3
                assert len(envelope["result"]["labels"]) == series.shape[0]
                assert envelope["serving"]["batch_size"] >= 1
                metrics = client.metrics()
                assert metrics["requests_total"]["POST /cluster"] == 1
                assert metrics["responses_total"]["200"] >= 1
                assert metrics["latency"]["request"]["count"] >= 1
        finally:
            handle.stop()

    def test_served_result_byte_identical_to_direct_fit(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                envelope = client.cluster(series)
        finally:
            handle.stop()
        # The server process == this process, so the direct fit hits the
        # entry the served fit stored: identical bytes, timings included.
        direct = (
            TMFGClusterer(ClusteringConfig(cache=True, num_clusters=3, prefix=2))
            .fit(series)
            .result_
        )
        assert json.dumps(envelope["result"]) == direct.to_json()

    def test_concurrent_identical_requests_dedupe(self, series):
        _server, handle = _start_server(max_wait_ms=60.0)
        num_clients = 8
        try:
            barrier = threading.Barrier(num_clients)
            envelopes, errors = [], []

            def one_request():
                try:
                    with ServeClient(handle.host, handle.port) as client:
                        barrier.wait(timeout=30)
                        envelopes.append(client.cluster(series))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=one_request) for _ in range(num_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(envelopes) == num_clients
            payloads = {json.dumps(e["result"]) for e in envelopes}
            assert len(payloads) == 1  # every client saw the same bytes
            with ServeClient(handle.host, handle.port) as client:
                metrics = client.metrics()
            # Dedupe is visible in the metrics: the batch of identical jobs
            # collapsed before dispatch and/or repeat requests hit the
            # cache — either way, far fewer fits than requests.
            batching = metrics["batching"]
            cache = metrics["cache"]
            fits_saved = batching["deduped_requests"] + cache["hits"]
            assert fits_saved >= num_clients - batching["batches"]
            assert cache["stores"] == 1  # exactly one distinct fit computed
            assert metrics["requests_total"]["POST /cluster"] == num_clients
        finally:
            handle.stop()

    def test_repeat_request_is_a_cache_hit_in_metrics(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                client.cluster(series)
                before = client.metrics()["cache"]["hits"]
                client.cluster(series)
                after = client.metrics()["cache"]["hits"]
                assert after > before
        finally:
            handle.stop()

    def test_distinct_requests_all_fit(self, series):
        _server, handle = _start_server(max_wait_ms=40.0)
        try:
            inputs = [series, _other_series(29), _other_series(31)]
            expected = []
            for matrix in inputs:
                expected.append(
                    TMFGClusterer(
                        ClusteringConfig(num_clusters=3, prefix=2)
                    ).fit(matrix).result_.labels.tolist()
                )
            with ServeClient(handle.host, handle.port) as client:
                for matrix, labels in zip(inputs, expected):
                    assert client.cluster_labels(matrix).tolist() == labels
                assert client.metrics()["cache"]["stores"] == len(inputs)
        finally:
            handle.stop()

    def test_request_config_overlays_server_default(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                envelope = client.cluster(series, config={"num_clusters": 2})
                assert envelope["result"]["num_clusters"] == 2
                assert envelope["result"]["config"]["prefix"] == 2  # default kept
        finally:
            handle.stop()

    def test_bad_requests_answer_400(self, series):
        from repro.serve import ServerError

        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                with pytest.raises(ServerError, match="400") as excinfo:
                    client.cluster(np.arange(8.0).reshape(1, -1).ravel())
                assert excinfo.value.status == 400
                with pytest.raises(ServerError, match="unknown"):
                    client._request(
                        "POST", "/cluster",
                        json.dumps({"matrix": [[1.0]], "bogus": 1}).encode(),
                    )
                with pytest.raises(ServerError, match="config"):
                    client.cluster(series, config={"no_such_knob": 3})
                with pytest.raises(ServerError) as notfound:
                    client._request("GET", "/nope")
                assert notfound.value.status == 404
        finally:
            handle.stop()

    def test_saturated_queue_answers_429_with_retry_after(self, series):
        # max_wait_ms is huge and the batch never fills, so admitted
        # requests sit in the queue; depth 2 makes the third request 429.
        _server, handle = _start_server(
            max_wait_ms=3_000.0, max_batch_size=64, max_queue_depth=2, fit_workers=1
        )
        small = series[:12]
        try:
            results, busy = [], []

            def fire():
                with ServeClient(handle.host, handle.port) as client:
                    try:
                        results.append(client.cluster(small))
                    except ServerBusy as error:
                        busy.append(error)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
                time.sleep(0.05)  # admit strictly one at a time
            for thread in threads:
                thread.join(timeout=120)
            assert busy, "no request was rejected despite a saturated queue"
            assert all(error.retry_after >= 1 for error in busy)
            assert len(results) == 6 - len(busy)
            with ServeClient(handle.host, handle.port) as client:
                metrics = client.metrics()
            assert metrics["rejected_total"] == len(busy)
            assert metrics["responses_total"]["429"] == len(busy)
        finally:
            handle.stop()

    def test_graceful_shutdown_drains_inflight_requests(self, series):
        server, handle = _start_server(max_wait_ms=200.0)
        envelopes = []

        def slow_request():
            with ServeClient(handle.host, handle.port) as client:
                envelopes.append(client.cluster(series))

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.05)  # let the request reach the queue
        handle.stop()  # drain: the queued request must still be answered
        thread.join(timeout=30)
        assert len(envelopes) == 1
        assert envelopes[0]["result"]["num_clusters"] == 3
        # The port is actually released.
        with pytest.raises(OSError):
            import socket

            probe = socket.create_connection((handle.host, handle.port), timeout=0.5)
            probe.close()
        assert not handle.thread.is_alive()

    def test_server_rejects_bad_fit_workers(self):
        with pytest.raises(ValueError):
            ClusteringServer(fit_workers=0)


class TestReviewHardening:
    """Regression tests for the serving-path review findings."""

    def test_group_failure_is_isolated_per_request(self):
        poison = np.full((2, 2), -1.0)

        async def runner(config, matrices):
            if any(np.all(m == -1.0) for m in matrices):
                raise ValueError("poison matrix")
            await asyncio.sleep(0)
            return ["ok" for _ in matrices]

        async def scenario():
            batcher = MicroBatcher(runner, max_batch_size=3, max_wait_ms=10_000)
            batcher.start()
            config = ClusteringConfig()
            good_a = batcher.submit(np.ones((2, 2)), config)
            bad = batcher.submit(poison, config)
            good_b = batcher.submit(np.full((2, 2), 2.0), config)
            gathered = await asyncio.gather(
                good_a, bad, good_b, return_exceptions=True
            )
            await batcher.stop()
            return gathered

        result_a, bad_error, result_b = _run(scenario())
        # The co-batched good requests still get answers; only the poison
        # request observes its own error.
        assert result_a[0] == "ok" and result_b[0] == "ok"
        assert isinstance(bad_error, ValueError)
        assert "poison" in str(bad_error)

    def test_server_isolates_bad_matrix_from_batchmates(self, series):
        _server, handle = _start_server(max_wait_ms=150.0)
        try:
            too_small = np.ones((3, 5))  # parses fine, fails at fit (<4 rows)
            outcomes = {}

            def post(name, matrix):
                from repro.serve import ServerError

                with ServeClient(handle.host, handle.port) as client:
                    try:
                        outcomes[name] = client.cluster(matrix)
                    except ServerError as error:
                        outcomes[name] = error

            threads = [
                threading.Thread(target=post, args=("good", series)),
                threading.Thread(target=post, args=("bad", too_small)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert outcomes["good"]["result"]["num_clusters"] == 3
            assert getattr(outcomes["bad"], "status", None) == 400
            assert "at least 4 rows" in str(outcomes["bad"])
        finally:
            handle.stop()

    def test_reserved_config_fields_rejected(self, series, tmp_path):
        from repro.serve import ServerError

        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                for payload in (
                    {"backend": "process", "workers": 64},
                    {"cache": True, "cache_dir": str(tmp_path / "evil")},
                ):
                    with pytest.raises(ServerError, match="operator-controlled") as excinfo:
                        client.cluster(series, config=payload)
                    assert excinfo.value.status == 400
        finally:
            handle.stop()

    def test_oversized_header_line_answers_400(self):
        import socket

        _server, handle = _start_server()
        try:
            with socket.create_connection((handle.host, handle.port), timeout=10) as raw:
                raw.sendall(b"GET /healthz HTTP/1.1\r\n")
                raw.sendall(b"X-Huge: " + b"a" * (80 * 1024) + b"\r\n\r\n")
                raw.settimeout(10)
                response = raw.recv(65536)
            assert response.startswith(b"HTTP/1.1 400")
        finally:
            handle.stop()

    def test_unknown_routes_bucketed_in_metrics(self):
        from repro.serve import ServerError

        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                for path in ("/nope", "/scan1", "/scan2"):
                    with pytest.raises(ServerError):
                        client.request("GET", path)
                requests_total = client.metrics()["requests_total"]
            assert requests_total.get("GET <other>") == 3
            assert not any("/nope" in key or "/scan" in key for key in requests_total)
        finally:
            handle.stop()

    def test_bad_batching_knobs_rejected_at_construction(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ClusteringServer(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ClusteringServer(max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            ClusteringServer(max_queue_depth=0)


# ---------------------------------------------------------------------------
# Transport hardening (client retry semantics, 429 hints, header parsing)
# ---------------------------------------------------------------------------


class _ScriptedSocketServer:
    """A raw TCP double for transport-failure tests.

    Reads one full HTTP request per connection and then consults
    ``script``: ``"kill"`` closes the connection without answering
    (simulating a server that died post-admission), any other entry is
    sent verbatim as the response.  Connections beyond the script replay
    its last entry.  ``requests_seen`` counts requests actually read —
    the double-submit assertions hang off it.
    """

    def __init__(self, script):
        import socket as socketlib

        self.script = list(script)
        self.requests_seen = 0
        self.requests = []
        self._listener = socketlib.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        import socket as socketlib

        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except (socketlib.timeout, OSError):
                continue
            with connection:
                connection.settimeout(5.0)
                try:
                    request = self._read_request(connection)
                except (socketlib.timeout, OSError):
                    continue
                if not request:
                    continue
                self.requests.append(request)
                action = self.script[min(self.requests_seen, len(self.script) - 1)]
                self.requests_seen += 1
                if action != "kill":
                    try:
                        connection.sendall(action)
                    except OSError:
                        pass
                # falling out of the with-block closes the socket; for
                # "kill" that is the whole response.

    @staticmethod
    def _read_request(connection) -> bytes:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = connection.recv(65536)
            if not chunk:
                return data
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        content_length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                content_length = int(value.strip())
        while len(rest) < content_length:
            chunk = connection.recv(65536)
            if not chunk:
                break
            rest += chunk
        return data

    def stop(self):
        self._stopping.set()
        self._thread.join(timeout=5)
        self._listener.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


def _canned_response(status_line: str, body: dict, extra_headers: str = "") -> bytes:
    payload = json.dumps(body).encode("utf-8")
    return (
        f"HTTP/1.1 {status_line}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra_headers}"
        f"Connection: keep-alive\r\n\r\n"
    ).encode("latin-1") + payload


class TestClientRetrySemantics:
    """The stale-socket retry is restricted to idempotent methods: a POST
    whose connection dies after the request was read may already have been
    admitted (even fitted) server-side, so replaying it would double-submit."""

    def test_post_is_never_transparently_retried(self):
        from repro.serve import ServeClient

        with _ScriptedSocketServer(["kill"]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                with pytest.raises((ConnectionError, OSError, Exception)) as excinfo:
                    client.request("POST", "/cluster", b'{"matrix": [[1.0, 2.0]]}')
                import http.client as http_client

                assert isinstance(
                    excinfo.value,
                    (http_client.HTTPException, ConnectionError, OSError),
                )
            time.sleep(0.05)
            # Exactly one request reached the wire: no silent replay.
            assert fake.requests_seen == 1

    def test_get_is_transparently_retried_once(self):
        from repro.serve import ServeClient

        ok = _canned_response("200 OK", {"status": "ok"})
        with _ScriptedSocketServer(["kill", ok]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                assert client.healthz() == {"status": "ok"}
            assert fake.requests_seen == 2
            assert all(req.startswith(b"GET /healthz") for req in fake.requests)

    def test_cluster_propagates_connection_death(self, series):
        from repro.serve import ServeClient

        with _ScriptedSocketServer(["kill"]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                import http.client as http_client

                with pytest.raises(
                    (http_client.HTTPException, ConnectionError, OSError)
                ):
                    client.cluster(series[:8])
            time.sleep(0.05)
            assert fake.requests_seen == 1


class TestRetryAfterHints:
    def test_retry_after_hint_is_fractional_with_a_floor(self):
        from repro.serve.server import retry_after_hint

        assert retry_after_hint(3_000.0) == 3.0
        assert retry_after_hint(250.0) == 0.25
        assert retry_after_hint(10.0) == 0.05  # floored: never advertise ~0
        assert retry_after_hint(333.3) == 0.333

    def test_client_prefers_fractional_body_hint_over_header(self):
        from repro.serve import ServeClient

        busy = _canned_response(
            "429 Too Many Requests",
            {"error": "admission queue full", "retry_after_seconds": 0.25},
            extra_headers="Retry-After: 1\r\n",
        )
        with _ScriptedSocketServer([busy]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                with pytest.raises(ServerBusy) as excinfo:
                    client.cluster(np.ones((4, 4)))
        assert excinfo.value.retry_after == 0.25

    def test_client_falls_back_to_header_without_body_hint(self):
        from repro.serve import ServeClient

        busy = _canned_response(
            "429 Too Many Requests",
            {"error": "admission queue full"},
            extra_headers="Retry-After: 2\r\n",
        )
        with _ScriptedSocketServer([busy]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                with pytest.raises(ServerBusy) as excinfo:
                    client.cluster(np.ones((4, 4)))
        assert excinfo.value.retry_after == 2.0

    def test_hostile_body_hint_is_ignored(self):
        from repro.serve import ServeClient

        busy = _canned_response(
            "429 Too Many Requests",
            {"error": "busy", "retry_after_seconds": "soon"},
            extra_headers="Retry-After: 1\r\n",
        )
        with _ScriptedSocketServer([busy]) as fake:
            with ServeClient(fake.host, fake.port, timeout=5) as client:
                with pytest.raises(ServerBusy) as excinfo:
                    client.cluster(np.ones((4, 4)))
        assert excinfo.value.retry_after == 1.0

    def test_live_429_carries_fractional_body_and_integer_header(self, series):
        import socket

        _server, handle = _start_server(
            max_wait_ms=2_500.0, max_batch_size=64, max_queue_depth=1, fit_workers=1
        )
        small = series[:12]
        try:
            def hold():
                try:
                    ServeClient(handle.host, handle.port).cluster(small)
                except ServerBusy:
                    pass  # late holders may be rejected too; irrelevant here

            holders = [threading.Thread(target=hold) for _ in range(3)]
            for thread in holders:
                thread.start()
                time.sleep(0.05)
            # Saturate, then inspect the raw 429 bytes.
            body = json.dumps({"matrix": small.tolist(), "config": {}}).encode()
            deadline = time.time() + 10
            raw_response = b""
            while time.time() < deadline:
                with socket.create_connection((handle.host, handle.port), timeout=10) as raw:
                    raw.sendall(
                        b"POST /cluster HTTP/1.1\r\nHost: x\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
                    )
                    raw.settimeout(10)
                    raw_response = raw.recv(1 << 20)
                if raw_response.startswith(b"HTTP/1.1 429"):
                    break
            for thread in holders:
                thread.join(timeout=120)
            assert raw_response.startswith(b"HTTP/1.1 429"), raw_response[:80]
            head, _, payload = raw_response.partition(b"\r\n\r\n")
            headers = {
                line.split(b":", 1)[0].strip().lower(): line.split(b":", 1)[1].strip()
                for line in head.split(b"\r\n")[1:]
            }
            # RFC-valid header: a non-negative integer, rounded UP from the hint.
            assert headers[b"retry-after"].isdigit()
            hint = json.loads(payload)["retry_after_seconds"]
            assert isinstance(hint, float)
            assert hint == 2.5  # max_wait_ms / 1000, fractional
            assert int(headers[b"retry-after"]) == 3  # ceil(2.5)
        finally:
            handle.stop()


class TestHeaderParsingHardening:
    """Request-smuggling-adjacent parsing fixes: duplicate Content-Length
    and colon-less header lines must be refused, not guessed at."""

    def _raw_exchange(self, handle, request: bytes) -> bytes:
        import socket

        with socket.create_connection((handle.host, handle.port), timeout=10) as raw:
            raw.sendall(request)
            raw.settimeout(10)
            return raw.recv(65536)

    def test_duplicate_content_length_answers_400(self):
        _server, handle = _start_server()
        try:
            response = self._raw_exchange(
                handle,
                b"POST /cluster HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 4\r\nContent-Length: 11\r\n\r\n"
                b"{}",
            )
            assert response.startswith(b"HTTP/1.1 400")
            assert b"duplicate Content-Length" in response
        finally:
            handle.stop()

    def test_colonless_header_line_answers_400(self):
        _server, handle = _start_server()
        try:
            response = self._raw_exchange(
                handle,
                b"GET /healthz HTTP/1.1\r\nHost: x\r\nBogusHeaderNoColon\r\n\r\n",
            )
            assert response.startswith(b"HTTP/1.1 400")
            assert b"no colon" in response
        finally:
            handle.stop()

    def test_empty_header_name_answers_400(self):
        _server, handle = _start_server()
        try:
            response = self._raw_exchange(
                handle,
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n: stray-value\r\n\r\n",
            )
            assert response.startswith(b"HTTP/1.1 400")
        finally:
            handle.stop()

    def test_duplicate_benign_headers_still_accepted(self):
        _server, handle = _start_server()
        try:
            response = self._raw_exchange(
                handle,
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"X-Trace: a\r\nX-Trace: b\r\n\r\n",
            )
            assert response.startswith(b"HTTP/1.1 200")
        finally:
            handle.stop()

    def test_mixed_config_groups_time_fits_separately(self):
        async def runner(config, matrices):
            await asyncio.sleep(0.1 if config.prefix == 1 else 0.0)
            return ["ok" for _ in matrices]

        async def scenario():
            batcher = MicroBatcher(runner, max_batch_size=2, max_wait_ms=10_000)
            batcher.start()
            slow = batcher.submit(np.ones((2, 2)), ClusteringConfig(prefix=1))
            fast = batcher.submit(np.ones((2, 2)), ClusteringConfig(prefix=2))
            (_, slow_info), (_, fast_info) = await asyncio.gather(slow, fast)
            await batcher.stop()
            return slow_info, fast_info

        slow_info, fast_info = _run(scenario())
        assert slow_info["fit_seconds"] >= 0.1
        # The second group's fit time does not inherit the first group's.
        assert fast_info["fit_seconds"] < 0.1


class TestJitteredBackoff:
    def test_jitter_stays_within_twenty_percent(self):
        import random

        from repro.serve.client import RETRY_JITTER_FRACTION, jittered_backoff

        rng = random.Random(42)
        draws = [jittered_backoff(2.0, rng) for _ in range(500)]
        low, high = 2.0 * (1 - RETRY_JITTER_FRACTION), 2.0 * (1 + RETRY_JITTER_FRACTION)
        assert all(low <= draw <= high for draw in draws)
        # It actually jitters: a lockstep client herd must decorrelate.
        assert len({round(draw, 6) for draw in draws}) > 100
        assert min(draws) < 2.0 < max(draws)

    def test_zero_and_negative_backoffs_stay_zero(self):
        from repro.serve.client import jittered_backoff

        assert jittered_backoff(0.0) == 0.0
        assert jittered_backoff(-5.0) == 0.0


class TestIdentityFields:
    """pid/version/uptime in healthz + metrics: what makes one replica
    distinguishable from another inside a fleet."""

    def test_healthz_carries_process_identity(self):
        import os

        from repro.serve.metrics import ServerMetrics

        payload = ServerMetrics().healthz(queue_depth=0, draining=False, version="9.9")
        assert payload["pid"] == os.getpid()
        assert payload["version"] == "9.9"
        assert payload["uptime_seconds"] >= 0.0

    def test_metrics_carries_process_identity(self):
        import os

        from repro.serve.metrics import ServerMetrics

        payload = ServerMetrics().render(
            queue_depth=0, batcher_stats={}, cache_stats=None, draining=False,
            version="9.9",
        )
        assert payload["pid"] == os.getpid()
        assert payload["version"] == "9.9"
        assert payload["uptime_seconds"] >= 0.0

    def test_served_healthz_and_metrics_expose_identity(self):
        _server, handle = _start_server()
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                health = client.healthz()
                metrics = client.metrics()
            assert health["pid"] == metrics["pid"]
            assert health["version"] == metrics["version"]
            assert health["uptime_seconds"] >= 0.0
            assert metrics["uptime_seconds"] >= health["uptime_seconds"] >= 0.0
        finally:
            handle.stop()
