"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset
from repro.parallel.scheduler import ProcessBackend


@pytest.fixture(scope="session")
def process_backend():
    """One process pool shared by every test that exercises ProcessBackend.

    Pool startup dominates the cost of process-backend tests, so the suite
    shares a single two-worker pool instead of spawning one per test.
    """
    backend = ProcessBackend(num_workers=2)
    yield backend
    backend.close()


@pytest.fixture(params=["serial", "process"])
def backend(request):
    """Parametrized backend: the serial default and the shared process pool."""
    if request.param == "process":
        return request.getfixturevalue("process_backend")
    return None


@pytest.fixture(scope="session")
def small_dataset():
    """A small but non-trivial labelled time-series data set."""
    return make_time_series_dataset(
        num_objects=60, length=48, num_classes=3, noise=1.0, seed=11
    )


@pytest.fixture(scope="session")
def small_matrices(small_dataset):
    """Similarity and dissimilarity matrices of the small data set."""
    return similarity_and_dissimilarity(small_dataset.data)


@pytest.fixture(scope="session")
def medium_dataset():
    """A slightly larger data set with outliers (harder clustering problem)."""
    return make_time_series_dataset(
        num_objects=150,
        length=64,
        num_classes=5,
        noise=1.2,
        seed=5,
        outlier_fraction=0.05,
    )


@pytest.fixture(scope="session")
def medium_matrices(medium_dataset):
    return similarity_and_dissimilarity(medium_dataset.data)


@pytest.fixture(scope="session")
def small_tmfg(small_matrices):
    """Exact (prefix 1) TMFG of the small data set, with its bubble tree."""
    similarity, _ = small_matrices
    return construct_tmfg(similarity, prefix=1, build_bubble_tree=True)


@pytest.fixture(scope="session")
def batched_tmfg(small_matrices):
    """Prefix-8 TMFG of the small data set."""
    similarity, _ = small_matrices
    return construct_tmfg(similarity, prefix=8, build_bubble_tree=True)


def random_similarity_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A random symmetric similarity matrix with unit diagonal."""
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-1.0, 1.0, size=(n, n))
    symmetric = (raw + raw.T) / 2.0
    np.fill_diagonal(symmetric, 1.0)
    return symmetric


@pytest.fixture
def similarity_factory():
    """Factory fixture building random similarity matrices."""
    return random_similarity_matrix
