"""Tests for the work-span cost model."""

from __future__ import annotations

import pytest

from repro.parallel.cost_model import (
    PhaseCost,
    WorkSpanTracker,
    predicted_speedup,
    speedup_curve,
)


class TestPhaseCost:
    def test_accumulates_work_and_span(self):
        phase = PhaseCost("tmfg")
        phase.add(100.0, 5.0)
        phase.add(50.0, 2.0)
        assert phase.work == 150.0
        assert phase.span == 7.0

    def test_predicted_time_single_worker_equals_work_plus_span(self):
        phase = PhaseCost("x", work=100.0, span=10.0)
        assert phase.predicted_time(1) == pytest.approx(110.0)

    def test_predicted_time_decreases_with_workers(self):
        phase = PhaseCost("x", work=1000.0, span=10.0)
        assert phase.predicted_time(10) < phase.predicted_time(2)

    def test_predicted_time_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PhaseCost("x", work=1.0, span=1.0).predicted_time(0)


class TestWorkSpanTracker:
    def test_phases_created_lazily(self):
        tracker = WorkSpanTracker()
        tracker.add("a", 10, 1)
        tracker.add("b", 20, 2)
        tracker.add("a", 5, 1)
        assert tracker.phase("a").work == 15
        assert tracker.phase("b").span == 2
        assert {phase.name for phase in tracker.phases} == {"a", "b"}

    def test_unknown_phase_is_zero(self):
        tracker = WorkSpanTracker()
        assert tracker.phase("missing").work == 0.0

    def test_totals(self):
        tracker = WorkSpanTracker()
        tracker.add("a", 10, 1)
        tracker.add("b", 30, 4)
        assert tracker.total_work == 40
        assert tracker.total_span == 5

    def test_merge_combines_phases(self):
        first = WorkSpanTracker()
        first.add("a", 10, 1)
        second = WorkSpanTracker()
        second.add("a", 5, 2)
        second.add("b", 7, 3)
        first.merge(second)
        assert first.phase("a").work == 15
        assert first.phase("b").work == 7

    def test_as_dict_round_trip(self):
        tracker = WorkSpanTracker()
        tracker.add("apsp", 12.0, 3.0)
        assert tracker.as_dict() == {"apsp": {"work": 12.0, "span": 3.0}}


class TestSpeedupModel:
    def _tracker(self, work: float, span: float) -> WorkSpanTracker:
        tracker = WorkSpanTracker()
        tracker.add("phase", work, span)
        return tracker

    def test_speedup_is_one_for_single_worker(self):
        tracker = self._tracker(1000, 10)
        assert predicted_speedup(tracker, 1) == pytest.approx(1.0)

    def test_speedup_bounded_by_work_over_span(self):
        tracker = self._tracker(1000, 10)
        # T_P >= span, so speedup <= (W + S) / S.
        assert predicted_speedup(tracker, 10 ** 6) <= (1000 + 10) / 10 + 1e-9

    def test_more_span_means_less_speedup(self):
        parallel_friendly = self._tracker(10000, 10)
        sequential_heavy = self._tracker(10000, 1000)
        assert predicted_speedup(parallel_friendly, 48) > predicted_speedup(
            sequential_heavy, 48
        )

    def test_speedup_monotone_in_workers(self):
        tracker = self._tracker(50000, 100)
        speedups = [predicted_speedup(tracker, p) for p in (1, 2, 4, 8, 16)]
        assert speedups == sorted(speedups)

    def test_hyperthreading_efficiency_reduces_speedup(self):
        tracker = self._tracker(50000, 100)
        full = predicted_speedup(tracker, 96, hyperthreading_efficiency=1.0)
        reduced = predicted_speedup(tracker, 96, hyperthreading_efficiency=0.5)
        assert reduced < full

    def test_speedup_curve_length_matches_thread_counts(self):
        tracker = self._tracker(1000, 10)
        curve = speedup_curve(tracker, [1, 2, 4], hyperthreaded_last=True)
        assert len(curve) == 3
        assert curve[0] == pytest.approx(1.0)

    def test_invalid_worker_count_rejected(self):
        tracker = self._tracker(10, 1)
        with pytest.raises(ValueError):
            predicted_speedup(tracker, 0)
