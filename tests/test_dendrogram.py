"""Tests for the dendrogram data structure, cutting, and linkage conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dendrogram.cut import cut_height, cut_k
from repro.dendrogram.linkage import dendrogram_from_linkage, to_linkage_matrix
from repro.dendrogram.node import Dendrogram


@pytest.fixture
def chain_dendrogram():
    """Four leaves merged as ((0,1),(2,3)) then together."""
    dendrogram = Dendrogram(4)
    a = dendrogram.merge(0, 1, height=1.0)
    b = dendrogram.merge(2, 3, height=2.0)
    dendrogram.merge(a, b, height=3.0)
    return dendrogram


class TestDendrogram:
    def test_requires_at_least_one_leaf(self):
        with pytest.raises(ValueError):
            Dendrogram(0)

    def test_merge_creates_sequential_ids(self, chain_dendrogram):
        assert chain_dendrogram.num_nodes == 7
        assert chain_dendrogram.root == 6

    def test_merge_tracks_sizes(self, chain_dendrogram):
        assert chain_dendrogram.node(4).size == 2
        assert chain_dendrogram.node(6).size == 4

    def test_merge_rejects_self_merge(self):
        dendrogram = Dendrogram(2)
        with pytest.raises(ValueError):
            dendrogram.merge(0, 0, height=1.0)

    def test_merge_rejects_unknown_node(self):
        dendrogram = Dendrogram(2)
        with pytest.raises(IndexError):
            dendrogram.merge(0, 5, height=1.0)

    def test_root_requires_completeness(self):
        dendrogram = Dendrogram(3)
        dendrogram.merge(0, 1, height=1.0)
        with pytest.raises(ValueError):
            _ = dendrogram.root

    def test_leaves_under(self, chain_dendrogram):
        assert sorted(chain_dendrogram.leaves_under(4)) == [0, 1]
        assert sorted(chain_dendrogram.leaves_under(6)) == [0, 1, 2, 3]
        assert chain_dendrogram.leaves_under(2) == [2]

    def test_parent_map(self, chain_dendrogram):
        parents = chain_dendrogram.parent_map()
        assert parents[0] == 4
        assert parents[4] == 6
        assert 6 not in parents

    def test_heights_monotone_detects_violation(self):
        dendrogram = Dendrogram(3)
        a = dendrogram.merge(0, 1, height=5.0)
        dendrogram.merge(a, 2, height=1.0)
        assert not dendrogram.heights_monotone()

    def test_set_height(self, chain_dendrogram):
        chain_dendrogram.set_height(6, 10.0)
        assert chain_dendrogram.node(6).height == 10.0

    def test_single_leaf_is_complete(self):
        assert Dendrogram(1).is_complete

    def test_metadata_is_stored(self):
        dendrogram = Dendrogram(2)
        node = dendrogram.merge(0, 1, height=1.0, level="intra", group=3)
        assert dendrogram.node(node).metadata == {"level": "intra", "group": 3}


class TestCutK:
    def test_cut_into_two(self, chain_dendrogram):
        labels = cut_k(chain_dendrogram, 2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_cut_into_one(self, chain_dendrogram):
        labels = cut_k(chain_dendrogram, 1)
        assert len(np.unique(labels)) == 1

    def test_cut_into_all_leaves(self, chain_dendrogram):
        labels = cut_k(chain_dendrogram, 4)
        assert len(np.unique(labels)) == 4

    def test_cut_more_than_leaves_clamps(self, chain_dendrogram):
        labels = cut_k(chain_dendrogram, 10)
        assert len(np.unique(labels)) == 4

    def test_cut_three_splits_higher_subtree_first(self, chain_dendrogram):
        labels = cut_k(chain_dendrogram, 3)
        # The (2,3) subtree has height 2 > 1, so it is split first.
        assert labels[0] == labels[1]
        assert labels[2] != labels[3]

    def test_invalid_k_rejected(self, chain_dendrogram):
        with pytest.raises(ValueError):
            cut_k(chain_dendrogram, 0)

    def test_incomplete_dendrogram_rejected(self):
        dendrogram = Dendrogram(3)
        dendrogram.merge(0, 1, height=1.0)
        with pytest.raises(ValueError):
            cut_k(dendrogram, 2)

    def test_number_of_clusters_always_matches(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            n = int(rng.integers(5, 30))
            dendrogram = Dendrogram(n)
            active = list(range(n))
            while len(active) > 1:
                i, j = rng.choice(len(active), size=2, replace=False)
                a, b = active[i], active[j]
                new = dendrogram.merge(a, b, height=float(rng.uniform(0, 10)))
                active = [x for x in active if x not in (a, b)] + [new]
            for k in (1, 2, 3, n):
                assert len(np.unique(cut_k(dendrogram, k))) == min(k, n)


class TestCutHeight:
    def test_cut_between_levels(self, chain_dendrogram):
        labels = cut_height(chain_dendrogram, 2.5)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_cut_below_everything_gives_singletons(self, chain_dendrogram):
        labels = cut_height(chain_dendrogram, 0.5)
        assert len(np.unique(labels)) == 4

    def test_cut_above_everything_gives_one_cluster(self, chain_dendrogram):
        labels = cut_height(chain_dendrogram, 100.0)
        assert len(np.unique(labels)) == 1


class TestLinkageConversion:
    def test_round_trip(self, chain_dendrogram):
        linkage = to_linkage_matrix(chain_dendrogram)
        rebuilt = dendrogram_from_linkage(linkage)
        assert rebuilt.num_leaves == 4
        np.testing.assert_array_equal(
            cut_k(rebuilt, 2), cut_k(chain_dendrogram, 2)
        )

    def test_linkage_shape(self, chain_dendrogram):
        linkage = to_linkage_matrix(chain_dendrogram)
        assert linkage.shape == (3, 4)
        assert linkage[-1, 3] == 4  # root size

    def test_incomplete_rejected(self):
        dendrogram = Dendrogram(3)
        with pytest.raises(ValueError):
            to_linkage_matrix(dendrogram)

    def test_invalid_linkage_shape_rejected(self):
        with pytest.raises(ValueError):
            dendrogram_from_linkage(np.zeros((2, 3)))

    def test_single_leaf_linkage_is_empty(self):
        dendrogram = Dendrogram(1)
        assert to_linkage_matrix(dendrogram).shape == (0, 4)
