"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import FIGURE_ENTRY_POINTS, build_parser, main
from repro.datasets.synthetic import make_time_series_dataset


@pytest.fixture
def data_csv(tmp_path):
    dataset = make_time_series_dataset(30, 40, 3, noise=0.8, seed=2)
    path = tmp_path / "series.csv"
    np.savetxt(path, dataset.data, delimiter=",")
    return path, dataset


class TestClusterCommand:
    def test_writes_labels_file(self, data_csv, tmp_path, capsys):
        path, dataset = data_csv
        out = tmp_path / "labels.txt"
        exit_code = main(
            ["cluster", str(path), "--clusters", "3", "--prefix", "2", "--out", str(out)]
        )
        assert exit_code == 0
        labels = np.loadtxt(out, dtype=int)
        assert labels.shape == (30,)
        assert len(np.unique(labels)) == 3

    def test_prints_labels_without_out(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path), "--clusters", "2"]) == 0
        captured = capsys.readouterr().out
        assert "clusters: 2" in captured

    def test_newick_export(self, data_csv, tmp_path):
        path, _ = data_csv
        newick_path = tmp_path / "tree.nwk"
        main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--newick",
                str(newick_path),
            ]
        )
        text = newick_path.read_text()
        assert text.strip().endswith(";")
        assert text.count("(") == text.count(")")

    def test_npy_input_and_precomputed_similarity(self, tmp_path):
        rng = np.random.default_rng(0)
        raw = rng.uniform(0, 1, size=(12, 12))
        similarity = (raw + raw.T) / 2
        np.fill_diagonal(similarity, 1.0)
        path = tmp_path / "similarity.npy"
        np.save(path, similarity)
        assert main(["cluster", str(path), "--clusters", "2", "--precomputed"]) == 0

    def test_invalid_input_shape_rejected(self, tmp_path):
        path = tmp_path / "one_dim.csv"
        np.savetxt(path, np.arange(5.0), delimiter=",")
        with pytest.raises(ValueError):
            main(["cluster", str(path), "--clusters", "2"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestKernelAndBackendFlags:
    def test_cluster_with_kernel_and_thread_backend(self, data_csv, tmp_path):
        path, _ = data_csv
        out = tmp_path / "labels.txt"
        exit_code = main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--kernel",
                "python",
                "--backend",
                "thread",
                "--workers",
                "2",
                "--out",
                str(out),
            ]
        )
        assert exit_code == 0
        assert np.loadtxt(out, dtype=int).shape == (30,)

    def test_unknown_kernel_rejected(self, data_csv):
        path, _ = data_csv
        with pytest.raises(SystemExit):
            main(["cluster", str(path), "--clusters", "2", "--kernel", "fortran"])

    def test_workers_without_parallel_backend_rejected(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path), "--clusters", "2", "--workers", "4"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_non_positive_workers_rejected(self, data_csv, capsys):
        path, _ = data_csv
        args = ["cluster", str(path), "--clusters", "2", "--backend", "thread"]
        assert main(args + ["--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestFigureCommand:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(FIGURE_ENTRY_POINTS)

    def test_appendix_figure_runs(self, capsys):
        assert main(["figure", "appendix"]) == 0
        assert "Appendix" in capsys.readouterr().out

    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure", "does-not-exist"]) == 2

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
